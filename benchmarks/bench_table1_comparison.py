"""Table 1 — cost comparison of all one-dimensional methods.

Measures ``H``, ``M``, ``C(n)``, ``Q(n)`` and ``U(n)`` for skip graphs,
SkipNet, NoN skip graphs, family trees, deterministic SkipNet, bucket skip
graphs, skip-webs, bucket skip-webs (and Chord for exact match only) on a
shared workload, and checks the qualitative relationships the paper's
table asserts.
"""

import random

from repro.baselines import NoNSkipGraph, SkipGraph
from repro.bench.experiments import table1_comparison
from repro.bench.reporting import format_table
from repro.onedim import SkipWeb1D
from repro.workloads import uniform_keys


def test_table1_rows(capsys):
    rows = table1_comparison(sizes=(128, 256), queries_per_size=25, updates_per_size=5, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Table 1 (measured)"))

    largest = [row for row in rows if row["n"] == 256]
    by_method = {row["method"]: row for row in largest}

    # One host per key for the per-key structures (plus one per inserted
    # key from the update workload); far fewer for the bucketed ones.
    assert by_method["skip graph"]["H"] >= 256
    assert by_method["bucket skip graph"]["H"] < 256
    assert by_method["bucket skip-web (this paper)"]["H"] < by_method["skip graph"]["H"] * 9

    # NoN trades memory for query speed; the skip-web keeps O(log n) memory.
    assert by_method["NoN skip graph"]["M_max"] > by_method["skip graph"]["M_max"] * 2
    assert by_method["NoN skip graph"]["Q_mean"] < by_method["skip graph"]["Q_mean"]
    assert by_method["skip-web (this paper)"]["M_max"] <= by_method["NoN skip graph"]["M_max"] * 3

    # Family trees keep O(1) pointers per host.
    assert by_method["family tree"]["M_max"] <= 8

    # The bucket skip-web's queries beat the plain skip-web's.
    assert (
        by_method["bucket skip-web (this paper)"]["Q_mean"]
        <= by_method["skip-web (this paper)"]["Q_mean"]
    )


def test_benchmark_skipweb_query(benchmark):
    keys = uniform_keys(256, seed=1)
    web = SkipWeb1D(keys, seed=1)
    rng = random.Random(2)
    benchmark(lambda: web.nearest(rng.uniform(0, 1_000_000)))


def test_benchmark_skipgraph_query(benchmark):
    keys = uniform_keys(256, seed=1)
    graph = SkipGraph(keys, seed=1)
    rng = random.Random(2)
    benchmark(lambda: graph.search(rng.uniform(0, 1_000_000)))


def test_benchmark_non_skipgraph_query(benchmark):
    keys = uniform_keys(256, seed=1)
    graph = NoNSkipGraph(keys, seed=1)
    rng = random.Random(2)
    benchmark(lambda: graph.search(rng.uniform(0, 1_000_000)))
