"""Lemma 4 — the set-halving lemma for compressed tries.

The conflict list of the located range of ``D(T)`` against ``D(S)``
(nodes and edges along the corresponding path) must stay O(1) as the
number of strings grows, including for DNA-read workloads whose tries are
deep because of shared motifs.
"""

import random

from repro.bench.experiments import lemma4_trie
from repro.bench.reporting import format_table
from repro.core.halving import verify_halving
from repro.strings import DNA, LOWERCASE
from repro.strings.skip_trie import TrieStructure
from repro.workloads import dna_reads, random_strings


def test_lemma4_constant(capsys):
    rows = lemma4_trie(sizes=(64, 256, 1024), trials=6, queries_per_size=20, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Lemma 4 (measured): trie set-halving, DNA reads"))
    means = [row["mean_conflicts"] for row in rows]
    assert means[-1] <= means[0] * 2.5
    assert all(mean <= 10 for mean in means)


def test_lemma4_random_lowercase_strings():
    rng = random.Random(1)
    strings = random_strings(400, alphabet=LOWERCASE, seed=2)
    report = verify_halving(
        TrieStructure,
        strings,
        queries=random_strings(15, alphabet=LOWERCASE, seed=3),
        trials=6,
        rng=rng,
        alphabet=LOWERCASE,
    )
    assert report.mean_conflicts <= 10


def test_benchmark_trie_halving(benchmark):
    rng = random.Random(4)
    reads = dna_reads(200, seed=5)
    queries = dna_reads(5, seed=6)
    benchmark(
        lambda: verify_halving(
            TrieStructure, reads, queries=queries, trials=2, rng=rng, alphabet=DNA
        )
    )
