"""Output-sensitive range reporting — the O(log n + k) bound (extension).

Every skip-web instantiation (and the ordered baselines) answers
reporting queries in O(log n + k) expected messages: an O(log n) locate
descent followed by forked report sub-walks that pay one message per
host crossing.  The assertions check both halves of the bound — cost is
near-constant in n for fixed output size k, and near-linear in k for
fixed n — and that the immediate and round-based executions of the very
same queries charge identical message totals.  Chord's row documents
that a hash overlay cannot answer these queries at all (§1.2).
"""

import random

from repro.bench.experiments import range_queries
from repro.bench.fitting import best_growth_law
from repro.bench.reporting import format_table
from repro.core.ranges import Interval
from repro.onedim import SkipWeb1D
from repro.workloads import uniform_keys

#: Structures whose interval queries cover *exactly* k keys, so the
#: fixed-k growth fit across n is clean.
EXACT_K_STRUCTURES = ("skip-web 1-d", "bucket skip-web (M=32)", "skip graph (baseline)")


def test_range_costs_are_output_sensitive(capsys):
    rows = range_queries(
        sizes=(48, 96, 192), target_ks=(4, 16), queries_per_size=6, seed=0
    )
    with capsys.disabled():
        print()
        print(format_table(rows, title="Range reporting (measured): O(log n + k) messages"))

    supported = [row for row in rows if row["supported"] == "yes"]

    # Immediate and batched execution of the same queries from the same
    # origins must charge identical message totals (rounded identically).
    for row in supported:
        assert row["msgs_per_op"] == row["batched_msgs_per_op"], row

    # Fixed k, growing n: the cost is dominated by the O(log n) descent,
    # so it must fit a sub-linear law and stay within a small factor.
    for structure in EXACT_K_STRUCTURES:
        series = [
            row
            for row in supported
            if row["structure"] == structure and row["k_target"] == 4
        ]
        sizes = [row["n"] for row in series]
        costs = [row["msgs_per_op"] for row in series]
        fit = best_growth_law(sizes, costs, candidates=("1", "log n", "n"))
        assert fit.law != "n", (structure, sizes, costs)
        assert max(costs) <= 2.0 * min(costs) + 2.0, (structure, costs)

    # Fixed n, growing k: the extra cost is the report walk, which pays
    # at most one message per reported item — linear in k, not in n.
    for structure in EXACT_K_STRUCTURES:
        small = next(
            row
            for row in supported
            if row["structure"] == structure and row["n"] >= 96 and row["k_target"] == 4
        )
        large = next(
            row
            for row in supported
            if row["structure"] == structure
            and row["n"] == small["n"]
            and row["k_target"] == 16
        )
        extra = large["msgs_per_op"] - small["msgs_per_op"]
        assert extra <= (large["k_mean"] - small["k_mean"]) + 2.0, (structure, extra)

    # The normalised cost (messages / (log2 n + k)) stays bounded for
    # every supported structure — the O(log n + k) claim itself.
    assert all(row["per_logn_plus_k"] <= 1.6 for row in supported), [
        (row["structure"], row["per_logn_plus_k"]) for row in supported
    ]

    # Chord cannot answer range queries (the paper's point about hashing).
    chord_rows = [row for row in rows if row["structure"] == "Chord DHT"]
    assert chord_rows and all(row["supported"] == "no" for row in chord_rows)


def test_range_matches_are_exact():
    rng = random.Random(5)
    keys = uniform_keys(96, seed=5)
    web = SkipWeb1D(keys, seed=5)
    sorted_keys = sorted(set(float(key) for key in keys))
    for _ in range(10):
        start = rng.randrange(0, len(sorted_keys) - 8)
        low, high = sorted_keys[start], sorted_keys[start + 7]
        result = web.range_search(low, high)
        assert sorted(result.matches) == sorted_keys[start : start + 8]
        assert result.count == 8
        assert result.messages == result.descent_messages + result.report_messages


def test_benchmark_range_query(benchmark):
    keys = uniform_keys(256, seed=6)
    web = SkipWeb1D(keys, seed=6)
    sorted_keys = sorted(set(float(key) for key in keys))
    rng = random.Random(7)

    def run():
        start = rng.randrange(0, len(sorted_keys) - 16)
        web.range_report(Interval(sorted_keys[start], sorted_keys[start + 15]))

    benchmark(run)
