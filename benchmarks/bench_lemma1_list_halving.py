"""Lemma 1 — the set-halving lemma for sorted linked lists.

``E[|C(Q, S)|]`` must be a constant independent of ``n``.  The paper's
closed-form bound is 7; with closed link ranges (needed for the §2.1
incidence definition) the measured constant is ≈ 2·E|Q∩S| + 1 ≈ 9, still
independent of ``n`` — see EXPERIMENTS.md for the discussion.
"""

import random

from repro.bench.experiments import lemma1_list
from repro.bench.reporting import format_table
from repro.core.halving import verify_halving
from repro.onedim import SortedListStructure
from repro.workloads import clustered_keys


def test_lemma1_constant(capsys):
    rows = lemma1_list(sizes=(64, 256, 1024), trials=10, queries_per_size=25, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Lemma 1 (measured): sorted-list set-halving"))
    means = [row["mean_conflicts"] for row in rows]
    assert means[-1] <= means[0] * 2.0
    assert all(mean <= 14 for mean in means)


def test_lemma1_holds_for_clustered_keys():
    rng = random.Random(1)
    keys = [float(k) for k in clustered_keys(400, seed=2)]
    report = verify_halving(
        SortedListStructure,
        keys,
        queries=[rng.uniform(min(keys), max(keys)) for _ in range(20)],
        trials=8,
        rng=rng,
    )
    assert report.mean_conflicts <= 14


def test_lemma1_exact_half_sampling():
    rng = random.Random(3)
    keys = [float(k) for k in range(500)]
    report = verify_halving(
        SortedListStructure,
        keys,
        queries=[rng.uniform(0, 500) for _ in range(20)],
        trials=8,
        rng=rng,
        exact_half=True,
    )
    assert report.mean_conflicts <= 14


def test_benchmark_halving_verifier(benchmark):
    rng = random.Random(4)
    keys = [float(k) for k in range(256)]
    queries = [rng.uniform(0, 256) for _ in range(5)]
    benchmark(
        lambda: verify_halving(SortedListStructure, keys, queries=queries, trials=2, rng=rng)
    )
