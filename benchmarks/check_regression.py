#!/usr/bin/env python
"""Benchmark-regression gate: quick-mode experiments vs a committed baseline.

Runs a curated set of experiments at small ``--sizes``-style quick
parameters (everything seeded, so the numbers are exact) and compares
each message-cost metric against ``benchmarks/baseline.json``.  A metric
that **regresses by more than 20 %** — more messages per operation than
the committed baseline allows — fails the gate; improvements and small
jitter pass.  Missing-key behaviour is explicit: a current-run metric
with **no baseline entry** (a freshly added experiment) is reported as
"no baseline, skipped" and does not fail the gate — it is simply not
checked until the next ``--update`` records it — while a **vanished**
metric (present in the baseline, absent from the run) still fails, since
that means coverage was silently lost.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update   # re-baseline

Run with ``PYTHONHASHSEED=0`` (as CI does) so dict/set iteration cannot
introduce cross-run jitter.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __package__ in (None, ""):
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:  # pragma: no cover - direct-script shim
        sys.path.insert(0, str(_SRC))

from repro.bench.experiments import EXPERIMENTS

BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

#: Allowed relative regression before the gate fails.
TOLERANCE = 0.20

#: Quick-mode parameters per gated experiment (small sizes, fixed seed).
QUICK_PARAMS: dict[str, dict] = {
    "throughput": {"sizes": (64,), "ops_per_size": 120, "seed": 0},
    "congestion-rounds": {"sizes": (64, 128), "queries_per_host": 1, "seed": 0},
    "theorem2-onedim": {
        "sizes": (128,),
        "memory_sizes": (16,),
        "queries_per_size": 20,
        "seed": 0,
    },
    "range-queries": {
        "sizes": (48,),
        "target_ks": (4, 16),
        "queries_per_size": 4,
        "seed": 0,
    },
    "updates": {"sizes": (64,), "updates_per_size": 6, "seed": 0},
    "churn": {"sizes": (48,), "events": 4, "ops_per_phase": 24, "seed": 0},
}

#: Row columns treated as message-cost metrics (lower is better).
METRIC_COLUMNS = (
    "msgs_per_op",
    "Q_mean",
    "insert_mean",
    "delete_mean",
    "repair_msgs_per_event",
)

#: Row columns that identify a row within its experiment.
IDENTITY_COLUMNS = ("structure", "method", "policy", "cache", "n", "M", "k_target")


def _row_identity(row: dict) -> str:
    parts = [
        f"{column}={row[column]}" for column in IDENTITY_COLUMNS if column in row
    ]
    return ",".join(parts)


def collect_metrics() -> dict[str, float]:
    """Run every gated experiment and flatten its message-cost metrics."""
    metrics: dict[str, float] = {}
    for name, params in QUICK_PARAMS.items():
        function, _description = EXPERIMENTS[name]
        for row in function(**params):
            identity = _row_identity(row)
            for column in METRIC_COLUMNS:
                value = row.get(column)
                if isinstance(value, (int, float)):
                    metrics[f"{name}[{identity}].{column}"] = float(value)
    return metrics


def compare(current: dict[str, float], baseline: dict[str, float]) -> tuple[list[str], list[str]]:
    """Compare the run against the baseline: ``(failures, skipped)``.

    A current metric with no baseline entry is *skipped*, not failed —
    it is reported explicitly so a fresh experiment cannot silently
    pass *or* crash the gate before its baseline lands.  A baseline
    metric missing from the run is still a failure (lost coverage).
    """
    failures: list[str] = []
    skipped: list[str] = []
    for key in sorted(set(current) | set(baseline)):
        if key not in baseline:
            skipped.append(
                f"NO BASELINE    {key} = {current[key]} (skipped; record it with --update)"
            )
            continue
        if key not in current:
            failures.append(
                f"MISSING METRIC {key} (was {baseline[key]}; re-baseline with --update)"
            )
            continue
        reference = baseline[key]
        measured = current[key]
        allowed = reference * (1.0 + TOLERANCE)
        if measured > allowed and measured - reference > 1e-9:
            failures.append(
                f"REGRESSION     {key}: {measured} > {reference} "
                f"(+{(measured / reference - 1.0) * 100.0 if reference else float('inf'):.1f}%, "
                f"allowed +{TOLERANCE * 100.0:.0f}%)"
            )
    return failures, skipped


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite benchmarks/baseline.json from the current measurements",
    )
    args = parser.parse_args(argv)

    current = collect_metrics()
    if args.update:
        BASELINE_PATH.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {len(current)} metrics -> {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update first", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    failures, skipped = compare(current, baseline)
    for line in skipped:
        print(f"  {line}")
    if failures:
        print(f"bench-regression gate FAILED ({len(failures)} issue(s)):")
        for line in failures:
            print(f"  {line}")
        return 1
    checked = len(current) - len(skipped)
    summary = (
        f"bench-regression gate passed: {checked} metrics within "
        f"+{TOLERANCE * 100.0:.0f}% of baseline"
    )
    if skipped:
        summary += f" ({len(skipped)} new metric(s) skipped, no baseline yet)"
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
