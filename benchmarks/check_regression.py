#!/usr/bin/env python
"""Benchmark-regression gate: quick-mode experiments vs a committed baseline.

Runs a curated set of experiments at small ``--sizes``-style quick
parameters (everything seeded, so the numbers are exact) and compares
each message-cost metric against ``benchmarks/baseline.json``.  A metric
that **regresses by more than 20 %** — more messages per operation than
the committed baseline allows — fails the gate; improvements and small
jitter pass.  Missing-key behaviour is explicit: a current-run metric
with **no baseline entry** (a freshly added experiment) is reported as
"no baseline, skipped" and does not fail the gate — it is simply not
checked until the next ``--update`` records it — while a **vanished**
metric (present in the baseline, absent from the run) still fails, since
that means coverage was silently lost.

Metrics belong to **families** with their own tolerances.  The seeded
``counts`` family (message costs; exact numbers) keeps the strict 20 %
bar; the ``wallclock`` family (``bench_wallclock.py`` timings; noisy by
nature) only fails on a multi-× slowdown, so CI machine jitter cannot
flap the gate.  ``--families`` selects what a run collects and checks —
the bench-regression CI job gates ``counts``, the bench-wallclock job
gates ``wallclock``.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py                       # counts gate
    PYTHONPATH=src python benchmarks/check_regression.py --families wallclock  # timing gate
    PYTHONPATH=src python benchmarks/check_regression.py --update              # re-baseline
                                                          # (only the selected families)

Run with ``PYTHONHASHSEED=0`` (as CI does) so dict/set iteration cannot
introduce cross-run jitter.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __package__ in (None, ""):
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:  # pragma: no cover - direct-script shim
        sys.path.insert(0, str(_SRC))

from repro.bench.experiments import EXPERIMENTS

BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

#: Allowed relative regression before the gate fails (the ``counts`` family).
TOLERANCE = 0.20

#: Timing metrics fail only beyond baseline × (1 + this): a 4× slowdown.
#: Deliberately ≥ 2× so cross-machine noise can never flap the gate.
WALLCLOCK_TOLERANCE = 3.0

#: Timing cells faster than this per op are too short to gate reliably
#: (one scheduler stall dwarfs them); they are recorded in the baseline
#: for information but never failed.
WALLCLOCK_MIN_SECS_PER_OP = 1e-4

FAMILIES = ("counts", "wallclock")


def family_of(key: str) -> str:
    """The metric family a baseline key belongs to."""
    return "wallclock" if key.startswith("wallclock[") else "counts"


def fork_start_method_available() -> bool:
    """Whether ``multiprocessing`` offers the ``fork`` start method.

    The ``executor=sharded-<N>`` wallclock rows time the multi-worker
    :class:`~repro.engine.sharded.ShardedExecutor`, which shards only
    under ``fork`` (workers inherit the structure copy-on-write).  On
    platforms without it the executor falls back to the serial path, so
    the timing measures something else entirely — those rows are skipped
    instead of gated.
    """
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - platform quirk
        return False


def tolerance_for(key: str) -> float:
    """Allowed relative regression for one metric."""
    return WALLCLOCK_TOLERANCE if family_of(key) == "wallclock" else TOLERANCE

#: Quick-mode parameters per gated experiment (small sizes, fixed seed).
QUICK_PARAMS: dict[str, dict] = {
    "throughput": {"sizes": (64,), "ops_per_size": 120, "seed": 0},
    "congestion-rounds": {"sizes": (64, 128), "queries_per_host": 1, "seed": 0},
    "theorem2-onedim": {
        "sizes": (128,),
        "memory_sizes": (16,),
        "queries_per_size": 20,
        "seed": 0,
    },
    "range-queries": {
        "sizes": (48,),
        "target_ks": (4, 16),
        "queries_per_size": 4,
        "seed": 0,
    },
    "updates": {"sizes": (64,), "updates_per_size": 6, "seed": 0},
    "churn": {"sizes": (48,), "events": 4, "ops_per_phase": 24, "seed": 0},
    "topology": {
        "sizes": (48,),
        "ops": 24,
        "seed": 0,
        "topologies": ("flat", "clustered", "geo"),
    },
    "faults": {
        "sizes": (32,),
        "ops": 24,
        "seed": 0,
        "drop_rates": (0.0, 0.2),
    },
}

#: Row columns treated as message-cost metrics (lower is better).  The
#: ``faults`` rows contribute ``retry_overhead`` (retries per delivered
#: op under a fixed seeded drop rate — a resilience-efficiency metric;
#: at ``drop_rate=0`` its baseline is 0.0, so *any* spontaneous retry on
#: a lossless link fails the gate).
METRIC_COLUMNS = (
    "msgs_per_op",
    "Q_mean",
    "insert_mean",
    "delete_mean",
    "repair_msgs_per_event",
    "latency_per_op",
    "retry_overhead",
)

#: Row columns that identify a row within its experiment.
IDENTITY_COLUMNS = (
    "structure",
    "topology",
    "method",
    "policy",
    "cache",
    "n",
    "M",
    "k_target",
    "drop_rate",
)


def _row_identity(row: dict) -> str:
    parts = [
        f"{column}={row[column]}" for column in IDENTITY_COLUMNS if column in row
    ]
    return ",".join(parts)


def collect_metrics(families: tuple[str, ...] = ("counts",)) -> dict[str, float]:
    """Run the gated suites of the selected families and flatten their metrics."""
    metrics: dict[str, float] = {}
    if "counts" in families:
        for name, params in QUICK_PARAMS.items():
            function, _description = EXPERIMENTS[name]
            for row in function(**params):
                identity = _row_identity(row)
                for column in METRIC_COLUMNS:
                    value = row.get(column)
                    if isinstance(value, (int, float)):
                        metrics[f"{name}[{identity}].{column}"] = float(value)
    if "wallclock" in families:
        import bench_wallclock

        metrics.update(bench_wallclock.wallclock_metrics())
    return metrics


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    families: tuple[str, ...] = FAMILIES,
) -> tuple[list[str], list[str]]:
    """Compare the run against the baseline: ``(failures, skipped)``.

    Only metrics of the selected ``families`` are considered (a counts-only
    run must not flag the absent wallclock timings as lost coverage).  A
    current metric with no baseline entry is *skipped*, not failed — it
    is reported explicitly so a fresh experiment cannot silently pass
    *or* crash the gate before its baseline lands.  A baseline metric
    missing from the run is still a failure (lost coverage).  Each
    metric is judged against its family's tolerance.
    """
    failures: list[str] = []
    skipped: list[str] = []
    sharded_gateable = fork_start_method_available()
    for key in sorted(set(current) | set(baseline)):
        if family_of(key) not in families:
            continue
        if "executor=sharded-" in key and not sharded_gateable:
            skipped.append(
                f"SHARDED SKIP   {key} (multiprocessing 'fork' start method "
                "unavailable on this platform; row not gated)"
            )
            continue
        if key not in baseline:
            skipped.append(
                f"NO BASELINE    {key} = {current[key]} (skipped; record it with --update)"
            )
            continue
        if key not in current:
            failures.append(
                f"MISSING METRIC {key} (was {baseline[key]}; re-baseline with --update)"
            )
            continue
        reference = baseline[key]
        measured = current[key]
        if family_of(key) == "wallclock" and reference < WALLCLOCK_MIN_SECS_PER_OP:
            # Sub-100µs cells are pure scheduler noise at quick sizes:
            # informational only, never gated.
            continue
        tolerance = tolerance_for(key)
        allowed = reference * (1.0 + tolerance)
        if measured > allowed and measured - reference > 1e-9:
            failures.append(
                f"REGRESSION     {key}: {measured} > {reference} "
                f"(+{(measured / reference - 1.0) * 100.0 if reference else float('inf'):.1f}%, "
                f"allowed +{tolerance * 100.0:.0f}%)"
            )
    return failures, skipped


def _parse_families(text: str) -> tuple[str, ...]:
    families = tuple(part.strip() for part in text.split(",") if part.strip())
    unknown = [family for family in families if family not in FAMILIES]
    if unknown or not families:
        raise argparse.ArgumentTypeError(
            f"families must be drawn from {', '.join(FAMILIES)}; got {text!r}"
        )
    return families


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the selected families' metrics in benchmarks/baseline.json "
        "(other families' entries are preserved)",
    )
    parser.add_argument(
        "--families",
        type=_parse_families,
        default=("counts",),
        help="comma-separated metric families to collect and check "
        f"(default: counts; available: {', '.join(FAMILIES)})",
    )
    args = parser.parse_args(argv)

    current = collect_metrics(args.families)
    if args.update:
        merged = {}
        if BASELINE_PATH.exists():
            merged = {
                key: value
                for key, value in json.loads(BASELINE_PATH.read_text()).items()
                if family_of(key) not in args.families
            }
        merged.update(current)
        BASELINE_PATH.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(
            f"baseline updated: {len(current)} {'/'.join(args.families)} metric(s) "
            f"-> {BASELINE_PATH} ({len(merged)} total)"
        )
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update first", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    failures, skipped = compare(current, baseline, args.families)
    for line in skipped:
        print(f"  {line}")
    if failures:
        print(f"bench-regression gate FAILED ({len(failures)} issue(s)):")
        for line in failures:
            print(f"  {line}")
        return 1
    checked = len(current) - len(skipped)
    summary = (
        f"bench-regression gate passed: {checked} {'/'.join(args.families)} "
        f"metric(s) within tolerance of baseline"
    )
    if skipped:
        summary += f" ({len(skipped)} new metric(s) skipped, no baseline yet)"
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
