"""Churn — live join/leave/crash with self-repair (beyond the paper).

The paper freezes the host set (§1.1); this extension churns it while the
structures keep serving batched queries through the round engine.  Each
churn event is repaired by the structure itself (record hand-off on a
graceful leave, reconstruction + pointer rewiring after a crash), with
the repair traffic billed through the same round-based accounting as the
queries, so the rows report repair messages per churn event alongside the
worst per-host per-round congestion of the whole scenario.
"""

from repro.bench.experiments import churn
from repro.bench.reporting import format_table

_QUICK = dict(sizes=(48,), events=5, ops_per_phase=24, seed=0)


def test_churn_sustains_query_health(capsys):
    rows = churn(sizes=(64,), events=6, ops_per_phase=40, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Churn: join/leave/crash with self-repair"))

    # All four skip-web instantiations plus Chord run the schedule.
    assert [row["structure"] for row in rows] == [
        "skip-web 1-d",
        "quadtree skip-web",
        "trie skip-web",
        "trapezoid skip-web",
        "Chord DHT",
    ]
    for row in rows:
        # Membership accounting is exact: every event is a join, a leave
        # or a crash, and the live host count moves by their difference.
        assert row["joins"] + row["leaves"] + row["crashes"] == row["events"]
        assert row["hosts_end"] == row["hosts_start"] + row["joins"] - (
            row["leaves"] + row["crashes"]
        )
        # Queries stay healthy through sustained churn: every batched
        # operation of every phase completed, at sane message costs.
        assert row["failed"] == 0
        assert row["completed"] == (row["events"] + 1) * 40
        assert row["msgs_per_op"] > 0
        assert row["C_round_max"] >= 1
        # Self-repair did real work and was billed for it.
        assert row["records_moved"] > 0
        assert row["repair_msgs_per_event"] > 0


def test_churn_is_deterministic_under_a_fixed_seed():
    assert churn(**_QUICK) == churn(**_QUICK)


def test_benchmark_churn(benchmark):
    benchmark.pedantic(lambda: churn(**_QUICK), rounds=3, iterations=1)
