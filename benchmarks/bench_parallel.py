"""Serial-vs-sharded executor comparison: wall clock and zero count drift.

Times the same seeded query batch through the serial
:class:`~repro.engine.executor.BatchExecutor` and through
:class:`~repro.engine.sharded.ShardedExecutor` at increasing worker
counts, over three structure families, on the ledger substrate.  Each
row reports elapsed wall clock, the speedup over serial, and how the
batch actually ran (``sharded`` or ``serial-fallback: <reason>`` — e.g.
on platforms without the ``fork`` start method).

Two properties are asserted, not just displayed:

- **Zero counted drift**: total messages and rounds from the sharded
  run equal the serial run exactly, per family, per worker count (the
  determinism-by-replay contract of DESIGN.md §8).
- The executor shards (no fallback) whenever ``fork`` is available.

Speedup itself is *not* gated: it depends on the runner's core count,
and on a single-core machine the fork overhead makes sharding slower.
The CI job publishes the table as its job summary so the trend is
visible per runner class.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py   # table + sanity
    PYTHONPATH=src python benchmarks/bench_parallel.py             # table
    PYTHONPATH=src python benchmarks/bench_parallel.py --markdown  # CI job summary
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Any, Callable

if __package__ in (None, ""):
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.engine import BatchExecutor, Operation, ShardedExecutor, fork_available
from repro.net.network import ledger_mode
from repro.onedim import SkipWeb1D
from repro.spatial.geometry import HyperCube
from repro.spatial.skip_quadtree import SkipQuadtreeWeb
from repro.strings import LOWERCASE
from repro.strings.skip_trie import SkipTrieWeb
from repro.workloads import uniform_keys, uniform_points
from repro.workloads.strings import prefix_queries, random_strings

Row = dict[str, Any]

#: Worker counts compared against the serial executor.
WORKER_COUNTS = (2, 4)

#: Quick-mode sizes (the CI configuration).
QUICK = {"n": 96, "queries": 120, "seed": 0}
#: Full-mode sizes for local runs.
FULL = {"n": 256, "queries": 400, "seed": 0}


def _families(n: int, queries: int, seed: int) -> list[tuple[str, Callable[[], Any], list[Any]]]:
    keys = sorted(set(float(key) for key in uniform_keys(n, seed=seed)))
    import random as _random

    rng = _random.Random(seed)
    key_queries = [rng.uniform(0.0, 1_000_000.0) for _ in range(queries)]
    points = uniform_points(n, dimension=2, seed=seed)
    point_queries = [(rng.random(), rng.random()) for _ in range(queries)]
    strings = random_strings(n, alphabet=LOWERCASE, seed=seed)
    string_queries = prefix_queries(strings, queries, seed=seed)
    return [
        ("skip-web 1-d", lambda: SkipWeb1D.build_from_sorted(keys, seed=seed), key_queries),
        (
            "quadtree skip-web",
            lambda: SkipQuadtreeWeb.build_from_sorted(
                points, bounding_cube=HyperCube((0.0, 0.0), 1.0), seed=seed
            ),
            point_queries,
        ),
        (
            "trie skip-web",
            lambda: SkipTrieWeb.build_from_sorted(strings, alphabet=LOWERCASE, seed=seed),
            string_queries,
        ),
    ]


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def parallel_rows(n: int, queries: int, seed: int) -> list[Row]:
    """One row per structure family: serial vs every sharded worker count.

    Raises ``AssertionError`` if any sharded run's message or round
    totals drift from the serial run — the table doubles as an
    equivalence check.
    """
    rows: list[Row] = []
    with ledger_mode():
        for name, build, payloads in _families(n, queries, seed):
            structure = build()
            operations = [Operation("search", payload) for payload in payloads]
            serial_s, serial = _timed(lambda: BatchExecutor(structure).run(operations))
            row: Row = {
                "structure": name,
                "ops": len(operations),
                "serial_s": round(serial_s, 4),
            }
            modes: list[str] = []
            for workers in WORKER_COUNTS:
                executor = ShardedExecutor(structure, workers=workers)
                sharded_s, sharded = _timed(lambda: executor.run(operations))
                if sharded.messages != serial.messages or sharded.rounds != serial.rounds:
                    raise AssertionError(
                        f"{name}: sharded-{workers} drifted from serial "
                        f"(messages {sharded.messages} vs {serial.messages}, "
                        f"rounds {sharded.rounds} vs {serial.rounds})"
                    )
                row[f"sharded{workers}_s"] = round(sharded_s, 4)
                row[f"speedup{workers}"] = round(serial_s / sharded_s, 2) if sharded_s else 0.0
                reason = executor.last_fallback_reason
                modes.append(f"serial-fallback: {reason}" if reason else "sharded")
            row["mode"] = modes[0] if len(set(modes)) == 1 else "; ".join(modes)
            rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# pytest entry point
# --------------------------------------------------------------------- #
def test_parallel_quick(capsys):
    from repro.bench.reporting import format_table

    rows = parallel_rows(**QUICK)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Serial vs sharded executor (quick)"))
    assert len(rows) == 3
    for row in rows:
        assert row["serial_s"] > 0.0
        for workers in WORKER_COUNTS:
            assert row[f"sharded{workers}_s"] > 0.0
        # parallel_rows already asserted zero message/round drift.
        if fork_available():
            assert row["mode"] == "sharded", row


# --------------------------------------------------------------------- #
# command line
# --------------------------------------------------------------------- #
def _markdown_table(rows: list[Row]) -> str:
    columns = list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |", "|" + "---|" * len(columns)]
    for row in rows:
        lines.append("| " + " | ".join(str(row[column]) for column in columns) + " |")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true", help="run the larger local sizes")
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit a GitHub-flavoured markdown table (for CI job summaries)",
    )
    args = parser.parse_args(argv)
    rows = parallel_rows(**(FULL if args.full else QUICK))
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    if args.markdown:
        print("### Serial vs sharded executor" + (" (full)" if args.full else " (quick)"))
        print()
        print(f"Runner cores: {cores}; fork available: {fork_available()}")
        print()
        print(_markdown_table(rows))
        return 0
    from repro.bench.reporting import format_table

    print(f"runner cores: {cores}; fork available: {fork_available()}")
    print(format_table(rows, title="Serial vs sharded executor"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
