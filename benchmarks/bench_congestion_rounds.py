"""Round congestion — the directly-measured analogue of Theorem 2's bound.

The paper bounds the number of messages any host must process per round,
when every host issues a query simultaneously, by O(log n / log log n)
w.h.p.  The seed codebase could only *infer* congestion from static
pointer counts; with the round-based engine we measure it: every host
originates one concurrent query, the batch executor interleaves them
round by round, and the network records how many messages each host
absorbed in each round.
"""

from repro.bench.experiments import congestion_rounds
from repro.bench.reporting import format_table


def test_congestion_rounds_trend(capsys):
    rows = congestion_rounds(sizes=(64, 128, 256, 512), queries_per_host=1, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Round congestion (measured): all-hosts query batch"))

    # Every host issued one query.
    for row in rows:
        assert row["ops"] == row["hosts"]

    # The measured max per-host per-round load tracks log n / log log n:
    # the ratio to that scale stays bounded by a small constant as n grows
    # 8x, rather than growing like n / polylog (which flooding would give).
    ratios = [row["ratio"] for row in rows]
    assert all(ratio <= 4.0 for ratio in ratios)
    assert max(ratios) <= 2.5 * min(ratios)

    # Rounds to drain the whole batch stay logarithmic, not linear in n.
    for row in rows:
        assert row["rounds"] <= 4 + 3 * row["msgs_per_op"]


def test_benchmark_congestion_rounds(benchmark):
    benchmark.pedantic(
        lambda: congestion_rounds(sizes=(128,), queries_per_host=1, seed=3),
        rounds=3,
        iterations=1,
    )
