"""Theorem 2 / §2.4.1 — one-dimensional query costs.

The plain 1-d skip-web answers nearest-neighbour queries in O(log n)
messages; the bucket skip-web improves to O(log_M H) — approaching a
constant when hosts can store M = n^ε items.
"""

import random

from repro.bench.experiments import theorem2_onedim
from repro.bench.fitting import best_growth_law
from repro.bench.reporting import format_table
from repro.onedim import BucketSkipWeb1D, SkipWeb1D
from repro.workloads import uniform_keys


def test_theorem2_onedim_costs(capsys):
    rows = theorem2_onedim(
        sizes=(128, 512, 2048), memory_sizes=(16, 64, 256), queries_per_size=30, seed=0
    )
    with capsys.disabled():
        print()
        print(format_table(rows, title="Theorem 2 (measured): 1-d skip-web vs bucket skip-web"))

    plain = [row for row in rows if row["structure"] == "skip-web 1-d"]
    sizes = [row["n"] for row in plain]
    plain_costs = [row["Q_mean"] for row in plain]
    fit = best_growth_law(sizes, plain_costs, candidates=("1", "log n", "n"))
    assert fit.law != "n"

    # Larger M means fewer messages at fixed n (the log_M H effect), and at
    # M = n^(1/2)-ish the cost is a small constant.
    for n in sizes:
        costs_by_memory = {
            row["structure"]: row["Q_mean"]
            for row in rows
            if row["n"] == n and row["structure"].startswith("bucket")
        }
        assert (
            costs_by_memory["bucket skip-web (M=256)"] <= costs_by_memory["bucket skip-web (M=16)"]
        )
    largest = [
        row for row in rows if row["n"] == 2048 and row["structure"] == "bucket skip-web (M=256)"
    ]
    assert largest[0]["Q_mean"] <= 4.0


def test_bucket_skipweb_beats_plain_at_every_size():
    rng = random.Random(1)
    for n in (128, 512):
        keys = uniform_keys(n, seed=n)
        queries = [rng.uniform(0, 1_000_000) for _ in range(25)]
        plain = SkipWeb1D(keys, seed=2)
        bucket = BucketSkipWeb1D(keys, memory_size=64, seed=2)
        plain_cost = sum(plain.nearest(q).messages for q in queries)
        bucket_cost = sum(bucket.nearest(q, origin_key=rng.choice(keys)).messages for q in queries)
        assert bucket_cost <= plain_cost


def test_benchmark_bucket_skipweb_query(benchmark):
    keys = uniform_keys(512, seed=3)
    bucket = BucketSkipWeb1D(keys, memory_size=64, seed=3)
    rng = random.Random(4)
    benchmark(lambda: bucket.nearest(rng.uniform(0, 1_000_000), origin_key=rng.choice(keys)))
