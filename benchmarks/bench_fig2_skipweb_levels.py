"""Figure 2 — the one-dimensional skip-web level structure.

Checks the picture the figure draws: level 0 is the whole sorted list,
each level roughly halves the sets, the top-level sets are O(1) in size,
and the per-level routing work of a query is O(1) messages.
"""

import random

from repro.bench.experiments import fig2_skipweb_levels
from repro.bench.reporting import format_table
from repro.onedim import SkipWeb1D
from repro.workloads import uniform_keys


def test_fig2_level_structure(capsys):
    rows = fig2_skipweb_levels(n=256, queries=40, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Figure 2 (measured): 1-d skip-web levels"))

    by_level = {row["level"]: row for row in rows}
    height = max(by_level)

    assert by_level[0]["sets"] == 1
    assert by_level[0]["largest_set"] == 256
    # Sets roughly halve per level (allow randomness slack).
    for level in range(1, height + 1):
        assert by_level[level]["mean_set"] <= by_level[level - 1]["mean_set"]
    # Top-level sets are tiny, and per-level query work is O(1) messages.
    assert by_level[height]["largest_set"] <= 10
    assert all(row["msgs_at_level_mean"] <= 6 for row in rows)


def test_benchmark_skipweb_level_descend(benchmark):
    keys = uniform_keys(512, seed=3)
    web = SkipWeb1D(keys, seed=3)
    rng = random.Random(4)
    benchmark(lambda: web.nearest(rng.uniform(0, 1_000_000)))
