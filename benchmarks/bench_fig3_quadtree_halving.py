"""Figure 3 / Lemma 3 — the set-halving lemma for compressed quadtrees.

The per-level descent work (cells of ``D(S)`` containing the query inside
the located cell of the random half ``D(T)``) must stay O(1) as ``n``
grows, for uniform and for clustered (deep-tree) point sets.
"""

import random

from repro.bench.experiments import fig3_quadtree
from repro.bench.reporting import format_table
from repro.spatial.geometry import HyperCube
from repro.spatial.quadtree import CompressedQuadtree
from repro.spatial.skip_quadtree import descent_conflicts
from repro.workloads import clustered_points, uniform_points

UNIT_CUBE = HyperCube((0.0, 0.0), 1.0)


def test_fig3_halving_constant_uniform(capsys):
    rows = fig3_quadtree(sizes=(64, 256, 1024), trials=6, queries_per_size=20, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Figure 3 (measured): quadtree set-halving, uniform points"))
    means = [row["mean_conflicts"] for row in rows]
    # O(1): the constant must not track n (n grows 16x here).
    assert means[-1] <= means[0] * 2.5
    assert all(mean <= 8 for mean in means)


def test_fig3_halving_constant_three_dimensions(capsys):
    rows = fig3_quadtree(sizes=(64, 512), trials=5, queries_per_size=15, dimension=3, seed=1)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Figure 3 (measured): octree set-halving, 3-d"))
    assert rows[-1]["mean_conflicts"] <= rows[0]["mean_conflicts"] * 2.5


def test_fig3_halving_clustered_deep_trees():
    rng = random.Random(2)
    points = clustered_points(600, seed=3, clusters=3, spread=0.0005)
    full = CompressedQuadtree(points, UNIT_CUBE)
    assert full.depth() >= 10
    half = CompressedQuadtree(points[::2], UNIT_CUBE)
    samples = [
        descent_conflicts(full, half, (rng.random(), rng.random())) for _ in range(60)
    ]
    assert sum(samples) / len(samples) <= 8


def test_benchmark_quadtree_halving_sample(benchmark):
    rng = random.Random(4)
    points = uniform_points(512, seed=5)
    full = CompressedQuadtree(points, UNIT_CUBE)
    half = CompressedQuadtree(points[::2], UNIT_CUBE)
    benchmark(lambda: descent_conflicts(full, half, (rng.random(), rng.random())))
