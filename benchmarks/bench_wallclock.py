"""Wall-clock benchmark tier: ops/sec and peak memory, not message counts.

The message-count benchmarks (everything else in ``benchmarks/``) treat
the paper's cost model as ground truth; this module measures the other
axis — how fast the simulator itself runs.  Seeded query / insert /
range / churn workloads are timed over every structure family, under
both executors (the immediate driver and the round-based
:class:`~repro.engine.executor.BatchExecutor`), on the zero-allocation
ledger substrate with bulk-load construction — the configuration the
experiment registry runs in.

Rows carry ``secs_per_op`` (the gated metric: lower is better),
``ops_per_sec`` and the process peak RSS at the end of the workload.
``check_regression.py --families wallclock`` compares the quick-mode
``secs_per_op`` values against ``benchmarks/baseline.json`` with a
deliberately loose tolerance (timing noise must never flap CI; only
multi-× slowdowns fail).

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_wallclock.py   # table + sanity
    PYTHONPATH=src python benchmarks/bench_wallclock.py             # table
    PYTHONPATH=src python benchmarks/bench_wallclock.py --markdown  # CI job summary
"""

from __future__ import annotations

import argparse
import os
import random
import resource
import sys
import time
from pathlib import Path
from typing import Any, Callable, Iterator

if __package__ in (None, ""):
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.baselines import ChordDHT, SkipGraph
from repro.engine import BatchExecutor, Operation, RepairEngine, ShardedExecutor, run_immediate
from repro.net.churn import ChurnController, churn_schedule
from repro.net.network import ledger_mode
from repro.onedim import BucketSkipWeb1D, SkipWeb1D
from repro.spatial.geometry import Box, HyperCube
from repro.spatial.skip_quadtree import SkipQuadtreeWeb
from repro.strings import LOWERCASE
from repro.strings.skip_trie import PrefixRange, SkipTrieWeb
from repro.workloads import uniform_keys, uniform_points
from repro.workloads.strings import prefix_queries, random_strings

Row = dict[str, Any]

#: Quick-mode workload sizes (the CI-gated configuration).
QUICK = {"n": 96, "queries": 48, "inserts": 12, "ranges": 8, "churn_events": 3, "seed": 0}
#: Full-mode sizes for local runs.
FULL = {"n": 256, "queries": 160, "inserts": 32, "ranges": 24, "churn_events": 6, "seed": 0}


def _peak_rss_kb() -> int:
    """Process peak RSS in KB (monotone high-water mark on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


#: Peak RSS measured once, before any workload has run (see
#: :func:`_startup_rss_kb`).
_STARTUP_RSS_KB: int | None = None


def _startup_rss_kb() -> int:
    """Calibrated startup baseline: peak RSS before the first workload.

    On quick-mode sizes the interpreter, pytest and the imports dominate
    ``ru_maxrss``, so the raw high-water mark says almost nothing about
    the structures under test.  The baseline is captured once per
    process, immediately before the first workload builds anything; the
    ``rss_delta_kb`` column reports each row's peak minus this floor —
    the memory the benchmark itself has added so far.
    """
    global _STARTUP_RSS_KB
    if _STARTUP_RSS_KB is None:
        _STARTUP_RSS_KB = _peak_rss_kb()
    return _STARTUP_RSS_KB


class _Scenario:
    """One structure family with its workload makers."""

    def __init__(
        self,
        name: str,
        build: Callable[[], Any],
        queries: list[Any],
        inserts: list[Any],
        ranges: list[Any],
        churn: bool = True,
    ) -> None:
        self.name = name
        self.build = build
        self.queries = queries
        self.inserts = inserts
        self.ranges = ranges
        self.churn = churn


def _scenarios(n: int, queries: int, inserts: int, ranges: int, seed: int) -> Iterator[_Scenario]:
    rng = random.Random(seed)
    keys = sorted(set(float(key) for key in uniform_keys(n, seed=seed)))
    key_queries = [rng.uniform(0.0, 1_000_000.0) for _ in range(queries)]
    key_inserts = sorted(
        set(
            float(key)
            for key in uniform_keys(2 * inserts, seed=seed + 1, low=1_000_001.0, high=2_000_000.0)
        )
    )[:inserts]
    sorted_keys = sorted(keys)
    key_ranges = []
    for _ in range(ranges):
        start = rng.randrange(0, max(1, len(sorted_keys) - 8))
        key_ranges.append((sorted_keys[start], sorted_keys[min(len(sorted_keys) - 1, start + 7)]))

    yield _Scenario(
        "skip-web 1-d",
        lambda: SkipWeb1D.build_from_sorted(keys, seed=seed),
        key_queries,
        key_inserts,
        key_ranges,
    )
    yield _Scenario(
        "bucket skip-web (M=32)",
        lambda: BucketSkipWeb1D.build_from_sorted(keys, 32, seed=seed),
        key_queries,
        key_inserts,
        key_ranges,
    )

    points = uniform_points(n, dimension=2, seed=seed)
    fresh_points = [
        point
        for point in uniform_points(2 * inserts, dimension=2, seed=seed + 2)
        if point not in points
    ][:inserts]
    point_ranges = [Box.around_point(rng.choice(points), 0.05) for _ in range(ranges)]
    yield _Scenario(
        "quadtree skip-web",
        lambda: SkipQuadtreeWeb.build_from_sorted(
            points, bounding_cube=HyperCube((0.0, 0.0), 1.0), seed=seed
        ),
        [(rng.random(), rng.random()) for _ in range(queries)],
        fresh_points,
        point_ranges,
    )

    strings = random_strings(n, alphabet=LOWERCASE, seed=seed)
    fresh_strings = [
        text
        for text in random_strings(2 * inserts, alphabet=LOWERCASE, seed=seed + 3)
        if text not in strings
    ][:inserts]
    string_ranges = [PrefixRange(rng.choice(strings)[:2]) for _ in range(ranges)]
    yield _Scenario(
        "trie skip-web",
        lambda: SkipTrieWeb.build_from_sorted(strings, alphabet=LOWERCASE, seed=seed),
        prefix_queries(strings, queries, seed=seed),
        fresh_strings,
        string_ranges,
    )

    yield _Scenario(
        "skip graph (baseline)",
        lambda: SkipGraph.build_from_sorted(keys, seed=seed),
        key_queries,
        key_inserts,
        key_ranges,
    )

    # Chord answers exact-match lookups only (§1.2): query stored keys,
    # and skip the unsupported insert / range workloads.
    yield _Scenario(
        "Chord DHT",
        lambda: ChordDHT.build_from_sorted(keys),
        [rng.choice(keys) for _ in range(queries)],
        [],
        [],
    )


def _timed(fn: Callable[[], Any]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _row(
    structure: str,
    workload: str,
    executor: str,
    ops: int,
    elapsed: float,
    topology: str = "flat",
) -> Row:
    per_op = elapsed / ops if ops else 0.0
    peak_rss = _peak_rss_kb()
    return {
        "structure": structure,
        "workload": workload,
        "executor": executor,
        "topology": topology,
        "ops": ops,
        "elapsed_s": round(elapsed, 4),
        # Nanosecond precision: a cell must never round down to 0.0, or a
        # recorded 0.0 baseline would fail every later (non-zero) run.
        "secs_per_op": round(per_op, 9),
        "ops_per_sec": round(1.0 / per_op, 1) if per_op else 0.0,
        "peak_rss_kb": peak_rss,
        "rss_delta_kb": max(0, peak_rss - _startup_rss_kb()),
    }


def _run_immediate_ops(structure, kind: str, payloads: list[Any]) -> None:
    origins = structure.origin_hosts()
    for index, payload in enumerate(payloads):
        origin = origins[index % len(origins)]
        if kind == "query":
            gen = structure.search_steps(payload, origin)
        elif kind == "insert":
            gen = structure.insert_steps(payload, origin)
        else:
            gen = structure.range_steps(payload, origin)
        run_immediate(structure.network, gen, origin)


def _run_batched_ops(structure, kind: str, payloads: list[Any]) -> None:
    op_kind = {"query": "search", "insert": "insert", "range": "range"}[kind]
    BatchExecutor(structure).run([Operation(op_kind, payload) for payload in payloads])


#: Worker count for the ``executor=sharded-<N>`` rows.
SHARD_WORKERS = 2


def _run_sharded_ops(structure, kind: str, payloads: list[Any]) -> None:
    op_kind = {"query": "search", "insert": "insert", "range": "range"}[kind]
    ShardedExecutor(structure, workers=SHARD_WORKERS).run(
        [Operation(op_kind, payload) for payload in payloads]
    )


def wallclock_rows(
    n: int, queries: int, inserts: int, ranges: int, churn_events: int, seed: int
) -> list[Row]:
    """Time every (structure, workload, executor) cell; returns table rows.

    Runs on the ledger substrate with bulk-load construction — the same
    configuration the experiment registry uses — so the timings reflect
    the fast path users actually get.  All workloads are seeded; the
    timings are the only non-deterministic column.
    """
    rows: list[Row] = []
    _startup_rss_kb()  # calibrate the RSS floor before any workload runs
    with ledger_mode():
        for scenario in _scenarios(n, queries, inserts, ranges, seed):
            holder: dict[str, Any] = {}

            def build(scenario=scenario, holder=holder) -> None:
                holder["structure"] = scenario.build()

            rows.append(_row(scenario.name, "build", "bulk", n, _timed(build)))
            structure = holder["structure"]

            rows.append(
                _row(
                    scenario.name,
                    "query",
                    "immediate",
                    len(scenario.queries),
                    _timed(lambda: _run_immediate_ops(structure, "query", scenario.queries)),
                )
            )
            rows.append(
                _row(
                    scenario.name,
                    "query",
                    "batched",
                    len(scenario.queries),
                    _timed(lambda: _run_batched_ops(structure, "query", scenario.queries)),
                )
            )
            rows.append(
                _row(
                    scenario.name,
                    "query",
                    f"sharded-{SHARD_WORKERS}",
                    len(scenario.queries),
                    _timed(lambda: _run_sharded_ops(structure, "query", scenario.queries)),
                )
            )
            if scenario.ranges:
                rows.append(
                    _row(
                        scenario.name,
                        "range",
                        "immediate",
                        len(scenario.ranges),
                        _timed(lambda: _run_immediate_ops(structure, "range", scenario.ranges)),
                    )
                )
                rows.append(
                    _row(
                        scenario.name,
                        "range",
                        "batched",
                        len(scenario.ranges),
                        _timed(lambda: _run_batched_ops(structure, "range", scenario.ranges)),
                    )
                )
            if scenario.inserts:
                half = len(scenario.inserts) // 2
                rows.append(
                    _row(
                        scenario.name,
                        "insert",
                        "immediate",
                        half,
                        _timed(
                            lambda: _run_immediate_ops(structure, "insert", scenario.inserts[:half])
                        ),
                    )
                )
                rows.append(
                    _row(
                        scenario.name,
                        "insert",
                        "batched",
                        len(scenario.inserts) - half,
                        _timed(
                            lambda: _run_batched_ops(structure, "insert", scenario.inserts[half:])
                        ),
                    )
                )
            if scenario.churn and churn_events:
                controller = ChurnController(
                    structure.network, RepairEngine(structure), rng=random.Random(seed)
                )
                schedule = churn_schedule(churn_events, random.Random(seed + 7))
                rows.append(
                    _row(
                        scenario.name,
                        "churn",
                        "rounds",
                        churn_events,
                        _timed(lambda: controller.run_schedule(schedule)),
                    )
                )
        rows.extend(_topology_rows(n, queries, seed))
    rows.extend(_durability_rows(seed))
    return rows


#: Explicit topologies timed by the cost-model rows; the flat *default*
#: (no explicit topology) is the plain ``skip-web 1-d`` query/batched row.
TOPOLOGY_ROWS = ("clustered", "geo")


def _topology_rows(n: int, queries: int, seed: int) -> list[Row]:
    """Cost-model overhead: the batched 1-d query workload per topology.

    The flat default is already timed by the
    ``structure=skip-web 1-d,workload=query,executor=batched`` row
    (``topology=flat``); these rows re-run the same seeded workload on a
    fresh structure under each explicit topology.  Comparing them bounds
    the weighted-aggregation path's overhead and shows the flat default
    pays none of it — the per-link/per-cluster tallies only run when a
    topology is attached.
    """
    from repro.net.topology import resolve_topology

    rng = random.Random(seed)
    keys = sorted(set(float(key) for key in uniform_keys(n, seed=seed)))
    payloads = [rng.uniform(0.0, 1_000_000.0) for _ in range(queries)]
    rows: list[Row] = []
    for name in TOPOLOGY_ROWS:
        structure = SkipWeb1D.build_from_sorted(keys, seed=seed)
        structure.network.set_topology(resolve_topology(name, seed=seed))
        rows.append(
            _row(
                "skip-web 1-d",
                "query",
                "batched",
                len(payloads),
                _timed(lambda: _run_batched_ops(structure, "query", payloads)),
                topology=name,
            )
        )
    return rows


#: Steps of the seeded durable workload timed by the ``durability`` rows.
DURABILITY_STEPS = 12


def _durability_rows(seed: int) -> list[Row]:
    """Journaling overhead: the seeded workload bare vs with a jsonl log.

    Times ``repro.storage.workload.run_workload`` twice — once without
    storage, once journaling every committed action to a jsonl store —
    and prints the overhead to stderr.  The overhead is informational
    (the regression gate bounds each timing independently); the design
    target is < 15% for the log-everything configuration (DESIGN.md §9).
    """
    import shutil
    import tempfile

    from repro.storage.workload import run_workload

    steps = DURABILITY_STEPS
    bare = _timed(lambda: run_workload("skipweb1d", steps=steps, seed=seed))
    tmp = tempfile.mkdtemp(prefix="repro-durability-")
    try:
        logged = _timed(
            lambda: run_workload(
                "skipweb1d", steps=steps, seed=seed, storage=os.path.join(tmp, "log.jsonl")
            )
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    if bare > 0:
        overhead = (logged - bare) / bare * 100.0
        print(
            f"durability: jsonl journaling overhead {overhead:+.1f}% "
            f"({logged:.3f}s vs {bare:.3f}s over {steps} steps; target < 15%)",
            file=sys.stderr,
        )
    return [
        _row("skip-web 1-d", "durability", "bare", steps, bare),
        _row("skip-web 1-d", "durability", "journaled", steps, logged),
    ]


def wallclock_metrics(params: dict[str, int] | None = None) -> dict[str, float]:
    """The quick-mode timing metrics gated by ``check_regression.py``.

    Keys follow the ``wallclock[...]`` family convention; values are
    ``secs_per_op`` (lower is better).
    """
    rows = wallclock_rows(**(params or QUICK))
    metrics: dict[str, float] = {}
    for row in rows:
        identity = (
            f"structure={row['structure']},workload={row['workload']},executor={row['executor']}"
        )
        # Flat-default rows keep their historical keys; only explicit
        # non-flat topologies grow a discriminating suffix.
        if row.get("topology", "flat") != "flat":
            identity += f",topology={row['topology']}"
        metrics[f"wallclock[{identity}].secs_per_op"] = row["secs_per_op"]
    return metrics


# --------------------------------------------------------------------- #
# pytest entry point
# --------------------------------------------------------------------- #
def test_wallclock_quick(capsys):
    from repro.bench.reporting import format_table

    rows = wallclock_rows(**QUICK)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Wall-clock tier (quick): ops/sec and peak RSS"))
    structures = {row["structure"] for row in rows}
    assert len(structures) >= 5
    workloads = {row["workload"] for row in rows}
    assert workloads == {"build", "query", "insert", "range", "churn", "durability"}
    durability = [row for row in rows if row["workload"] == "durability"]
    assert {row["executor"] for row in durability} == {"bare", "journaled"}
    for row in rows:
        assert row["elapsed_s"] >= 0.0
        assert row["ops"] > 0
        assert row["peak_rss_kb"] > 0
        # The delta is measured against the calibrated startup floor, so
        # it is non-negative and strictly below the raw high-water mark.
        assert 0 <= row["rss_delta_kb"] < row["peak_rss_kb"]
    # Both serial executors are exercised for every operational workload,
    # and every family gets a sharded query row.
    for workload in ("query", "insert", "range"):
        executors = {row["executor"] for row in rows if row["workload"] == workload}
        assert {"immediate", "batched"} <= executors, workload
    sharded = {row["structure"] for row in rows if row["executor"] == f"sharded-{SHARD_WORKERS}"}
    assert sharded == {row["structure"] for row in rows}
    # Every row carries the cost-model column; the explicit topologies
    # appear exactly once each, next to the flat-default majority.
    topologies = {row["topology"] for row in rows}
    assert topologies == {"flat", *TOPOLOGY_ROWS}
    for name in TOPOLOGY_ROWS:
        assert sum(1 for row in rows if row["topology"] == name) == 1


# --------------------------------------------------------------------- #
# command line
# --------------------------------------------------------------------- #
def _markdown_table(rows: list[Row]) -> str:
    columns = list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |", "|" + "---|" * len(columns)]
    for row in rows:
        lines.append("| " + " | ".join(str(row[column]) for column in columns) + " |")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true", help="run the larger local sizes")
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit a GitHub-flavoured markdown table (for CI job summaries)",
    )
    args = parser.parse_args(argv)
    rows = wallclock_rows(**(FULL if args.full else QUICK))
    if args.markdown:
        print("### Wall-clock tier" + (" (full)" if args.full else " (quick)"))
        print()
        print(_markdown_table(rows))
        return 0
    from repro.bench.reporting import format_table

    print(format_table(rows, title="Wall-clock tier: ops/sec and peak RSS"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
