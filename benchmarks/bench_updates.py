"""§4 — update (insert/delete) message costs.

Skip-web updates must cost O(log n) messages (O(log n / log log n) for the
bucketed one-dimensional structure): the measured means must grow far more
slowly than n and stay within a generous constant times log n.
"""

import math
import random

from repro.bench.experiments import update_costs
from repro.bench.reporting import format_table
from repro.onedim import SkipWeb1D
from repro.workloads import uniform_keys


def test_update_costs(capsys):
    sizes = (64, 128, 256)
    rows = update_costs(sizes=sizes, updates_per_size=6, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="§4 (measured): update message costs"))

    onedim = [row for row in rows if row["structure"] == "skip-web 1-d"]
    inserts = [row["insert_mean"] for row in onedim]
    # n quadruples; an O(log n) cost should grow by roughly +2 levels' worth,
    # nowhere near 4x.
    assert inserts[-1] <= inserts[0] * 2.5
    for n, row in zip(sizes, onedim):
        assert row["insert_mean"] <= 12 * math.log2(n)
        assert row["delete_mean"] <= 12 * math.log2(n)

    bucket = [row for row in rows if row["structure"].startswith("bucket")]
    for n, row in zip(sizes, bucket):
        assert row["insert_mean"] <= 6 * math.log2(n)


def test_update_includes_search_cost():
    keys = uniform_keys(128, seed=1)
    web = SkipWeb1D(keys, seed=1)
    result = web.insert(123456.5)
    assert result.search_messages >= 0
    assert result.messages == result.search_messages + result.propagate_messages


def test_benchmark_skipweb_insert(benchmark):
    rng = random.Random(2)
    keys = uniform_keys(128, seed=3)

    def do_insert():
        web = SkipWeb1D(keys, seed=4)
        web.insert(rng.uniform(0, 1_000_000))

    benchmark.pedantic(do_insert, rounds=3, iterations=1)
