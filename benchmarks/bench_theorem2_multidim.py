"""Theorem 2 — query message complexity of multi-dimensional skip-webs.

Quadtree, trie and trapezoid skip-webs must answer point-location /
string-location queries in O(log n) expected messages with O(log n)-ish
per-host memory, even when the underlying tree is deep.
"""

import random

from repro.bench.experiments import theorem2_multidim
from repro.bench.fitting import best_growth_law
from repro.bench.reporting import format_table
from repro.spatial.geometry import HyperCube
from repro.spatial.skip_quadtree import SkipQuadtreeWeb
from repro.workloads import degenerate_line_points, uniform_points


def test_theorem2_multidim_costs(capsys):
    rows = theorem2_multidim(sizes=(64, 128, 256), queries_per_size=20, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Theorem 2 (measured): multi-dimensional skip-web queries"))

    quad_rows = [row for row in rows if row["structure"] == "quadtree skip-web"]
    sizes = [row["n"] for row in quad_rows]
    costs = [row["Q_mean"] for row in quad_rows]
    fit = best_growth_law(sizes, costs, candidates=("1", "log n", "n"))
    assert fit.law != "n"
    # Message costs stay far below n at every size (log-like).
    for row in rows:
        assert row["Q_mean"] <= 25
        assert row["Q_max"] <= 60


def test_theorem2_holds_for_linear_depth_quadtrees():
    """The headline claim: O(log n) messages even when the tree has huge depth."""
    points = degenerate_line_points(120, seed=1)
    web = SkipQuadtreeWeb(points, bounding_cube=HyperCube((0.0, 0.0), 1.0), seed=2)
    depth = web.level0_tree.depth()
    assert depth >= 20
    rng = random.Random(3)
    costs = [web.locate((rng.random(), rng.random())).messages for _ in range(25)]
    assert sum(costs) / len(costs) < depth  # far below the tree depth
    assert max(costs) <= 40


def test_benchmark_quadtree_web_locate(benchmark):
    points = uniform_points(256, seed=4)
    web = SkipQuadtreeWeb(points, bounding_cube=HyperCube((0.0, 0.0), 1.0), seed=5)
    rng = random.Random(6)
    benchmark(lambda: web.locate((rng.random(), rng.random())))
