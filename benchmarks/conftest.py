"""Shared configuration for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper via the
experiment functions in :mod:`repro.bench.experiments` (small problem sizes
so the whole suite runs in minutes), prints the measured rows, asserts the
qualitative shape the paper claims, and exposes one ``pytest-benchmark``
timing hook for the headline operation of that experiment.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
