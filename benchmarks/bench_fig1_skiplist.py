"""Figure 1 — the classic skip list: expected O(log n) search, O(n) space."""

import math
import random

from repro.baselines import SkipList
from repro.bench.experiments import fig1_skiplist
from repro.bench.fitting import best_growth_law
from repro.bench.reporting import format_table
from repro.workloads import uniform_keys


def test_fig1_search_grows_logarithmically(capsys):
    sizes = (128, 512, 2048, 8192)
    rows = fig1_skiplist(sizes=sizes, queries_per_size=120, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Figure 1 (measured): skip list search and space"))

    hops = [row["search_hops_mean"] for row in rows]
    fit = best_growth_law(sizes, hops, candidates=("1", "log n", "log^2 n", "n"))
    assert fit.law == "log n"

    # Space: the expected number of node copies per key is 1/(1-p) = 2.
    for row in rows:
        assert row["node_copies_per_key"] < 3.0

    # Levels track log2 n.
    for size, row in zip(sizes, rows):
        assert row["levels"] <= 4 * math.log2(size)


def test_benchmark_skiplist_search(benchmark):
    keys = uniform_keys(4096, seed=1)
    skiplist = SkipList(keys, seed=1)
    rng = random.Random(2)
    benchmark(lambda: skiplist.search(rng.uniform(0, 1_000_000)))
