"""Figure 4 / Lemma 5 — the set-halving lemma for trapezoidal maps.

The expected number of trapezoids of ``D(S)`` conflicting with the
trapezoid of the random half ``D(T)`` containing a query point must stay
O(1) as the number of segments grows (the ``1 + a + 2b + 3c`` identity of
Lemma 5 bounds it).
"""

import random

from repro.bench.experiments import fig4_trapezoid
from repro.bench.reporting import format_table
from repro.planar.segments import bounding_box
from repro.planar.trapezoidal_map import TrapezoidalMap
from repro.workloads import non_crossing_segments


def test_fig4_halving_constant(capsys):
    rows = fig4_trapezoid(sizes=(16, 32, 64), trials=5, queries_per_size=15, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Figure 4 (measured): trapezoidal-map set-halving"))
    means = [row["mean_conflicts"] for row in rows]
    # The segment count quadruples; an O(1) expectation must not follow it.
    assert means[-1] <= means[0] * 2.5


def test_lemma5_conflict_identity_lower_bound():
    """Every trapezoid of D(T) conflicts with at least itself (the +1 of Lemma 5)."""
    segments = non_crossing_segments(30, seed=1)
    box = bounding_box(segments)
    full = TrapezoidalMap(segments, box=box)
    half = TrapezoidalMap(segments[::2], box=box)
    for trapezoid in half.trapezoids:
        assert len(full.conflicting_trapezoids(trapezoid)) >= 1


def test_benchmark_trapezoid_conflicts(benchmark):
    segments = non_crossing_segments(48, seed=2)
    box = bounding_box(segments)
    full = TrapezoidalMap(segments, box=box)
    half = TrapezoidalMap(segments[::2], box=box)
    rng = random.Random(3)

    def sample():
        point = (rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3]))
        return full.conflicting_trapezoids(half.locate(point))

    benchmark(sample)
