"""Ablation — blocking strategies (§2.4 arbitrary vs §2.4.1 bucketed).

The design decision DESIGN.md calls out: how structure units are assigned
to hosts.  Arbitrary assignments (owner / round-robin / hash) all give the
skip-graph-like O(log n) query cost; the bucketed assignment trades larger
per-host memory for fewer messages, increasingly so as M grows.
"""

from repro.bench.experiments import ablation_blocking
from repro.bench.reporting import format_table
from repro.onedim import BucketSkipWeb1D
from repro.workloads import uniform_keys


def test_ablation_blocking(capsys):
    rows = ablation_blocking(n=256, memory_sizes=(16, 64, 256), queries=30, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Ablation (measured): blocking strategies, n=256"))

    arbitrary = [row for row in rows if row["policy"].startswith("arbitrary")]
    bucketed = [row for row in rows if row["policy"].startswith("bucket")]

    # Every arbitrary policy answers in O(log n)-ish messages.
    assert all(row["Q_mean"] <= 15 for row in arbitrary)
    # Bucketed blocking with the largest M beats every arbitrary policy.
    best_bucket = min(row["Q_mean"] for row in bucketed)
    assert best_bucket <= min(row["Q_mean"] for row in arbitrary)
    # And memory per host grows with M, as §2.4.1 predicts.
    memories = [row["M_max"] for row in bucketed]
    assert memories == sorted(memories)


def test_benchmark_bucket_construction(benchmark):
    keys = uniform_keys(256, seed=1)
    benchmark.pedantic(
        lambda: BucketSkipWeb1D(keys, memory_size=64, seed=2), rounds=3, iterations=1
    )
