"""Throughput — batched mixed workloads through the round-based engine.

The acceptance-level claim for the batched execution engine: a mixed
batch of well over a thousand operations (queries and inserts), spread
across three different skip-web structure types, runs concurrently under
:class:`repro.engine.executor.BatchExecutor` with high completion,
throughput of several operations per round, per-operation message costs
in line with the immediate-mode numbers, and per-host per-round
congestion on the O(log n / log log n) scale — plus a measurable win from
the per-origin route cache once it is warm.
"""

import math

from repro.bench.experiments import throughput
from repro.bench.reporting import format_table
from repro.engine import BatchExecutor, Operation
from repro.onedim import SkipWeb1D
from repro.workloads import uniform_keys


def test_throughput_mixed_batches(capsys):
    rows = throughput(sizes=(128, 256), ops_per_size=400, seed=0)
    with capsys.disabled():
        print()
        print(format_table(rows, title="Throughput (measured): batched mixed workloads"))

    mixed = [row for row in rows if row["cache"] == "off"]

    # ≥ 1000 mixed operations across at least three structure types.
    assert sum(row["ops"] for row in mixed) >= 1000
    assert len({row["structure"] for row in mixed}) >= 3

    for row in mixed:
        # Churned batches may drop a few operations to retry exhaustion,
        # but the engine must complete the overwhelming majority.
        assert row["completed"] >= 0.97 * row["ops"], row
        # Genuine concurrency: many operations make progress per round.
        assert row["ops_per_round"] > 1.5, row
        # Message cost stays on the O(log n) scale of Theorem 2.
        assert row["msgs_per_op"] <= 4 * math.log2(row["n"]), row
        # Per-host per-round congestion stays well below the batch size.
        assert row["C_round_max"] <= row["ops"] / 4, row

    # The route cache is a measurable fast path once warm.
    for n in (128, 256):
        cold = next(r for r in rows if r["n"] == n and r["cache"] == "cold")
        warm = next(r for r in rows if r["n"] == n and r["cache"] == "warm")
        assert warm["cache_hit_rate"] > 0.5
        assert warm["msgs_per_op"] < cold["msgs_per_op"]


def test_batched_matches_immediate_answers():
    """Round-based execution must return the same answers as immediate mode."""
    keys = uniform_keys(96, seed=5)
    web = SkipWeb1D(keys, seed=5)
    queries = uniform_keys(40, seed=6)
    result = BatchExecutor(web).run([Operation("search", q) for q in queries])
    assert result.failed == 0
    for outcome in result.outcomes:
        direct = web.nearest(outcome.operation.payload, origin_host=outcome.origin_host)
        assert direct.answer.nearest == outcome.value.answer.nearest
        assert direct.messages == outcome.value.messages


def test_benchmark_batched_queries(benchmark):
    keys = uniform_keys(256, seed=1)
    web = SkipWeb1D(keys, seed=1)
    queries = uniform_keys(200, seed=2)
    operations = [Operation("search", q) for q in queries]
    benchmark.pedantic(lambda: BatchExecutor(web).run(operations), rounds=3, iterations=1)
