"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. a fresh checkout without network access for
``pip install -e .``).  When the package *is* installed this is a no-op
apart from preferring the in-tree sources.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
