"""API-surface lock: ``repro.api.__all__`` and its public signatures.

The names and signatures below are the *supported* surface declared by
``repro.api`` (see its module docstring's stability policy).  This test
runs in the CI lint job: changing the public API makes it fail, turning
every surface change into an explicit, reviewed edit of this snapshot
rather than an accident.

To update the snapshot after an intentional API change, re-run::

    PYTHONPATH=src python tests/test_api_surface.py --regenerate

and paste the output over the constants below.
"""

import inspect

import repro.api as api
from repro.api.results import OperationHandle

EXPECTED_ALL = [
    "Cluster",
    "ClusterSession",
    "Operation",
    "OperationHandle",
    "BatchReport",
    "ClusterStats",
    "StructureSpec",
    "register_structure",
    "resolve_structure",
    "available_structures",
    "structure_specs",
    "set_default_workers",
    "default_workers",
    "Topology",
    "FlatTopology",
    "ClusteredTopology",
    "GeoTopology",
    "resolve_topology",
    "FaultPlan",
    "FaultRule",
    "resolve_faults",
]

#: Structure families every release must keep resolvable by these names.
EXPECTED_STRUCTURES = [
    "bucket-skipgraph",
    "bucket-skipweb1d",
    "chord",
    "det-skipnet",
    "family-tree",
    "non-skipgraph",
    "skipgraph",
    "skipnet",
    "skipquadtree",
    "skiptrapezoid",
    "skiptrie",
    "skipweb1d",
]

EXPECTED_SIGNATURES = {
    "Cluster.__init__": (
        "(self, structure: 'str' = 'skipweb1d', items: 'Sequence[Any] | None' = None, "
        "*, hosts: 'int | None' = None, memory_size: 'int | None' = None, "
        "seed: 'int' = 0, mode: 'str' = 'batched', workers: 'int | None' = None, network: 'Network | None' = None, "
        "topology: \"'Topology | str | None'\" = None, "
        "faults: \"'FaultPlan | str | Mapping[str, Any] | None'\" = None, "
        "round_budget: 'int | None' = None, "
        "route_cache: 'bool' = False, max_retries: 'int' = 5, "
        "churn_rng: 'random.Random | None' = None, join_fraction: 'float' = 0.5, "
        "min_hosts: 'int' = 2, storage: \"'str | StorageBackend | None'\" = None, "
        "snapshot_every: 'int' = 0, **options: 'Any') -> 'None'"
    ),
    "Cluster.bulk_load": "(self, sorted_items: 'Sequence[Any]') -> 'OperationHandle'",
    "Cluster.get": "(self, key: 'Any', origin_host: 'HostId | None' = None) -> 'OperationHandle'",
    "Cluster.nearest": (
        "(self, query: 'Any', origin_host: 'HostId | None' = None) -> 'OperationHandle'"
    ),
    "Cluster.range": (
        "(self, query_range: 'Any', origin_host: 'HostId | None' = None) -> 'OperationHandle'"
    ),
    "Cluster.insert": (
        "(self, item: 'Any', origin_host: 'HostId | None' = None) -> 'OperationHandle'"
    ),
    "Cluster.delete": (
        "(self, item: 'Any', origin_host: 'HostId | None' = None) -> 'OperationHandle'"
    ),
    "Cluster.batch": "(self, operations: 'Sequence[Any]') -> 'BatchReport'",
    "Cluster.configure_churn": (
        "(self, rng: 'random.Random | None' = None, join_fraction: 'float | None' = None, "
        "min_hosts: 'int | None' = None) -> 'None'"
    ),
    "Cluster.join_host": "(self) -> 'ChurnEvent'",
    "Cluster.leave_host": "(self, host_id: 'HostId | None' = None) -> 'ChurnEvent'",
    "Cluster.crash_host": "(self, host_id: 'HostId | None' = None) -> 'ChurnEvent'",
    "Cluster.recover_host": "(self, host_id: 'HostId | None' = None) -> 'ChurnEvent'",
    "Cluster.run_churn_schedule": "(self, kinds: 'Sequence[str]') -> 'list[ChurnEvent]'",
    "Cluster.repair": "(self, host_ids: 'Sequence[HostId]') -> 'RepairResult'",
    "Cluster.save": "(self) -> 'None'",
    "Cluster.load": "(path: \"'str | StorageBackend'\") -> \"'Cluster'\"",
    "Cluster.recover": (
        "(path: \"'str | StorageBackend'\", *, trim_torn_tail: 'bool' = False, "
        "from_snapshot: 'bool' = True) -> \"'Cluster'\""
    ),
    "Cluster.session": "(self) -> 'Iterator[ClusterSession]'",
    "Cluster.close": "(self) -> 'None'",
    "OperationHandle.to_dict": (
        "(self, include_value: 'bool' = True) -> 'dict[str, Any]'"
    ),
    "BatchReport.to_dict": (
        "(self, include_values: 'bool' = True) -> 'dict[str, Any]'"
    ),
    "Cluster.stats": "(self) -> 'ClusterStats'",
    "Cluster.congestion": "(self) -> 'Any'",
    "Cluster.round_congestion": "(self) -> 'RoundCongestionReport'",
    "Cluster.from_structure": (
        "(structure: 'Any', *, mode: 'str' = 'batched', route_cache: 'bool' = False, "
        "max_retries: 'int' = 5, churn_rng: 'random.Random | None' = None, "
        "join_fraction: 'float' = 0.5, min_hosts: 'int' = 2) -> \"'Cluster'\""
    ),
    "register_structure": "(spec: 'StructureSpec') -> 'StructureSpec'",
    "resolve_topology": (
        "(spec: \"'str | Topology | None'\", seed: 'int' = 0) -> 'Topology | None'"
    ),
    "resolve_faults": (
        "(spec: \"'str | FaultRule | Sequence[FaultRule] | FaultPlan | None'\", "
        "seed: 'int' = 0) -> 'FaultPlan | None'"
    ),
    "set_default_workers": "(workers: 'int') -> 'None'",
    "default_workers": "() -> 'int'",
    "resolve_structure": "(name: 'str') -> 'StructureSpec'",
    "available_structures": "() -> 'list[str]'",
    "structure_specs": "() -> 'dict[str, StructureSpec]'",
}

#: The fields an OperationHandle is guaranteed to carry.
EXPECTED_HANDLE_FIELDS = [
    "kind",
    "payload",
    "origin_host",
    "status",
    "value",
    "error",
    "messages",
    "rounds",
    "retries",
    "cache_hits",
    "index",
    "latency",
]


def _actual_signatures() -> dict[str, str]:
    actual = {}
    for qualified in EXPECTED_SIGNATURES:
        if "." in qualified:
            owner_name, attribute = qualified.split(".", 1)
            target = getattr(getattr(api, owner_name), attribute)
        else:
            target = getattr(api, qualified)
        actual[qualified] = str(inspect.signature(target))
    return actual


def test_public_names_are_locked():
    assert list(api.__all__) == EXPECTED_ALL
    for name in api.__all__:
        assert hasattr(api, name)


def test_registered_structure_names_are_locked():
    assert api.available_structures() == EXPECTED_STRUCTURES


def test_public_signatures_are_locked():
    actual = _actual_signatures()
    for qualified, expected in EXPECTED_SIGNATURES.items():
        assert actual[qualified] == expected, (
            f"signature of {qualified} changed:\n"
            f"  expected {expected}\n  actual   {actual[qualified]}\n"
            "If intentional, update tests/test_api_surface.py."
        )


def test_operation_handle_fields_are_locked():
    fields = list(OperationHandle.__dataclass_fields__)
    assert fields == EXPECTED_HANDLE_FIELDS


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        print("EXPECTED_ALL =", list(api.__all__))
        print("EXPECTED_STRUCTURES =", api.available_structures())
        for qualified, signature in _actual_signatures().items():
            print(f'    "{qualified}": "{signature}",')
