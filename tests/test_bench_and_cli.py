"""Tests for the benchmark harness (fitting, reporting, experiments) and the CLI."""

import csv
import io
import json
import math

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ablation_blocking,
    churn,
    congestion_rounds,
    fault_tolerance,
    fig1_skiplist,
    fig2_skipweb_levels,
    lemma1_list,
    range_queries,
    theorem2_onedim,
    throughput,
    topology_comparison,
)
from repro.bench.fitting import GROWTH_LAWS, best_growth_law, fit_scale, growth_ratio
from repro.bench.reporting import format_series, format_table
from repro.cli import build_parser, main


class TestFitting:
    def test_fit_scale_recovers_constant(self):
        sizes = [64, 256, 1024, 4096]
        values = [3.0 * math.log2(n) for n in sizes]
        fit = fit_scale(sizes, values, "log n")
        assert fit.scale == pytest.approx(3.0)
        assert fit.relative_error < 1e-9
        assert fit.predict(64) == pytest.approx(values[0])

    def test_best_growth_law_identifies_logarithm(self):
        sizes = [64, 256, 1024, 4096, 16384]
        values = [2.0 * math.log2(n) + 0.5 for n in sizes]
        assert best_growth_law(sizes, values).law == "log n"

    def test_best_growth_law_identifies_constant(self):
        sizes = [64, 256, 1024, 4096]
        values = [5.1, 4.9, 5.0, 5.2]
        assert best_growth_law(sizes, values).law == "1"

    def test_best_growth_law_identifies_log_squared(self):
        sizes = [64, 256, 1024, 4096]
        values = [0.5 * math.log2(n) ** 2 for n in sizes]
        assert best_growth_law(sizes, values).law == "log^2 n"

    def test_all_growth_laws_are_positive(self):
        for name, law in GROWTH_LAWS.items():
            assert law(1024) > 0, name

    def test_fit_scale_validates_input(self):
        with pytest.raises(ValueError):
            fit_scale([], [], "log n")

    def test_growth_ratio(self):
        assert growth_ratio([1, 2], [2.0, 6.0]) == pytest.approx(3.0)


class TestReporting:
    def test_format_table_aligns_columns(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 123, "bb": "z"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        text = format_series([1, 2], [0.5, 1.5], value_label="Q")
        assert "Q" in text and "1.5" in text


class TestExperiments:
    def test_registry_complete(self):
        expected = {
            "table1",
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "lemma1",
            "lemma4",
            "theorem2-multidim",
            "theorem2-onedim",
            "range-queries",
            "updates",
            "ablation-blocking",
            "throughput",
            "congestion-rounds",
            "churn",
            "topology",
            "faults",
        }
        assert set(EXPERIMENTS) == expected

    def test_topology_rows_keep_messages_invariant(self):
        rows = topology_comparison(sizes=(32,), ops=8, seed=0)
        by_structure: dict = {}
        for row in rows:
            by_structure.setdefault(row["structure"], {})[row["topology"]] = row
        assert len(by_structure) == 5  # four skip-webs + Chord
        for cells in by_structure.values():
            assert set(cells) == {"flat", "clustered", "geo"}
            # Topologies reprice the links, never the routing: message
            # and round counts are identical across the three layouts.
            assert len({cell["msgs"] for cell in cells.values()}) == 1
            assert len({cell["rounds"] for cell in cells.values()}) == 1
            flat = cells["flat"]
            assert flat["latency"] == flat["msgs"]
            assert cells["clustered"]["latency"] > flat["latency"]
            assert cells["clustered"]["max_link_round_load"] >= flat["max_link_round_load"]

    def test_faults_rows_show_monotone_degradation(self):
        rows = fault_tolerance(sizes=(32,), ops=24, seed=0, drop_rates=(0.0, 0.2))
        by_structure: dict = {}
        for row in rows:
            by_structure.setdefault(row["structure"], {})[row["drop_rate"]] = row
        assert len(by_structure) == 5  # four skip-webs + Chord
        for cells in by_structure.values():
            clean, lossy = cells[0.0], cells[0.2]
            # Rate 0 is the control: everything delivered, no retries.
            assert clean["delivered_ratio"] >= 0.99
            assert clean["retries"] == 0 and clean["dropped"] == 0
            # Loss degrades monotonically and visibly costs retries.
            assert lossy["dropped"] > 0
            assert lossy["delivered_ratio"] <= clean["delivered_ratio"]
            assert lossy["retry_overhead"] > 0
            # Drop rules are query-scoped, so the self-healing (repair)
            # traffic is invariant across rates.
            assert lossy["repair_msgs"] == clean["repair_msgs"]

    def test_fig1_rows_show_log_growth_and_linear_space(self):
        rows = fig1_skiplist(sizes=(128, 1024), queries_per_size=60, seed=1)
        assert rows[1]["search_hops_mean"] <= rows[0]["search_hops_mean"] * 3
        assert rows[1]["node_copies_per_key"] < 4

    def test_fig2_levels_shrink_towards_the_top(self):
        rows = fig2_skipweb_levels(n=128, queries=20, seed=1)
        by_level = {row["level"]: row for row in rows}
        assert by_level[0]["sets"] == 1
        assert by_level[0]["largest_set"] == 128
        top = max(by_level)
        assert by_level[top]["largest_set"] <= 12

    def test_lemma1_constant_independent_of_n(self):
        rows = lemma1_list(sizes=(64, 512), trials=6, queries_per_size=15, seed=2)
        assert rows[1]["mean_conflicts"] <= rows[0]["mean_conflicts"] * 2.5

    def test_theorem2_onedim_bucket_beats_plain(self):
        rows = theorem2_onedim(sizes=(256,), memory_sizes=(64,), queries_per_size=20, seed=3)
        plain = next(r for r in rows if r["structure"] == "skip-web 1-d")
        bucket = next(r for r in rows if r["structure"].startswith("bucket"))
        assert bucket["Q_mean"] <= plain["Q_mean"]

    def test_ablation_blocking_rows(self):
        rows = ablation_blocking(n=96, memory_sizes=(16,), queries=10, seed=4)
        policies = {row["policy"] for row in rows}
        assert any(p.startswith("arbitrary") for p in policies)
        assert any(p.startswith("bucket") for p in policies)

    def test_throughput_rows_cover_three_structures(self):
        rows = throughput(sizes=(48,), ops_per_size=40, seed=5)
        mixed = [row for row in rows if row["cache"] == "off"]
        assert {row["structure"] for row in mixed} == {
            "skip-web 1-d",
            "quadtree skip-web",
            "trie skip-web",
        }
        for row in mixed:
            assert row["rounds"] > 0
            assert row["msgs_per_op"] > 0
            assert row["C_round_max"] >= 1

    def test_churn_rows_cover_all_instantiations_and_chord(self):
        rows = churn(sizes=(32,), events=3, ops_per_phase=12, seed=7)
        assert [row["structure"] for row in rows] == [
            "skip-web 1-d",
            "quadtree skip-web",
            "trie skip-web",
            "trapezoid skip-web",
            "Chord DHT",
        ]
        for row in rows:
            assert row["joins"] + row["leaves"] + row["crashes"] == 3
            assert row["failed"] == 0
            assert row["repair_msgs_per_event"] >= 0
            assert row["C_round_max"] >= 1

    def test_churn_survives_tiny_sizes_via_join_fallback(self):
        # A schedule that draws a retirement at the min-hosts floor falls
        # back to a join instead of aborting the experiment.
        rows = churn(sizes=(4,), events=6, ops_per_phase=8, seed=1)
        for row in rows:
            assert row["joins"] + row["leaves"] + row["crashes"] == 6
            assert row["failed"] == 0
            assert row["hosts_end"] >= 2

    def test_range_queries_rows_cover_instantiations_and_chord(self):
        rows = range_queries(sizes=(32,), target_ks=(4,), queries_per_size=3, seed=8)
        structures = [row["structure"] for row in rows]
        assert structures == [
            "skip-web 1-d",
            "bucket skip-web (M=32)",
            "quadtree skip-web",
            "trie skip-web",
            "trapezoid skip-web",
            "skip graph (baseline)",
            "Chord DHT",
        ]
        for row in rows:
            if row["structure"] == "Chord DHT":
                assert row["supported"] == "no"
                continue
            assert row["supported"] == "yes"
            assert row["k_mean"] >= 1
            # Immediate and batched runs of the same queries charge the
            # same messages per operation.
            assert row["msgs_per_op"] == row["batched_msgs_per_op"]
            assert row["rounds"] >= 1

    def test_congestion_rounds_reports_bound_ratio(self):
        rows = congestion_rounds(sizes=(32, 64), queries_per_host=1, seed=6)
        assert [row["n"] for row in rows] == [32, 64]
        for row in rows:
            assert row["ops"] == row["hosts"]
            assert row["max_host_round_load"] >= 1
            assert row["ratio"] == pytest.approx(
                row["max_host_round_load"] / row["logn_loglogn"], abs=0.01
            )


class TestCli:
    def test_parser_lists_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert args.experiment == "list"

    def test_cli_list_runs(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "fig3" in output
        assert "throughput" in output and "congestion-rounds" in output

    def test_cli_list_flag_prints_registry(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for name, (_function, description) in EXPERIMENTS.items():
            assert name in output
            assert description in output

    def test_cli_list_flag_supports_formats(self, capsys):
        assert main(["--list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [row["experiment"] for row in payload["rows"]]
        assert names == sorted(EXPERIMENTS)
        assert "range-queries" in names

    def test_cli_requires_experiment_or_list(self):
        with pytest.raises(SystemExit):
            main([])

    def test_cli_rejects_list_flag_with_experiment(self):
        with pytest.raises(SystemExit):
            main(["table1", "--list"])

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_cli_json_format_and_sizes(self, capsys):
        assert main(["lemma1", "--sizes", "48", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "lemma1"
        assert [row["n"] for row in payload["rows"]] == [48]

    def test_cli_csv_format(self, capsys):
        assert main(["congestion-rounds", "--sizes", "32", "--format", "csv"]) == 0
        reader = csv.DictReader(io.StringIO(capsys.readouterr().out))
        rows = list(reader)
        assert rows
        assert rows[0]["experiment"] == "congestion-rounds"
        assert rows[0]["n"] == "32"
        assert "max_host_round_load" in reader.fieldnames

    def test_cli_sizes_applies_to_scalar_n_experiments(self, capsys):
        assert main(["fig2", "--sizes", "32,64", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # fig2 takes a single n; the first size is used.
        assert payload["rows"][-1]["largest_set"] == 32

    def test_cli_rejects_bad_sizes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--sizes", "12,-3"])

    def test_cli_topology_flag_implies_the_experiment(self, capsys):
        assert main(["--topology", "clustered", "--sizes", "24", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "topology"
        # Flat is always included as the comparison baseline.
        assert {row["topology"] for row in payload["rows"]} == {"flat", "clustered"}

    def test_cli_topology_flag_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--topology", "mesh"])
        with pytest.raises(SystemExit):
            main(["table1", "--topology", "geo"])

    def test_cli_faults_flag_implies_the_experiment(self, capsys):
        assert main(["--faults", "0.2", "--sizes", "24", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "faults"
        # Rate 0 is always included as the comparison baseline.
        assert {row["drop_rate"] for row in payload["rows"]} == {0.0, 0.2}

    def test_cli_faults_flag_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--faults", "1.5"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--faults", "lots"])
        with pytest.raises(SystemExit):
            main(["table1", "--faults", "0.1"])

    def test_cli_structures_lists_capability_columns(self, capsys):
        # JSON rows carry the capability flags as real booleans, not the
        # "yes"/"no" strings the human-facing table renders.
        assert main(["structures", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"]
        for row in payload["rows"]:
            for column in ("range", "updates", "bulk_load", "shardable", "durable"):
                assert isinstance(row[column], bool)
        chord = next(row for row in payload["rows"] if row["structure"] == "chord")
        assert chord["range"] is False
        assert chord["shardable"] is True

    def test_cli_structures_table_renders_yes_no(self, capsys):
        assert main(["structures"]) == 0
        out = capsys.readouterr().out
        assert "yes" in out and "no" in out
        assert "True" not in out and "False" not in out

    def test_cli_structures_csv_round_trips_booleans(self, capsys):
        assert main(["structures", "--format", "csv"]) == 0
        reader = csv.DictReader(io.StringIO(capsys.readouterr().out))
        rows = list(reader)
        assert rows
        for row in rows:
            for column in ("range", "updates", "bulk_load", "shardable", "durable"):
                assert row[column] in ("True", "False")

    def test_cli_serve_and_hammer_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--items", "32", "--ready-file", "r.txt"]
        )
        assert args.experiment == "serve"
        assert args.port == 0 and args.items == 32
        args = build_parser().parse_args(
            [
                "hammer",
                "--url",
                "http://127.0.0.1:9",
                "--sessions",
                "2",
                "--ops",
                "5",
                "--mix",
                "read",
                "--expect-ok",
            ]
        )
        assert args.experiment == "hammer"
        assert args.url == "http://127.0.0.1:9"
        assert args.sessions == 2 and args.ops == 5 and args.expect_ok
        with pytest.raises(SystemExit):
            build_parser().parse_args(["hammer", "--mix", "chaotic"])


class TestCliFormatRoundTrip:
    """--format json/csv carry exactly the rows the table format prints."""

    # Experiments with distinct row shapes; all sizes-parameterised so the
    # round-trip runs at toy sizes.
    CASES = (
        ("lemma1", {"sizes": (48,)}),
        ("congestion-rounds", {"sizes": (32,)}),
        ("churn", {"sizes": (24,)}),
    )

    @staticmethod
    def _expected_rows(name, sizes):
        function, _description = EXPERIMENTS[name]
        return function(sizes=sizes, seed=0)

    @pytest.mark.parametrize("name,kwargs", CASES)
    def test_json_rows_match_table_data(self, capsys, name, kwargs):
        sizes = kwargs["sizes"]
        expected = self._expected_rows(name, sizes)
        argv = [name, "--sizes", ",".join(str(s) for s in sizes), "--format", "json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == name
        assert payload["rows"] == expected

    @pytest.mark.parametrize("name,kwargs", CASES)
    def test_csv_rows_match_table_data(self, capsys, name, kwargs):
        sizes = kwargs["sizes"]
        expected = self._expected_rows(name, sizes)
        argv = [name, "--sizes", ",".join(str(s) for s in sizes), "--format", "csv"]
        assert main(argv) == 0
        reader = csv.DictReader(io.StringIO(capsys.readouterr().out))
        parsed = list(reader)
        assert len(parsed) == len(expected)
        for parsed_row, expected_row in zip(parsed, expected):
            assert parsed_row.pop("experiment") == name
            # CSV stringifies every value; compare per cell after the same
            # coercion the writer applied.
            assert list(parsed_row) == [str(column) for column in expected_row]
            for column, value in expected_row.items():
                assert parsed_row[str(column)] == str(value)
