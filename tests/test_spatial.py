"""Tests for geometry, compressed quadtrees/octrees and quadtree skip-webs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StructureError
from repro.spatial.geometry import BoundingBox, HyperCube, point_distance
from repro.spatial.nearest import approximate_nearest_neighbor, approximate_range_query
from repro.spatial.quadtree import CompressedQuadtree
from repro.spatial.skip_quadtree import (
    QuadtreeStructure,
    SkipQuadtreeWeb,
    descent_conflicts,
)
from repro.workloads import clustered_points, degenerate_line_points, uniform_points

UNIT_CUBE = HyperCube((0.0, 0.0), 1.0)


class TestGeometry:
    def test_cube_contains_half_open(self):
        cube = HyperCube((0.0, 0.0), 1.0)
        assert cube.contains((0.0, 0.5))
        assert not cube.contains((1.0, 0.5))
        assert cube.contains_closed((1.0, 1.0))

    def test_cube_children_partition(self):
        cube = HyperCube((0.0, 0.0), 1.0)
        children = list(cube.children())
        assert len(children) == 4
        for point in [(0.1, 0.1), (0.9, 0.1), (0.1, 0.9), (0.9, 0.9)]:
            assert sum(child.contains(point) for child in children) == 1

    def test_child_index_round_trip(self):
        cube = HyperCube((0.0, 0.0, 0.0), 2.0)
        for point in [(0.5, 0.5, 0.5), (1.5, 0.5, 1.5), (1.9, 1.9, 1.9)]:
            index = cube.child_index(point)
            assert cube.child(index).contains(point)

    def test_intersects_and_contains_cube(self):
        big = HyperCube((0.0, 0.0), 1.0)
        small = HyperCube((0.25, 0.25), 0.25)
        separate = HyperCube((2.0, 2.0), 0.5)
        assert big.intersects(small) and small.intersects(big)
        assert big.contains_cube(small) and not small.contains_cube(big)
        assert not big.intersects(separate)

    def test_distance_to_point(self):
        cube = HyperCube((0.0, 0.0), 1.0)
        assert cube.distance_to_point((0.5, 0.5)) == 0.0
        assert cube.distance_to_point((2.0, 0.5)) == pytest.approx(1.0)

    def test_bounding_box_around(self):
        box = BoundingBox.around([(0.0, 0.0), (2.0, 1.0)], padding=0.5)
        cube = box.to_cube()
        assert cube.contains_closed((0.0, 0.0)) and cube.contains_closed((2.0, 1.0))

    def test_cube_positive_side(self):
        with pytest.raises(ValueError):
            HyperCube((0.0, 0.0), 0.0)

    def test_point_distance_dimension_mismatch(self):
        with pytest.raises(ValueError):
            point_distance((0.0, 0.0), (0.0, 0.0, 0.0))


class TestCompressedQuadtree:
    def test_invariants_uniform(self):
        points = uniform_points(120, seed=1)
        tree = CompressedQuadtree(points, UNIT_CUBE)
        tree.validate()
        assert tree.cell_count() <= 4 * len(points)

    def test_invariants_clustered(self):
        points = clustered_points(100, seed=2)
        tree = CompressedQuadtree(points, UNIT_CUBE)
        tree.validate()

    def test_degenerate_points_give_deep_but_linear_tree(self):
        points = degenerate_line_points(60, seed=3)
        tree = CompressedQuadtree(points, UNIT_CUBE)
        tree.validate()
        assert tree.depth() >= 10
        assert tree.cell_count() <= 4 * len(points)

    def test_requires_points_inside_cube(self):
        with pytest.raises(StructureError):
            CompressedQuadtree([(2.0, 2.0)], UNIT_CUBE)

    def test_requires_nonempty(self):
        with pytest.raises(StructureError):
            CompressedQuadtree([], UNIT_CUBE)

    def test_locate_returns_containing_cell(self):
        points = uniform_points(80, seed=4)
        tree = CompressedQuadtree(points, UNIT_CUBE)
        rng = random.Random(0)
        for _ in range(20):
            query = (rng.random(), rng.random())
            cell = tree.locate(query)
            assert cell.cube.contains_closed(query)
            for child in cell.children:
                assert not child.cube.contains_closed(query)

    def test_points_in_cube_matches_bruteforce(self):
        points = uniform_points(100, seed=5)
        tree = CompressedQuadtree(points, UNIT_CUBE)
        query = HyperCube((0.2, 0.3), 0.4)
        expected = sorted(p for p in points if query.contains_closed(p))
        assert sorted(tree.points_in_cube(query)) == expected

    def test_nearest_point_matches_bruteforce(self):
        points = uniform_points(90, seed=6)
        tree = CompressedQuadtree(points, UNIT_CUBE)
        rng = random.Random(1)
        for _ in range(15):
            query = (rng.random(), rng.random())
            expected = min(points, key=lambda p: point_distance(p, query))
            assert point_distance(tree.nearest_point(query), query) == pytest.approx(
                point_distance(expected, query)
            )

    def test_three_dimensional_octree(self):
        points = uniform_points(60, dimension=3, seed=7)
        cube = HyperCube((0.0, 0.0, 0.0), 1.0)
        tree = CompressedQuadtree(points, cube)
        tree.validate()
        query = (0.4, 0.6, 0.1)
        assert tree.locate(query).cube.contains_closed(query)

    @given(seed=st.integers(0, 500), count=st.integers(2, 60))
    @settings(max_examples=25, deadline=None)
    def test_leaf_count_equals_point_count(self, seed, count):
        points = uniform_points(count, seed=seed)
        tree = CompressedQuadtree(points, UNIT_CUBE)
        leaves = [cell for cell in tree.cells() if cell.is_leaf]
        assert len(leaves) == len(points)


class TestQuadtreeStructure:
    def test_units_and_validation(self):
        points = uniform_points(50, seed=8)
        structure = QuadtreeStructure(points, UNIT_CUBE)
        structure.validate()
        assert len(structure.node_units()) == structure.tree.cell_count()

    def test_build_requires_bounding_cube(self):
        with pytest.raises(StructureError):
            QuadtreeStructure.build([(0.1, 0.1)])

    def test_conflicts_returns_smallest_enclosing_cell(self):
        points = uniform_points(60, seed=9)
        structure = QuadtreeStructure(points, UNIT_CUBE)
        probe = HyperCube((0.26, 0.26), 0.01)
        conflict_units = structure.conflicts(probe)
        assert conflict_units
        assert all(unit.range.contains_cube(probe) for unit in conflict_units if unit.is_node)

    def test_overlapping_includes_ancestors(self):
        points = uniform_points(60, seed=9)
        structure = QuadtreeStructure(points, UNIT_CUBE)
        probe = HyperCube((0.26, 0.26), 0.01)
        overlap = structure.overlapping(probe)
        assert len(overlap) >= len(structure.conflicts(probe))

    def test_locate_matches_tree(self):
        points = uniform_points(70, seed=10)
        structure = QuadtreeStructure(points, UNIT_CUBE)
        query = (0.123, 0.456)
        assert structure.locate(query).range == structure.tree.locate(query).cube


@pytest.fixture(scope="module")
def quad_web():
    points = uniform_points(100, seed=20)
    return points, SkipQuadtreeWeb(points, bounding_cube=UNIT_CUBE, seed=6)


class TestSkipQuadtreeWeb:
    def test_validate(self, quad_web):
        _points, web = quad_web
        web.web.validate()

    def test_point_location_matches_local_tree(self, quad_web):
        _points, web = quad_web
        rng = random.Random(2)
        for _ in range(20):
            query = (rng.random(), rng.random())
            assert web.locate(query).answer.cell == web.level0_tree.locate(query).cube

    def test_messages_logarithmic(self, quad_web):
        _points, web = quad_web
        rng = random.Random(3)
        costs = [web.locate((rng.random(), rng.random())).messages for _ in range(25)]
        assert max(costs) <= 40

    def test_deep_tree_still_fast(self):
        points = degenerate_line_points(80, seed=21)
        web = SkipQuadtreeWeb(points, bounding_cube=UNIT_CUBE, seed=1)
        assert web.level0_tree.depth() >= 15
        rng = random.Random(4)
        costs = [web.locate((rng.random(), rng.random())).messages for _ in range(15)]
        assert sum(costs) / len(costs) <= 4 * (web.level0_tree.depth() ** 0.5 + 10)

    def test_insert_delete(self):
        points = uniform_points(50, seed=22)
        web = SkipQuadtreeWeb(points, bounding_cube=UNIT_CUBE, seed=2)
        inserted = (0.123456, 0.654321)
        web.insert(inserted)
        assert inserted in web.points
        web.delete(points[5])
        assert points[5] not in web.points
        web.web.validate()
        # A query off dyadic cell boundaries locates identically to the
        # local tree (boundary points may legitimately resolve to either
        # adjacent cell).
        query = (0.503, 0.497)
        assert web.locate(query).answer.cell == web.level0_tree.locate(query).cube

    def test_approximate_nearest_neighbor(self, quad_web):
        points, web = quad_web
        rng = random.Random(5)
        ratios = []
        for _ in range(15):
            answer = approximate_nearest_neighbor(web, (rng.random(), rng.random()))
            assert answer.exact in points
            ratios.append(answer.ratio)
        assert min(ratios) == 1.0
        assert sum(ratios) / len(ratios) <= 3.0

    def test_approximate_range_query_exact_contents(self, quad_web):
        points, web = quad_web
        cube = HyperCube((0.1, 0.2), 0.35)
        answer = approximate_range_query(web, cube)
        expected = sorted(p for p in points if cube.contains_closed(p))
        assert sorted(answer.points) == expected
        assert answer.messages >= 0

    def test_descent_conflicts_is_small(self):
        rng = random.Random(6)
        points = uniform_points(300, seed=23)
        full = CompressedQuadtree(points, UNIT_CUBE)
        half = CompressedQuadtree(points[::2], UNIT_CUBE)
        samples = [
            descent_conflicts(full, half, (rng.random(), rng.random())) for _ in range(40)
        ]
        assert sum(samples) / len(samples) <= 6


class TestBoxRangeReporting:
    """Axis-aligned box reporting on the quadtree skip-web."""

    def test_box_range_matches_brute_force(self):
        from repro.spatial.geometry import Box

        rng = random.Random(31)
        points = uniform_points(60, dimension=2, seed=31)
        web = SkipQuadtreeWeb(points, bounding_cube=UNIT_CUBE, seed=31)
        for _ in range(6):
            anchor = rng.choice(points)
            box = Box.around_point(anchor, rng.uniform(0.05, 0.3))
            expected = sorted(point for point in points if box.contains(point))
            result = web.range_report(box)
            assert sorted(result.matches) == expected
            assert result.messages == result.descent_messages + result.report_messages

    def test_box_range_accepts_corner_tuples(self):
        points = uniform_points(24, dimension=2, seed=32)
        web = SkipQuadtreeWeb(points, bounding_cube=UNIT_CUBE, seed=32)
        result = web.range_report(((0.25, 0.25), (0.75, 0.75)))
        expected = sorted(
            point
            for point in points
            if all(0.25 <= coordinate <= 0.75 for coordinate in point)
        )
        assert sorted(result.matches) == expected

    def test_box_intersects_cube_both_directions(self):
        from repro.spatial.geometry import Box

        box = Box((0.0, 0.0), (0.5, 0.1))
        cube = HyperCube((0.4, 0.0), 0.2)
        assert box.intersects(cube)
        assert cube.intersects(box)
        assert not box.intersects(HyperCube((0.6, 0.3), 0.2))
