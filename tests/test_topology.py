"""Tests for ``repro.net.topology``: the pluggable link-cost layer.

Covers the three layouts (flat, clustered, geo), the determinism
guarantees the durability and sharding layers lean on, the network-level
weighted aggregates, the façade threading (``Cluster(topology=...)``),
and the recovery guard that refuses a store whose snapshot and journal
disagree about the layout.
"""

from __future__ import annotations

import json
import os
import pickle
import random

import pytest

from repro.api import Cluster
from repro.errors import StorageError
from repro.net.network import Network, ledger_mode
from repro.net.topology import (
    TOPOLOGY_NAMES,
    ClusteredTopology,
    FlatTopology,
    GeoTopology,
    Topology,
    resolve_topology,
    topology_from_config,
)
from repro.storage import decode_record, encode_record, open_storage
from repro.workloads import (
    geo_placement,
    geo_region,
    geo_weight_matrix,
    uniform_keys,
)

KEYS = uniform_keys(32, seed=5)


class TestFlatTopology:
    def test_every_link_costs_one(self):
        flat = FlatTopology()
        assert flat.is_flat
        assert all(flat.link_cost(a, b) == 1 for a in range(4) for b in range(4))
        assert all(flat.cluster_of(host) == 0 for host in range(8))

    def test_describe_round_trips(self):
        flat = FlatTopology()
        assert flat.describe() == {"kind": "flat"}
        assert topology_from_config(flat.describe()) == flat


class TestClusteredTopology:
    def test_intra_vs_inter_cost(self):
        topology = ClusteredTopology(clusters=4, intra_cost=1, inter_cost=8)
        assert topology.link_cost(0, 4) == 1  # same rack: 0 % 4 == 4 % 4
        assert topology.link_cost(0, 1) == 8
        assert topology.cluster_of(7) == 3
        assert not topology.is_flat

    def test_cluster_assignment_is_churn_stable(self):
        topology = ClusteredTopology(clusters=3)
        before = [topology.cluster_of(host) for host in range(9)]
        topology.on_host_removed(4)
        topology.on_host_added(9)
        assert [topology.cluster_of(host) for host in range(9)] == before

    def test_describe_round_trips(self):
        topology = ClusteredTopology(clusters=5, intra_cost=2, inter_cost=11)
        rebuilt = topology_from_config(topology.describe())
        assert rebuilt == topology
        assert rebuilt.link_cost(1, 2) == 11

    def test_validation(self):
        with pytest.raises(ValueError, match="clusters"):
            ClusteredTopology(clusters=0)
        with pytest.raises(ValueError, match="link costs"):
            ClusteredTopology(intra_cost=0)


class TestGeoTopology:
    def test_placement_is_pure_and_join_order_independent(self):
        forward, backward = GeoTopology(regions=3, seed=7), GeoTopology(regions=3, seed=7)
        hosts = list(range(24))
        for host in hosts:
            forward.on_host_added(host)
        for host in reversed(hosts):
            backward.on_host_added(host)
        assert forward.placement(hosts) == backward.placement(hosts)
        assert forward.placement(hosts) == {
            host: geo_region(host, 3, seed=7) for host in hosts
        }

    def test_weights_are_seeded_and_symmetric(self):
        a, b = GeoTopology(regions=4, seed=3), GeoTopology(regions=4, seed=3)
        assert a.weights == b.weights
        assert a.weights != GeoTopology(regions=4, seed=4).weights
        for i in range(4):
            assert a.weights[i][i] == 1
            for j in range(4):
                assert a.weights[i][j] == a.weights[j][i] >= 1

    def test_membership_hooks_only_tidy_the_memo(self):
        topology = GeoTopology(regions=3, seed=1)
        region = topology.cluster_of(5)
        topology.on_host_removed(5)
        assert 5 not in topology._placement
        assert topology.cluster_of(5) == region  # re-derived, not re-rolled

    def test_describe_round_trips_with_weights(self):
        topology = GeoTopology(regions=3, seed=9)
        rebuilt = topology_from_config(topology.describe())
        assert rebuilt == topology
        assert rebuilt.weights == topology.weights
        assert rebuilt.link_cost(2, 6) == topology.link_cost(2, 6)

    def test_validation(self):
        with pytest.raises(ValueError, match="regions"):
            GeoTopology(regions=0)
        with pytest.raises(ValueError, match="matrix"):
            GeoTopology(regions=3, weights=[[1, 2], [2, 1]])
        with pytest.raises(ValueError, match=">= 1"):
            GeoTopology(regions=2, weights=[[1, 0], [0, 1]])


class TestWorkloadGenerators:
    def test_geo_region_is_deterministic_and_in_range(self):
        for host in range(40):
            region = geo_region(host, 5, seed=2)
            assert 0 <= region < 5
            assert region == geo_region(host, 5, seed=2)

    def test_geo_placement_matches_geo_region(self):
        hosts = list(range(12))
        assert geo_placement(hosts, 3, seed=4) == {
            host: geo_region(host, 3, seed=4) for host in hosts
        }

    def test_geo_weight_matrix_shape_and_bounds(self):
        matrix = geo_weight_matrix(4, seed=0, local_cost=1, min_cost=2, max_cost=12)
        assert len(matrix) == 4 and all(len(row) == 4 for row in matrix)
        for i in range(4):
            assert matrix[i][i] == 1
            for j in range(4):
                if i != j:
                    assert 2 <= matrix[i][j] == matrix[j][i] <= 12


class TestResolve:
    def test_names_and_passthrough(self):
        assert resolve_topology(None) is None
        flat = FlatTopology()
        assert resolve_topology(flat) is flat
        assert isinstance(resolve_topology("flat"), FlatTopology)
        assert isinstance(resolve_topology("clustered"), ClusteredTopology)
        geo = resolve_topology("geo", seed=13)
        assert isinstance(geo, GeoTopology) and geo.seed == 13
        assert set(TOPOLOGY_NAMES) == {"flat", "clustered", "geo"}

    def test_unknown_specs_are_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            resolve_topology("mesh")
        with pytest.raises(ValueError, match="unknown topology config"):
            topology_from_config({"kind": "mesh"})
        assert topology_from_config(None) is None


class TestNetworkIntegration:
    def test_default_network_has_no_topology_accounting(self):
        network = Network()
        network.add_hosts(3)
        assert network.topology is None
        assert network.link_cost(0, 1) == 1
        assert network.link_cost(1, 1) == 0  # self-sends are free
        with network.rounds():
            network.post(0, 1)
            network.run_round()
        assert network.topology_congestion_summary() is None

    def test_weighted_round_aggregates(self):
        network = Network()
        network.add_hosts(4)
        network.set_topology(ClusteredTopology(clusters=2, intra_cost=1, inter_cost=5))
        with network.rounds():
            network.post(0, 2)  # intra (0 % 2 == 2 % 2): cost 1
            network.post(0, 1)  # inter: cost 5
            network.run_round()
        summary = network.topology_congestion_summary()
        assert summary is not None
        assert summary["weight"] == 6
        assert summary["busiest_link"] == (0, 1)
        assert summary["busiest_link_load"] == 5
        report = network.round_reports[-1]
        assert report.weight == 6
        assert report.max_link == (0, 1)
        assert report.max_link_load == 5

    def test_set_topology_refused_mid_session(self):
        network = Network()
        network.add_hosts(2)
        with network.rounds():
            with pytest.raises(RuntimeError, match="round"):
                network.set_topology(FlatTopology())

    def test_topology_survives_pickling(self):
        network = Network()
        network.add_hosts(4)
        network.set_topology(GeoTopology(regions=2, seed=3))
        clone = pickle.loads(pickle.dumps(network))
        assert clone.topology == network.topology
        assert clone.link_cost(0, 3) == network.link_cost(0, 3)


class TestClusterThreading:
    @staticmethod
    def _batch(topology):
        with ledger_mode():
            cluster = Cluster(
                structure="skipweb1d", items=KEYS, seed=5, topology=topology
            )
            report = cluster.batch(
                [("search", payload) for payload in uniform_keys(12, seed=6)]
            )
        return cluster, report

    def test_flat_latency_equals_messages(self):
        cluster, report = self._batch("flat")
        assert isinstance(cluster.topology, FlatTopology)
        assert report.latency == report.messages > 0
        assert all(handle.latency == handle.messages for handle in report)
        congestion = report.round_congestion()
        assert congestion.topology_aware
        assert congestion.total_weight == congestion.total_messages

    def test_default_has_zero_latency_column(self):
        cluster, report = self._batch(None)
        assert cluster.topology is None
        assert report.latency == 0
        assert not report.round_congestion().topology_aware

    def test_clustered_and_geo_runs_are_deterministic(self):
        for name in ("clustered", "geo"):
            first = self._batch(name)[1]
            second = self._batch(name)[1]
            assert first.latency == second.latency > first.messages
            assert (
                first.round_congestion().as_dict()
                == second.round_congestion().as_dict()
            )
            assert [handle.latency for handle in first] == [
                handle.latency for handle in second
            ]

    def test_construction_traffic_is_not_weighted(self):
        # The topology attaches after construction, so only operation
        # traffic is priced: a fresh clustered deployment starts at the
        # same lifetime counters as a flat one.
        clustered, _ = self._batch("clustered")
        flat, _ = self._batch("flat")
        assert clustered.stats().construction_messages == flat.stats().construction_messages


class TestRecoveryGuard:
    @staticmethod
    def _journaled(tmp_path, topology, name="store.jsonl"):
        store = str(tmp_path / name)
        cluster = Cluster(
            structure="skipweb1d",
            items=KEYS,
            seed=5,
            storage=store,
            snapshot_every=1,
            topology=topology,
        )
        cluster.batch([("search", 123.0)])
        cluster.save()
        cluster.close()
        return store

    def test_recover_restores_the_topology(self, tmp_path):
        store = self._journaled(tmp_path, ClusteredTopology(clusters=2, inter_cost=5))
        recovered = Cluster.recover(store)
        assert recovered.topology == ClusteredTopology(clusters=2, inter_cost=5)
        assert recovered.network.topology == recovered.topology
        recovered.close()

    def test_recover_refuses_mismatched_create_record(self, tmp_path):
        store = self._journaled(tmp_path, ClusteredTopology(clusters=2, inter_cost=5))
        # Rewrite the journal's create record to claim a different
        # layout (re-encoded, so its checksum stays valid): the snapshot
        # and the journal now disagree.
        log = os.path.join(store, "log.jsonl")
        with open(log) as fh:
            lines = fh.readlines()
        record = decode_record(json.loads(lines[0]), expected_seq=0)
        assert record.kind == "create"
        payload = dict(record.payload)
        payload["topology"] = GeoTopology(regions=2, seed=1).describe()
        tampered = type(record)(seq=0, kind="create", payload=payload)
        lines[0] = json.dumps(encode_record(tampered)) + "\n"
        with open(log, "w") as fh:
            fh.writelines(lines)
        with pytest.raises(StorageError, match="topology mismatch"):
            Cluster.recover(store)

    def test_restore_refuses_tampered_fingerprint(self, tmp_path):
        store = self._journaled(tmp_path, ClusteredTopology(clusters=2, inter_cost=5))
        backend = open_storage(store)
        manifest, blob = backend.latest_snapshot()
        manifest["fingerprint"]["topology"] = FlatTopology().describe()
        backend.write_snapshot(manifest, blob)
        with pytest.raises(StorageError, match="fingerprint"):
            Cluster.recover(store)

    def test_flat_default_snapshots_omit_the_topology_key(self, tmp_path):
        store = self._journaled(tmp_path, None, name="flat.jsonl")
        manifest, _blob = open_storage(store).latest_snapshot()
        assert "topology" not in manifest["fingerprint"]
        recovered = Cluster.recover(store)
        assert recovered.topology is None
        recovered.close()


def test_random_host_pairs_agree_with_link_cost():
    """Property sweep: network.link_cost always defers to the topology."""
    rng = random.Random(0)
    for topology in (
        FlatTopology(),
        ClusteredTopology(clusters=3, inter_cost=4),
        GeoTopology(regions=3, seed=2),
    ):
        network = Network()
        network.add_hosts(10)
        network.set_topology(topology)
        for _ in range(50):
            src, dst = rng.randrange(10), rng.randrange(10)
            expected = 0 if src == dst else topology.link_cost(src, dst)
            assert network.link_cost(src, dst) == expected
