"""Tests for the synthetic workload generators."""

from repro.strings import DNA, PRINTABLE
from repro.workloads import (
    clustered_keys,
    clustered_points,
    degenerate_line_points,
    dna_reads,
    isbn_like_keys,
    random_strings,
    uniform_keys,
    uniform_points,
    zipf_query_mix,
)
from repro.workloads.strings import prefix_queries


class TestNumericGenerators:
    def test_uniform_keys_distinct_and_sorted(self):
        keys = uniform_keys(200, seed=1)
        assert len(keys) == 200 == len(set(keys))
        assert keys == sorted(keys)

    def test_uniform_keys_reproducible(self):
        assert uniform_keys(50, seed=2) == uniform_keys(50, seed=2)
        assert uniform_keys(50, seed=2) != uniform_keys(50, seed=3)

    def test_clustered_keys_are_clustered(self):
        keys = clustered_keys(200, seed=3, clusters=4, spread=1.0)
        gaps = sorted(b - a for a, b in zip(keys, keys[1:]))
        # Most gaps tiny (inside clusters), a few huge (between clusters).
        assert gaps[len(gaps) // 2] < 10
        assert gaps[-1] > 1000

    def test_zipf_query_mix_contains_hits_and_misses(self):
        keys = uniform_keys(100, seed=4)
        queries = zipf_query_mix(keys, 300, seed=5, miss_fraction=0.3)
        hits = sum(1 for q in queries if q in set(keys))
        assert 100 < hits < 290
        assert len(queries) == 300

    def test_uniform_points_in_unit_cube(self):
        points = uniform_points(100, dimension=3, seed=6)
        assert len(points) == 100
        assert all(len(p) == 3 and all(0 <= c < 1 for c in p) for p in points)

    def test_clustered_points_are_tight(self):
        points = clustered_points(100, seed=7, clusters=2, spread=0.001)
        xs = sorted(p[0] for p in points)
        assert xs[-1] - xs[0] < 1.0

    def test_degenerate_points_span_many_scales(self):
        points = degenerate_line_points(50, seed=8)
        assert len(points) >= 30
        assert all(0 <= c <= 1 for p in points for c in p)


class TestStringGenerators:
    def test_random_strings_valid_and_distinct(self):
        strings = random_strings(120, seed=1)
        assert len(strings) == 120 == len(set(strings))

    def test_dna_reads_use_dna_alphabet(self):
        reads = dna_reads(80, seed=2)
        for read in reads:
            DNA.validate_string(read)

    def test_dna_reads_share_motifs(self):
        reads = dna_reads(80, seed=3, motif_count=2)
        prefixes = {read[:12] for read in reads}
        assert len(prefixes) <= 2

    def test_isbn_keys_share_publisher_prefixes(self):
        keys = isbn_like_keys(100, seed=4, publisher_count=5)
        for key in keys:
            PRINTABLE.validate_string(key)
        publishers = {key.rsplit("-", 2)[0] for key in keys}
        assert len(publishers) <= 5

    def test_prefix_queries_are_related_to_corpus(self):
        strings = random_strings(50, seed=5)
        queries = prefix_queries(strings, 40, seed=6)
        assert len(queries) == 40
        assert any(any(s.startswith(q) for s in strings) for q in queries)
