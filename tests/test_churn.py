"""Tests for the churn subsystem: controller, migration, self-repair."""

import random

import pytest

from repro.baselines import ChordDHT, SkipGraph
from repro.engine import BatchExecutor, Operation, RepairEngine
from repro.errors import ChurnError, StructureError
from repro.net import ChurnController, FailureInjector, MessageKind, Network, churn_schedule
from repro.onedim import BucketSkipWeb1D, SkipWeb1D
from repro.workloads import uniform_keys


def _controller(structure, seed=0, **kwargs):
    return ChurnController(
        structure.network, RepairEngine(structure), rng=random.Random(seed), **kwargs
    )


class TestNetworkMembership:
    def test_remove_host_requires_empty_unless_forced(self):
        network = Network()
        network.add_hosts(2)
        network.store(0, "item")
        with pytest.raises(StructureError):
            network.remove_host(0)
        network.remove_host(0, force=True)
        assert 0 not in network
        assert network.host_count == 1

    def test_membership_epoch_bumps_on_every_change(self):
        network = Network()
        epoch = network.membership_epoch
        host = network.add_host()
        assert network.membership_epoch > epoch
        epoch = network.membership_epoch
        network.fail_host(host.host_id)
        assert network.membership_epoch > epoch
        epoch = network.membership_epoch
        network.recover_host(host.host_id)
        assert network.membership_epoch > epoch
        epoch = network.membership_epoch
        network.remove_host(host.host_id)
        assert network.membership_epoch > epoch

    def test_alive_host_ids_excludes_failed(self):
        network = Network()
        network.add_hosts(3)
        network.fail_host(1)
        assert network.alive_host_ids() == [0, 2]


class TestChurnSchedule:
    def test_schedule_is_seeded_and_deterministic(self):
        first = churn_schedule(20, random.Random(4))
        second = churn_schedule(20, random.Random(4))
        assert first == second
        assert set(first) <= {"join", "leave", "crash"}

    def test_schedule_validates_inputs(self):
        with pytest.raises(ValueError):
            churn_schedule(-1, random.Random(0))
        with pytest.raises(ValueError):
            churn_schedule(3, random.Random(0), join_weight=0, leave_weight=0, crash_weight=0)


class TestChurnControllerOnSkipWeb:
    def test_join_rebalances_onto_the_new_host(self):
        web = SkipWeb1D(uniform_keys(32, seed=0), seed=0)
        controller = _controller(web)
        event = controller.join()
        assert event.kind == "join"
        assert event.records_moved > 0
        assert event.repair_messages > 0
        newcomer = web.network.host(event.host)
        assert newcomer.memory_used > 0
        assert event.host in web.origin_hosts()
        web.web.validate()

    def test_graceful_leave_hands_every_record_off(self):
        web = SkipWeb1D(uniform_keys(32, seed=1), seed=1)
        controller = _controller(web, seed=1)
        hosts_before = len(web.network.alive_host_ids())
        event = controller.leave()
        assert event.kind == "leave"
        assert event.host not in web.network
        assert event.hosts_after == hosts_before - 1
        assert event.host not in web.origin_hosts()
        web.web.validate()
        # Queries keep working from every surviving origin.
        operations = [
            Operation("search", query, origin_host=origin)
            for query, origin in zip((1.0, 5e5, 9.9e5), web.origin_hosts())
        ]
        result = BatchExecutor(web).run(operations)
        assert result.failed == 0

    def test_crash_repair_reconstructs_orphans_and_rewires(self):
        web = SkipWeb1D(uniform_keys(32, seed=2), seed=2)
        controller = _controller(web, seed=2)
        event = controller.crash()
        assert event.kind == "crash"
        assert event.records_moved > 0
        assert event.host not in web.network
        web.web.validate()
        result = BatchExecutor(web).run(
            [Operation("search", float(q)) for q in range(0, 1_000_000, 200_000)]
        )
        assert result.failed == 0

    def test_repair_traffic_is_billed_as_control_messages(self):
        web = SkipWeb1D(uniform_keys(24, seed=3), seed=3)
        controller = _controller(web, seed=3)
        before = web.network.message_log.count(MessageKind.CONTROL)
        event = controller.leave()
        after = web.network.message_log.count(MessageKind.CONTROL)
        assert after - before == event.repair_messages
        assert event.repair_rounds == event.repair_messages  # one hand-off per round

    def test_min_hosts_floor_blocks_retirement(self):
        web = SkipWeb1D([1.0, 2.0, 3.0], seed=0)
        controller = _controller(web, min_hosts=web.network.host_count)
        with pytest.raises(ChurnError):
            controller.leave()
        with pytest.raises(ChurnError):
            controller.crash()

    def test_unknown_schedule_kind_rejected(self):
        web = SkipWeb1D(uniform_keys(8, seed=0), seed=0)
        controller = _controller(web)
        with pytest.raises(ValueError):
            controller.run_schedule(["rebalance"])

    def test_migrate_fraction_validation(self):
        web = SkipWeb1D(uniform_keys(8, seed=0), seed=0)
        with pytest.raises(ValueError):
            RepairEngine(web).migrate(0, fraction=0.0)
        with pytest.raises(ValueError):
            RepairEngine(web).migrate(0, fraction=1.5)

    def test_full_scenario_is_deterministic(self):
        def run():
            web = SkipWeb1D(uniform_keys(32, seed=5), seed=5)
            controller = _controller(web, seed=5)
            schedule = churn_schedule(5, controller.rng)
            events = controller.run_schedule(schedule)
            return [(e.kind, e.host, e.records_moved, e.repair_messages) for e in events]

        assert run() == run()


class TestChurnOnOtherStructures:
    def test_chord_lookups_survive_ring_churn(self):
        keys = uniform_keys(32, seed=0)
        chord = ChordDHT(keys)
        controller = _controller(chord)
        controller.run_schedule(["join", "crash", "leave", "join"])
        rng = random.Random(0)
        result = BatchExecutor(chord).run(
            [Operation("search", rng.choice(keys)) for _ in range(12)]
        )
        assert result.failed == 0
        assert all(outcome.value.found for outcome in result.outcomes)

    def test_chord_rejects_partial_migration_without_a_joiner(self):
        chord = ChordDHT(uniform_keys(8, seed=0))
        with pytest.raises(ChurnError):
            RepairEngine(chord).migrate(chord.origin_hosts()[0], fraction=0.5)

    def test_baseline_searches_survive_churn(self):
        structure = SkipGraph(uniform_keys(24, seed=1), seed=1)
        controller = _controller(structure, seed=1)
        controller.run_schedule(["join", "leave", "crash"])
        rng = random.Random(1)
        result = BatchExecutor(structure).run(
            [Operation("search", rng.uniform(0, 1e6)) for _ in range(10)]
        )
        assert result.failed == 0
        for outcome in result.outcomes:
            eager = structure.search(outcome.operation.payload)
            assert eager.nearest == outcome.value.nearest

    def test_bucket_skipweb_redeals_blocks_after_churn(self):
        bucket = BucketSkipWeb1D(uniform_keys(24, seed=2), memory_size=8, seed=2)
        controller = _controller(bucket, seed=2)
        events = controller.run_schedule(["join", "crash", "leave"])
        assert all(event.records_moved > 0 for event in events)
        bucket.validate()
        assert bucket.nearest(123.456).answer.nearest in bucket.keys


class TestRepairEngine:
    def test_refuses_to_run_inside_an_open_round_session(self):
        web = SkipWeb1D(uniform_keys(8, seed=0), seed=0)
        engine = RepairEngine(web)
        with web.network.rounds():
            with pytest.raises(ChurnError):
                engine.migrate(web.origin_hosts()[0])

    def test_repair_result_carries_round_reports(self):
        web = SkipWeb1D(uniform_keys(16, seed=4), seed=4)
        engine = RepairEngine(web)
        victim = web.origin_hosts()[3]
        result = engine.migrate(victim)
        assert result.summary.kind == "migrate"
        assert result.summary.hosts == (victim,)
        assert result.messages == sum(r.delivered for r in result.round_reports)
        assert result.max_round_congestion == 1  # hand-offs are sequential

    def test_migrating_onto_a_failed_target_surfaces_host_failed(self):
        """A hand-off toward a dead target aborts loudly, not silently."""
        from repro.errors import HostFailedError

        web = SkipWeb1D(uniform_keys(16, seed=6), seed=6)
        source, target = web.origin_hosts()[2], web.origin_hosts()[5]
        FailureInjector(web.network).fail([target])
        with pytest.raises(HostFailedError):
            RepairEngine(web).migrate(source, targets=[target], fraction=0.5)
        # The failed hand-off happened before any record moved, so the
        # structure is still whole.
        web.network.recover_host(target)
        web.web.validate()
