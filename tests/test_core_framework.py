"""Tests for the core framework: ranges, levels, blocking, halving, stats."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.blocking import (
    HashBlocking,
    OwnerBlocking,
    RoundRobinBlocking,
    evenly_owned_items,
)
from repro.core.halving import sample_half, verify_halving
from repro.core.levels import MembershipAssignment, required_height
from repro.core.link_structure import RangeUnit, UnitKind
from repro.core.ranges import EverythingRange, Interval, Singleton, ranges_conflict
from repro.core.stats import measure_costs
from repro.net.network import Network
from repro.onedim.linked_list import SortedListStructure


class TestRanges:
    def test_singleton_contains_only_its_value(self):
        assert Singleton(5).contains(5)
        assert not Singleton(5).contains(6)

    def test_interval_contains_endpoints(self):
        interval = Interval(1.0, 3.0)
        assert interval.contains(1.0) and interval.contains(3.0) and interval.contains(2.0)
        assert not interval.contains(0.999)

    def test_interval_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Interval(3.0, 1.0)

    def test_interval_intersection_is_symmetric(self):
        assert Interval(0, 2).intersects(Interval(2, 5))
        assert Interval(2, 5).intersects(Interval(0, 2))
        assert not Interval(0, 1).intersects(Interval(2, 3))

    def test_interval_and_singleton_conflict(self):
        assert ranges_conflict(Interval(0, 2), Singleton(1))
        assert ranges_conflict(Singleton(2), Interval(2, 4))
        assert not ranges_conflict(Singleton(5), Interval(0, 1))

    def test_unbounded_helpers(self):
        assert Interval.below(3).contains(-1e18)
        assert Interval.above(3).contains(1e18)
        assert Interval.unbounded().contains(0)

    def test_everything_range(self):
        assert EverythingRange().contains("anything")
        assert EverythingRange().intersects(Interval(0, 1))

    @given(
        low=st.floats(-1e6, 1e6),
        width=st.floats(0, 1e6),
        point=st.floats(-2e6, 2e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_containment_matches_arithmetic(self, low, width, point):
        interval = Interval(low, low + width)
        assert interval.contains(point) == (low <= point <= low + width)


class TestMembership:
    def test_required_height(self):
        assert required_height(1) == 1
        assert required_height(2) == 1
        assert required_height(1000) == 10

    def test_words_have_requested_height(self):
        assignment = MembershipAssignment(list(range(20)), rng=random.Random(0))
        assert assignment.height == required_height(20)
        assert all(len(assignment.word(item)) == assignment.height for item in range(20))

    def test_level_sets_partition_items(self):
        items = list(range(50))
        assignment = MembershipAssignment(items, rng=random.Random(1))
        for level in range(assignment.height + 1):
            groups = assignment.level_sets(level)
            flattened = sorted(member for members in groups.values() for member in members)
            assert flattened == items
            assert all(len(prefix) == level for prefix in groups)

    def test_level_zero_is_single_group(self):
        assignment = MembershipAssignment(list(range(10)), rng=random.Random(2))
        assert set(assignment.level_sets(0)) == {()}

    def test_assign_and_forget(self):
        assignment = MembershipAssignment([1, 2, 3], rng=random.Random(3))
        word = assignment.assign(4)
        assert assignment.word(4) == word
        with pytest.raises(ValueError):
            assignment.assign(4)
        assignment.forget(4)
        assert 4 not in assignment
        with pytest.raises(KeyError):
            assignment.forget(4)

    def test_prefixes_of_chain(self):
        assignment = MembershipAssignment(list(range(8)), rng=random.Random(4))
        level_sets = assignment.all_level_sets()
        word = assignment.word(3)
        chain = list(level_sets.prefixes_of(word))
        assert chain[0] == word and chain[-1] == ()
        assert len(chain) == assignment.height + 1

    def test_total_copies_is_n_per_level(self):
        items = list(range(32))
        assignment = MembershipAssignment(items, rng=random.Random(5))
        level_sets = assignment.all_level_sets()
        assert level_sets.total_copies() == len(items) * (assignment.height + 1)

    @given(count=st.integers(2, 200), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_top_level_sets_are_small_on_average(self, count, seed):
        items = list(range(count))
        assignment = MembershipAssignment(items, rng=random.Random(seed))
        top = assignment.level_sets(assignment.height)
        # Expected size of each top-level set is O(1); allow generous slack.
        assert max(len(members) for members in top.values()) <= 10 + count // 8


class TestBlocking:
    def _unit(self, payload=None):
        return RangeUnit(
            key=("node", payload), kind=UnitKind.NODE, range=Singleton(payload), payload=payload
        )

    def test_round_robin_cycles(self):
        policy = RoundRobinBlocking([0, 1, 2])
        hosts = [policy.assign(0, (), self._unit(i)) for i in range(6)]
        assert hosts == [0, 1, 2, 0, 1, 2]

    def test_round_robin_requires_hosts(self):
        with pytest.raises(ValueError):
            RoundRobinBlocking([])

    def test_hash_blocking_is_deterministic(self):
        policy = HashBlocking([0, 1, 2, 3])
        unit = self._unit(42)
        assert policy.assign(1, (0,), unit) == policy.assign(1, (0,), unit)

    def test_owner_blocking_uses_item_owner(self):
        owners = {5.0: 2, 7.0: 3}
        policy = OwnerBlocking(owners, fallback=0)
        assert policy.assign(0, (), self._unit(5.0)) == 2
        assert policy.assign(0, (), self._unit("unknown")) == 0

    def test_owner_blocking_tuple_payload(self):
        owners = {(0.5, 0.5): 4}
        policy = OwnerBlocking(owners, fallback=1)
        unit = RangeUnit(
            key="k", kind=UnitKind.LINK, range=Singleton(1), payload=((0.5, 0.5), None)
        )
        assert policy.assign(0, (), unit) == 4
        point_unit = RangeUnit(key="p", kind=UnitKind.NODE, range=Singleton(1), payload=(0.5, 0.5))
        assert policy.assign(0, (), point_unit) == 4

    def test_evenly_owned_items(self):
        owners = evenly_owned_items(["a", "b", "c"], [10, 11])
        assert owners == {"a": 10, "b": 11, "c": 10}


class TestHalving:
    def test_sample_half_exact(self):
        rng = random.Random(0)
        items = list(range(100))
        half = sample_half(items, rng, exact=True)
        assert len(half) == 50
        assert set(half) <= set(items)

    def test_sample_half_probabilistic_is_about_half(self):
        rng = random.Random(1)
        items = list(range(1000))
        half = sample_half(items, rng)
        assert 350 <= len(half) <= 650

    def test_verify_halving_lemma1_constant(self):
        rng = random.Random(2)
        keys = sorted(rng.sample(range(100000), 400))
        report = verify_halving(
            SortedListStructure,
            [float(k) for k in keys],
            queries=[rng.uniform(0, 100000) for _ in range(20)],
            trials=8,
            rng=rng,
        )
        # Lemma 1 bounds the expectation by a constant; with closed link
        # ranges the measured constant is ~2E|Q∩S|+1 ≈ 9.
        assert report.mean_conflicts < 14
        assert report.ground_set_size == 400
        assert report.as_dict()["n"] == 400.0

    def test_halving_constant_does_not_grow_with_n(self):
        rng = random.Random(3)
        means = []
        for n in (100, 800):
            keys = [float(k) for k in sorted(rng.sample(range(10**6), n))]
            report = verify_halving(
                SortedListStructure,
                keys,
                queries=[rng.uniform(0, 10**6) for _ in range(15)],
                trials=6,
                rng=rng,
            )
            means.append(report.mean_conflicts)
        assert means[1] < means[0] * 2.5


class TestStats:
    def test_measure_costs_aggregates(self):
        network = Network()
        network.add_hosts(4)
        network.store(0, "x")
        costs = measure_costs(
            name="toy",
            network=network,
            ground_set_size=4,
            query_fn=lambda q: q,
            queries=[1, 3, 5],
            update_fn=lambda u: 2 * u,
            updates=[1, 2],
        )
        assert costs.query_messages_mean == pytest.approx(3.0)
        assert costs.query_messages_max == 5
        assert costs.update_messages_mean == pytest.approx(3.0)
        assert costs.max_memory == 1
        row = costs.as_dict()
        assert row["method"] == "toy" and row["H"] == 4
