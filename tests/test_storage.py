"""Tests for ``repro.storage``: journaling, snapshots, recovery, corruption.

The headline guarantee — a run killed mid-flight recovers to state
byte-identical to an uninterrupted run — is pinned here for **all 12**
registered structure families (the recovery-gate CI job enforces the
same property end-to-end through the CLI with a real SIGKILL).
"""

import json
import os
import sqlite3

import pytest

from repro.api import Cluster, available_structures
from repro.errors import StorageError
from repro.net.network import Network, ledger_mode
from repro.onedim import SkipWeb1D
from repro.storage import (
    FORMAT_VERSION,
    JsonlStorage,
    LogRecord,
    SqliteStorage,
    committed_prefix,
    content_digest,
    decode_record,
    encode_record,
    open_storage,
)
from repro.storage.workload import (
    _run_step,
    report_json,
    resume_workload,
    run_workload,
    workload_specs,
)
from repro.workloads import uniform_keys

SEED = 11
KEYS = uniform_keys(24, seed=3)


def _partial_workload(structure, store, crash_after, steps, snapshot_every=0):
    """Run the first ``crash_after`` workload steps, then abandon the cluster.

    Mirrors ``run_workload`` up to the crash point: no ``close()``, no
    ``save()`` — exactly the state a SIGKILL leaves behind, since every
    committed record was already flushed to the log.
    """
    spec = workload_specs()[structure]
    items = spec.items(SEED)
    with ledger_mode():
        cluster = Cluster(
            structure=structure,
            items=items,
            seed=SEED,
            storage=store,
            snapshot_every=snapshot_every,
            **spec.kwargs(),
        )
    cluster._workload_items = items
    cluster._durability.record_note(
        {"workload": {"structure": structure, "steps": steps, "seed": SEED}}
    )
    for step in range(crash_after):
        _run_step(cluster, spec, SEED, step)
    return cluster  # abandoned, deliberately not closed


def _journaled_cluster(tmp_path, name="log.jsonl", **extra):
    store = str(tmp_path / name)
    return Cluster(structure="skipweb1d", items=KEYS, seed=3, storage=store, **extra), store


class TestKillAndRecoverEveryFamily:
    def test_workload_covers_every_registered_family(self):
        assert sorted(workload_specs()) == available_structures()

    @pytest.mark.parametrize("structure", sorted(workload_specs()))
    def test_crash_and_recover_is_byte_identical(self, structure, tmp_path):
        steps, crash_after = 5, 2
        baseline = report_json(
            run_workload(
                structure, steps=steps, seed=SEED, storage=str(tmp_path / "a.jsonl")
            )
        )
        store = str(tmp_path / "b.jsonl")
        _partial_workload(structure, store, crash_after, steps)
        resumed = report_json(resume_workload(store))
        assert resumed == baseline

    def test_crash_and_recover_sqlite_with_snapshots(self, tmp_path):
        steps = 6
        baseline = report_json(
            run_workload(
                "skipgraph", steps=steps, seed=SEED, storage=str(tmp_path / "a.db")
            )
        )
        store = str(tmp_path / "b.db")
        _partial_workload("skipgraph", store, 4, steps, snapshot_every=2)
        resumed = report_json(resume_workload(store))
        assert resumed == baseline

    def test_recovery_after_torn_tail_trim(self, tmp_path):
        steps = 5
        baseline = report_json(
            run_workload(
                "skipweb1d", steps=steps, seed=SEED, storage=str(tmp_path / "a.jsonl")
            )
        )
        store = str(tmp_path / "b.jsonl")
        _partial_workload("skipweb1d", store, 2, steps)
        with open(os.path.join(store, "log.jsonl"), "a") as fh:
            fh.write('{"seq": 99, "kind": "bat')  # torn mid-record write
        with pytest.raises(StorageError, match="torn"):
            resume_workload(store)
        resumed = report_json(resume_workload(store, trim_torn_tail=True))
        assert resumed == baseline


class TestShardedDurability:
    """Storage × sharded interplay: ``recover()`` under ``Cluster(workers=N)``.

    The multi-worker executor must not perturb durability: a run whose
    read-only batches fork through :class:`~repro.engine.sharded.ShardedExecutor`
    journals the same records — and recovers to the same report — as the
    serial executor, killed or not.
    """

    def _sharded(self, fn):
        from repro.api.cluster import set_default_workers

        set_default_workers(2)
        try:
            return fn()
        finally:
            set_default_workers(1)

    def test_kill_and_recover_sharded_is_byte_identical(self, tmp_path):
        steps = 6
        baseline = report_json(
            run_workload(
                "skipweb1d", steps=steps, seed=SEED, storage=str(tmp_path / "a.jsonl")
            )
        )
        store = str(tmp_path / "b.jsonl")
        self._sharded(lambda: _partial_workload("skipweb1d", store, 3, steps))
        resumed = self._sharded(lambda: report_json(resume_workload(store)))
        assert resumed == baseline

    def test_kill_and_recover_sharded_through_snapshot(self, tmp_path):
        steps = 6
        baseline = report_json(
            run_workload(
                "skipweb1d", steps=steps, seed=SEED, storage=str(tmp_path / "a.db")
            )
        )
        store = str(tmp_path / "b.db")
        self._sharded(
            lambda: _partial_workload("skipweb1d", store, 4, steps, snapshot_every=2)
        )
        # Resume under serial defaults: the create record carries the
        # worker count, so recovery replays on the sharded path anyway.
        resumed = report_json(resume_workload(store))
        assert resumed == baseline

    def test_recover_restores_worker_count(self, tmp_path):
        store = str(tmp_path / "log.jsonl")
        cluster = Cluster(
            structure="skipweb1d", items=KEYS, seed=3, storage=store, workers=2
        )
        cluster.batch([("search", float(i)) for i in range(8)])
        cluster.batch([("insert", 1.5)])
        digest = content_digest(cluster.structure)
        messages = cluster.network.total_messages
        cluster.close()
        recovered = Cluster.recover(store)
        assert recovered.workers == 2
        assert content_digest(recovered.structure) == digest
        assert recovered.network.total_messages == messages
        recovered.close()


class TestSaveAndLoad:
    def test_save_then_load_restores_state(self, tmp_path):
        cluster, store = _journaled_cluster(tmp_path)
        cluster.batch([("search", 123.0), ("insert", 1.5)])
        cluster.join_host()
        cluster.save()
        digest = content_digest(cluster.structure)
        stats = cluster.stats().as_dict()
        cluster.close()

        loaded = Cluster.load(store)
        assert content_digest(loaded.structure) == digest
        assert loaded.stats().as_dict() == stats
        assert loaded.storage is None  # detached: load() gives a read-only copy

    def test_load_refuses_stale_tail(self, tmp_path):
        cluster, store = _journaled_cluster(tmp_path)
        cluster.save()
        cluster.batch([("search", 123.0)])  # journaled after the snapshot
        cluster.close()
        with pytest.raises(StorageError, match="recover"):
            Cluster.load(store)

    def test_recover_replays_tail_after_snapshot(self, tmp_path):
        cluster, store = _journaled_cluster(tmp_path)
        cluster.batch([("search", 123.0)])
        cluster.save()
        cluster.batch([("insert", 1.5)])
        cluster.crash_host()
        digest = content_digest(cluster.structure)
        stats = cluster.stats().as_dict()
        applied = cluster.applied_operations
        cluster.close()

        recovered = Cluster.recover(store)
        assert content_digest(recovered.structure) == digest
        assert recovered.stats().as_dict() == stats
        assert recovered.applied_operations == applied
        recovered.close()

    def test_recover_from_genesis_without_snapshot(self, tmp_path):
        cluster, store = _journaled_cluster(tmp_path)
        cluster.batch([("search", 123.0), ("range", (0.0, 500_000.0))])
        cluster.leave_host()
        digest = content_digest(cluster.structure)
        stats = cluster.stats().as_dict()
        cluster.close()

        recovered = Cluster.recover(store)
        assert content_digest(recovered.structure) == digest
        assert recovered.stats().as_dict() == stats
        recovered.close()

    def test_snapshot_cadence_writes_snapshots(self, tmp_path):
        cluster, store = _journaled_cluster(tmp_path, snapshot_every=2)
        for _ in range(3):
            cluster.batch([("search", 123.0)])
        cluster.close()
        backend = open_storage(store)
        manifest, _blob = backend.latest_snapshot()
        assert manifest["upto"] > 0
        backend.close()
        recovered = Cluster.recover(store)
        assert recovered.applied_operations == 4  # create + 3 batches
        recovered.close()


class TestCorruption:
    def _stored_run(self, tmp_path, name="log.jsonl"):
        cluster, store = _journaled_cluster(tmp_path, name=name)
        cluster.batch([("search", 123.0)])
        cluster.batch([("insert", 1.5)])
        cluster.close()
        return store

    def test_torn_tail_is_typed_and_trimmable(self, tmp_path):
        store = self._stored_run(tmp_path)
        log = os.path.join(store, "log.jsonl")
        with open(log, "a") as fh:
            fh.write('{"half a record')
        backend = open_storage(store)
        with pytest.raises(StorageError) as excinfo:
            backend.records()
        assert excinfo.value.torn_tail
        assert excinfo.value.recoverable_records is not None
        kept = backend.trim_torn_tail()
        assert kept == excinfo.value.recoverable_records
        assert len(backend.records()) == kept  # intact after the trim
        backend.close()

    def test_mid_log_corruption_is_never_trimmed(self, tmp_path):
        store = self._stored_run(tmp_path)
        log = os.path.join(store, "log.jsonl")
        lines = open(log).read().splitlines()
        record = json.loads(lines[1])
        record["crc"] = (record["crc"] + 1) % (1 << 32)
        lines[1] = json.dumps(record)
        with open(log, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        backend = open_storage(store)
        with pytest.raises(StorageError) as excinfo:
            backend.records()
        assert not excinfo.value.torn_tail
        with pytest.raises(StorageError):
            backend.trim_torn_tail()  # corruption, not a torn tail: refuse
        backend.close()
        with pytest.raises(StorageError):
            Cluster.recover(store, trim_torn_tail=True)

    def test_record_version_skew_is_rejected(self, tmp_path):
        store = self._stored_run(tmp_path, name="log.db")
        conn = sqlite3.connect(store)
        with conn:
            conn.execute("UPDATE log SET v = ? WHERE seq = 0", (FORMAT_VERSION + 1,))
        conn.close()
        backend = SqliteStorage(store)
        with pytest.raises(StorageError, match="version"):
            backend.records()
        backend.close()

    def test_snapshot_version_skew_is_rejected(self, tmp_path):
        cluster, store = _journaled_cluster(tmp_path)
        cluster.batch([("search", 123.0)])
        cluster.save()
        cluster.close()
        snapshots = [f for f in os.listdir(store) if f.startswith("snapshot-")]
        path = os.path.join(store, snapshots[0])
        document = json.loads(open(path).read())
        document["manifest"]["format_version"] = FORMAT_VERSION + 1
        with open(path, "w") as fh:
            fh.write(json.dumps(document))
        with pytest.raises(StorageError, match="version"):
            Cluster.recover(store)

    def test_snapshot_blob_corruption_is_rejected(self, tmp_path):
        cluster, store = _journaled_cluster(tmp_path)
        cluster.batch([("search", 123.0)])
        cluster.save()
        cluster.close()
        snapshots = [f for f in os.listdir(store) if f.startswith("snapshot-")]
        path = os.path.join(store, snapshots[0])
        document = json.loads(open(path).read())
        document["blob"] = document["blob"][:-8] + "AAAAAAAA"
        with open(path, "w") as fh:
            fh.write(json.dumps(document))
        with pytest.raises(StorageError):
            Cluster.recover(store)
        # the log itself is intact: genesis replay still recovers the run
        recovered = Cluster.recover(store, from_snapshot=False)
        assert recovered.applied_operations == 2
        recovered.close()

    def test_empty_store_is_an_error(self, tmp_path):
        backend = JsonlStorage(str(tmp_path / "empty.jsonl"))
        backend.close()
        with pytest.raises(StorageError, match="no records|empty"):
            Cluster.recover(str(tmp_path / "empty.jsonl"))


class TestRecordCodec:
    def test_round_trip(self):
        original = LogRecord(3, "batch", {"operations": [("search", 1.0, None)]})
        record = decode_record(encode_record(original), expected_seq=3)
        assert record == original
        assert record.is_action

    def test_sequence_gap_is_detected(self):
        encoded = encode_record(LogRecord(3, "note", {}))
        with pytest.raises(StorageError, match="seq"):
            decode_record(encoded, expected_seq=4)

    def test_committed_prefix_strips_trailing_membership(self, tmp_path):
        cluster, store = _journaled_cluster(tmp_path)
        cluster.join_host()
        cluster.close()
        backend = open_storage(store)
        records = backend.records()
        assert committed_prefix(records) == len(records)
        # a crash between the membership mutation and the action append
        # leaves a dangling membership record; the prefix excludes it
        backend2 = JsonlStorage(store)
        backend2.append("membership", {"event": "add", "host": 99})
        dangling = backend2.records()
        assert committed_prefix(dangling) == len(dangling) - 1
        backend2.close()
        backend.close()


class TestGuards:
    def test_storage_refuses_external_network(self):
        with pytest.raises(StorageError, match="network"):
            Cluster(
                structure="skipweb1d",
                items=KEYS,
                seed=3,
                storage="unused.jsonl",
                network=Network(),
            )

    def test_storage_refuses_external_churn_rng(self, tmp_path):
        import random

        with pytest.raises(StorageError, match="rng"):
            Cluster(
                structure="skipweb1d",
                items=KEYS,
                seed=3,
                storage=str(tmp_path / "log.jsonl"),
                churn_rng=random.Random(0),
            )

    def test_storage_refuses_route_cache(self, tmp_path):
        with pytest.raises(StorageError, match="route_cache"):
            Cluster(
                structure="skipweb1d",
                items=KEYS,
                seed=3,
                storage=str(tmp_path / "log.jsonl"),
                route_cache=True,
            )

    def test_configure_churn_refuses_rng_override(self, tmp_path):
        import random

        cluster, _store = _journaled_cluster(tmp_path)
        with pytest.raises(StorageError, match="rng"):
            cluster.configure_churn(rng=random.Random(0))
        cluster.close()

    def test_save_requires_storage(self):
        cluster = Cluster(structure="skipweb1d", items=KEYS, seed=3)
        with pytest.raises(StorageError, match="storage"):
            cluster.save()
        cluster.close()

    def test_save_refuses_open_measure_session(self, tmp_path):
        cluster, _store = _journaled_cluster(tmp_path)
        with cluster.session():
            with pytest.raises(StorageError, match="measure"):
                cluster.save()
        cluster.close()

    def test_kill_after_requires_storage(self):
        with pytest.raises(StorageError, match="storage"):
            run_workload("skipweb1d", steps=2, kill_after=1)

    def test_unknown_workload_structure(self):
        with pytest.raises(StorageError, match="btree"):
            run_workload("btree", steps=1)


class TestCommitHooks:
    def test_serial_executor_fires_once_per_batch(self):
        from repro.engine import BatchExecutor, Operation

        web = SkipWeb1D(uniform_keys(16, seed=1), seed=1)
        calls = []
        executor = BatchExecutor(web, on_commit=lambda ops, result: calls.append((ops, result)))
        operations = [Operation("search", 1.0), Operation("search", 2.0)]
        result = executor.run(operations)
        assert len(calls) == 1
        ops, committed = calls[0]
        assert ops == tuple(operations)
        assert committed is result

    def test_sharded_executor_fires_in_parent_only(self):
        from repro.engine import Operation
        from repro.engine.sharded import ShardedExecutor

        web = SkipWeb1D(uniform_keys(32, seed=2), seed=2)
        calls = []
        executor = ShardedExecutor(
            web, workers=2, on_commit=lambda ops, result: calls.append(ops)
        )
        assert executor._serial.on_commit is None  # fallback must not double-fire
        read_only = [Operation("search", float(i)) for i in range(8)]
        executor.run(read_only)
        assert len(calls) == 1
        executor.run([Operation("insert", 1.5)])  # falls back to serial
        assert len(calls) == 2

    def test_journaled_batches_replay_through_executor(self, tmp_path):
        cluster, store = _journaled_cluster(tmp_path)
        cluster.batch([("search", 123.0), ("insert", 1.5), ("delete", KEYS[0])])
        digest = content_digest(cluster.structure)
        cluster.close()
        recovered = Cluster.recover(store)
        assert content_digest(recovered.structure) == digest
        recovered.close()
