"""Tests for alphabets, compressed tries and trie skip-webs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StructureError
from repro.strings import BINARY, DNA, LOWERCASE, Alphabet, CompressedTrie, SkipTrieWeb
from repro.strings.skip_trie import TrieRange
from repro.strings.trie import longest_common_prefix
from repro.workloads import dna_reads, random_strings
from repro.workloads.strings import isbn_like_keys, prefix_queries


def reference_longest_prefix(strings, query):
    """Longest prefix of ``query`` that is a prefix of some stored string."""
    best = 0
    for stored in strings:
        shared = len(longest_common_prefix(stored, query))
        best = max(best, shared)
    return query[:best]


class TestAlphabet:
    def test_validation(self):
        assert DNA.validate_string("ACGT") == "ACGT"
        with pytest.raises(ValueError):
            DNA.validate_string("ACGU")

    def test_bad_alphabets(self):
        with pytest.raises(ValueError):
            Alphabet("empty", ())
        with pytest.raises(ValueError):
            Alphabet("dup", ("a", "a"))
        with pytest.raises(ValueError):
            Alphabet("long", ("ab",))

    def test_sort_key_follows_alphabet_order(self):
        assert BINARY.sort_key("10") == (1, 0)
        assert LOWERCASE.index("c") == 2


class TestCompressedTrie:
    def test_membership_and_terminals(self):
        strings = ["car", "cart", "cat", "dog"]
        trie = CompressedTrie(strings, LOWERCASE)
        trie.validate()
        assert "cat" in trie and "car" in trie
        assert "ca" not in trie

    def test_compression_no_unary_nonterminal_nodes(self):
        trie = CompressedTrie(["abcdefgh", "abcdxyz"], LOWERCASE)
        trie.validate()
        # root + branching node "abcd" + 2 leaves
        assert trie.node_count() == 4

    def test_requires_nonempty(self):
        with pytest.raises(StructureError):
            CompressedTrie([], LOWERCASE)

    def test_empty_string_marks_root(self):
        trie = CompressedTrie(["", "a"], LOWERCASE)
        assert "" in trie
        trie.validate()

    def test_locate_partial_edge_match(self):
        trie = CompressedTrie(["abcdef"], LOWERCASE)
        node, matched = trie.locate("abcxyz")
        assert matched == 3
        assert node.prefix == "abcdef"

    def test_longest_matching_prefix(self):
        strings = ["banana", "bandana", "bank"]
        trie = CompressedTrie(strings, LOWERCASE)
        assert trie.longest_matching_prefix("bandit") == "band"
        assert trie.longest_matching_prefix("zzz") == ""
        assert trie.longest_matching_prefix("banana") == "banana"

    def test_strings_with_prefix(self):
        strings = ["banana", "bandana", "bank", "zebra"]
        trie = CompressedTrie(strings, LOWERCASE)
        assert trie.strings_with_prefix("ban") == ["banana", "bandana", "bank"]
        assert trie.strings_with_prefix("band") == ["bandana"]
        assert trie.strings_with_prefix("x") == []

    def test_depth_with_shared_motifs(self):
        reads = dna_reads(80, seed=1)
        trie = CompressedTrie(reads, DNA)
        trie.validate()
        assert trie.depth() >= 12

    @given(
        strings=st.lists(st.text(alphabet="ab", min_size=1, max_size=10), min_size=1, max_size=30),
        query=st.text(alphabet="ab", max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_longest_prefix_matches_reference(self, strings, query):
        alphabet = Alphabet("ab", ("a", "b"))
        trie = CompressedTrie(strings, alphabet)
        assert trie.longest_matching_prefix(query) == reference_longest_prefix(
            set(strings), query
        )

    @given(
        strings=st.lists(st.text(alphabet="abc", min_size=1, max_size=8), min_size=1, max_size=25)
    )
    @settings(max_examples=40, deadline=None)
    def test_membership_matches_set(self, strings):
        alphabet = Alphabet("abc", ("a", "b", "c"))
        trie = CompressedTrie(strings, alphabet)
        trie.validate()
        stored = set(strings)
        for candidate in list(stored)[:10]:
            assert candidate in trie
        assert ("zzz" in trie) is False


class TestTrieRange:
    def test_node_range_contains_only_its_string(self):
        rng = TrieRange(low=2, high="abc")
        assert rng.contains("abc")
        assert not rng.contains("ab")

    def test_edge_range_contains_intermediate_prefixes(self):
        rng = TrieRange(low=1, high="abcd")
        assert rng.contains("ab") and rng.contains("abcd")
        assert not rng.contains("a")

    def test_intersection_along_path(self):
        edge = TrieRange(low=0, high="abcd")
        node = TrieRange(low=1, high="ab")
        assert edge.intersects(node) and node.intersects(edge)
        other_branch = TrieRange(low=1, high="axyz")
        assert not edge.intersects(other_branch) or longest_common_prefix("abcd", "axyz") != "a"

    def test_root_range(self):
        root = TrieRange(low=-1, high="")
        assert root.contains("")
        assert root.intersects(TrieRange(low=-1, high="abc"))


@pytest.fixture(scope="module")
def trie_web():
    strings = random_strings(120, alphabet=LOWERCASE, seed=31)
    return strings, SkipTrieWeb(strings, alphabet=LOWERCASE, seed=9)


class TestSkipTrieWeb:
    def test_validate(self, trie_web):
        _strings, web = trie_web
        web.web.validate()

    def test_locate_matches_reference(self, trie_web):
        strings, web = trie_web
        for query in prefix_queries(strings, 25, seed=2):
            expected = web.level0_trie.longest_matching_prefix(query)
            assert web.locate(query).answer.matched_prefix == expected

    def test_contains(self, trie_web):
        strings, web = trie_web
        assert web.contains(strings[0])
        assert not web.contains(strings[0] + "xx")

    def test_prefix_search_returns_all_matches(self, trie_web):
        strings, web = trie_web
        prefix = strings[10][:3]
        _result, matches = web.prefix_search(prefix)
        assert matches == sorted(s for s in strings if s.startswith(prefix))

    def test_messages_logarithmic(self, trie_web):
        strings, web = trie_web
        costs = [web.locate(q).messages for q in prefix_queries(strings, 20, seed=3)]
        assert max(costs) <= 35

    def test_isbn_publisher_prefix_query(self):
        keys = isbn_like_keys(150, seed=4)
        web = SkipTrieWeb(
            keys, alphabet=__import__("repro.strings", fromlist=["PRINTABLE"]).PRINTABLE, seed=1
        )
        publisher_prefix = keys[0][:5]
        _result, matches = web.prefix_search(publisher_prefix)
        assert matches == sorted(k for k in keys if k.startswith(publisher_prefix))
        assert len(matches) >= 1

    def test_insert_and_delete(self):
        strings = random_strings(60, alphabet=LOWERCASE, seed=32)
        web = SkipTrieWeb(strings, alphabet=LOWERCASE, seed=2)
        web.insert("zzzbrandnew")
        assert web.contains("zzzbrandnew")
        web.delete(strings[3])
        assert not web.contains(strings[3])
        web.web.validate()

    def test_dna_reads_deep_trie_queries(self):
        reads = dna_reads(100, seed=5)
        web = SkipTrieWeb(reads, alphabet=DNA, seed=3)
        trie = web.level0_trie
        assert trie.depth() >= 12
        for query in dna_reads(10, seed=6):
            assert web.locate(query).answer.matched_prefix == trie.longest_matching_prefix(query)


class TestPrefixRangeReporting:
    """Prefix enumeration on the trie skip-web (O(log n + k) messages)."""

    def test_prefix_range_matches_reference(self):
        reads = dna_reads(48, seed=41)
        web = SkipTrieWeb(reads, alphabet=DNA, seed=41)
        for prefix in ("A", "AC", "G", ""):
            expected = sorted(set(text for text in reads if text.startswith(prefix)))
            result = web.range_report(prefix)
            assert sorted(result.matches) == expected
            assert result.messages == result.descent_messages + result.report_messages

    def test_prefix_range_intersections(self):
        from repro.strings.skip_trie import PrefixRange

        assert PrefixRange("ab").contains("abc")
        assert not PrefixRange("ab").contains("a")
        assert PrefixRange("ab").intersects(TrieRange(low=0, high="abcd"))
        assert not PrefixRange("ab").intersects(TrieRange(low=0, high="ax"))
        assert PrefixRange("ab").intersects(PrefixRange("a"))
        assert not PrefixRange("ab").intersects(PrefixRange("ba"))
