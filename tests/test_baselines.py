"""Tests for the Table 1 baseline structures."""

import bisect
import random
from statistics import mean

import pytest

from repro.baselines import (
    BucketSkipGraph,
    ChordDHT,
    DeterministicSkipNet,
    FamilyTreeOverlay,
    NoNSkipGraph,
    SkipGraph,
    SkipList,
    SkipNet,
)
from repro.errors import QueryError, UpdateError
from repro.workloads import uniform_keys

ORDERED_BASELINES = [
    SkipGraph,
    SkipNet,
    NoNSkipGraph,
    FamilyTreeOverlay,
    DeterministicSkipNet,
    BucketSkipGraph,
]


def reference_nearest(keys, query):
    index = bisect.bisect_left(keys, query)
    candidates = []
    if index > 0:
        candidates.append(keys[index - 1])
    if index < len(keys):
        candidates.append(keys[index])
    return min(candidates, key=lambda value: abs(value - query))


@pytest.fixture(scope="module")
def workload():
    keys = uniform_keys(150, seed=50)
    rng = random.Random(51)
    queries = [rng.uniform(0, 1_000_000) for _ in range(30)] + keys[:5]
    return keys, queries


class TestSkipList:
    def test_search_and_membership(self):
        keys = uniform_keys(200, seed=1)
        skiplist = SkipList(keys, seed=2)
        skiplist.validate()
        assert len(skiplist) == len(keys)
        assert keys[5] in skiplist
        assert keys[5] + 0.123 not in skiplist

    def test_nearest_matches_reference(self):
        keys = uniform_keys(100, seed=3)
        skiplist = SkipList(keys, seed=4)
        rng = random.Random(5)
        for query in [rng.uniform(0, 1_000_000) for _ in range(25)]:
            assert skiplist.search(query).nearest == reference_nearest(keys, query)

    def test_insert_and_delete(self):
        skiplist = SkipList([1.0, 2.0, 3.0], seed=6)
        skiplist.insert(2.5)
        assert 2.5 in skiplist
        assert skiplist.delete(2.5) is True
        assert skiplist.delete(2.5) is False
        skiplist.validate()

    def test_search_hops_grow_logarithmically(self):
        rng = random.Random(7)
        means = []
        for n in (128, 2048):
            keys = uniform_keys(n, seed=n)
            skiplist = SkipList(keys, seed=8)
            queries = [rng.uniform(0, 1_000_000) for _ in range(80)]
            means.append(mean(skiplist.search(q).hops for q in queries))
        # Quadrupling n twice should roughly add a constant per doubling,
        # nowhere near the 16x a linear structure would show.
        assert means[1] <= means[0] * 3

    def test_space_is_linear(self):
        keys = uniform_keys(500, seed=9)
        skiplist = SkipList(keys, seed=10)
        assert skiplist.node_count() <= 4 * len(keys)

    def test_empty_search_raises(self):
        with pytest.raises(QueryError):
            SkipList().search(1.0)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            SkipList(probability=1.5)


class TestOrderedBaselines:
    @pytest.mark.parametrize("cls", ORDERED_BASELINES)
    def test_search_matches_reference(self, cls, workload):
        keys, queries = workload
        structure = cls(keys, seed=60)
        rng = random.Random(61)
        for query in queries:
            outcome = structure.search(query, origin_key=rng.choice(keys))
            assert outcome.nearest == reference_nearest(keys, query)

    @pytest.mark.parametrize("cls", ORDERED_BASELINES)
    def test_exact_flag(self, cls, workload):
        keys, _queries = workload
        structure = cls(keys, seed=62)
        assert structure.search(keys[3]).exact
        assert not structure.search(keys[3] + 0.123).exact

    @pytest.mark.parametrize("cls", ORDERED_BASELINES)
    def test_insert_then_searchable(self, cls, workload):
        keys, _queries = workload
        structure = cls(keys, seed=63)
        outcome = structure.insert(123456.789)
        assert outcome.messages >= 1
        assert structure.search(123456.789).exact

    @pytest.mark.parametrize("cls", ORDERED_BASELINES)
    def test_delete_then_not_found(self, cls, workload):
        keys, _queries = workload
        structure = cls(keys, seed=64)
        structure.delete(keys[7], origin_key=keys[0])
        assert keys[7] not in structure.keys
        assert not structure.search(keys[7], origin_key=keys[0]).exact

    @pytest.mark.parametrize("cls", ORDERED_BASELINES)
    def test_update_errors(self, cls, workload):
        keys, _queries = workload
        structure = cls(keys, seed=65)
        with pytest.raises(UpdateError):
            structure.insert(keys[0])
        with pytest.raises(UpdateError):
            structure.delete(keys[0] + 0.5)

    @pytest.mark.parametrize("cls", ORDERED_BASELINES)
    def test_unknown_origin_raises(self, cls, workload):
        keys, _queries = workload
        structure = cls(keys, seed=66)
        with pytest.raises(QueryError):
            structure.search(1.0, origin_key=-12345.0)


class TestTable1Shapes:
    """The qualitative relationships Table 1 asserts between the methods."""

    @pytest.fixture(scope="class")
    def structures(self):
        keys = uniform_keys(256, seed=70)
        rng = random.Random(71)
        queries = [rng.uniform(0, 1_000_000) for _ in range(40)]
        built = {
            "skip graph": SkipGraph(keys, seed=72),
            "NoN": NoNSkipGraph(keys, seed=72),
            "family tree": FamilyTreeOverlay(keys, seed=72),
            "deterministic": DeterministicSkipNet(keys, seed=72),
            "bucket": BucketSkipGraph(keys, seed=72),
        }
        costs = {
            name: mean(s.search(q, origin_key=rng.choice(keys)).messages for q in queries)
            for name, s in built.items()
        }
        return keys, built, costs

    def test_non_lookahead_speeds_up_queries(self, structures):
        _keys, _built, costs = structures
        assert costs["NoN"] < costs["skip graph"]

    def test_non_lookahead_costs_memory(self, structures):
        _keys, built, _costs = structures
        assert built["NoN"].max_memory_per_host() > 2 * built["skip graph"].max_memory_per_host()

    def test_family_tree_has_constant_degree(self, structures):
        _keys, built, _costs = structures
        assert built["family tree"].max_memory_per_host() <= 8

    def test_bucket_uses_fewer_hosts(self, structures):
        keys, built, _costs = structures
        assert built["bucket"].host_count < len(keys)
        assert built["skip graph"].host_count == len(keys)

    def test_skip_graph_memory_is_logarithmic(self, structures):
        keys, built, _costs = structures
        assert built["skip graph"].max_memory_per_host() <= 4 * 8 + 8

    def test_deterministic_invariant_after_updates(self):
        keys = uniform_keys(100, seed=73)
        structure = DeterministicSkipNet(keys, seed=74)
        rng = random.Random(75)
        for _ in range(6):
            structure.insert(rng.uniform(0, 1_000_000))
        for victim in rng.sample(structure.keys, 4):
            structure.delete(victim, origin_key=structure.keys[0])
        structure.validate_invariant()
        ordered = sorted(structure.keys)
        for query in [rng.uniform(0, 1_000_000) for _ in range(10)]:
            assert structure.search(query).nearest == reference_nearest(ordered, query)


class TestChord:
    def test_lookup_finds_every_key(self):
        keys = uniform_keys(120, seed=80)
        chord = ChordDHT(keys)
        rng = random.Random(81)
        for key in rng.sample(keys, 25):
            outcome = chord.lookup(key)
            assert outcome.found
            assert outcome.messages >= 1

    def test_lookup_missing_key_not_found(self):
        keys = uniform_keys(60, seed=82)
        chord = ChordDHT(keys)
        assert not chord.lookup(123.456).found

    def test_lookup_cost_is_logarithmic(self):
        keys = uniform_keys(256, seed=83)
        chord = ChordDHT(keys)
        rng = random.Random(84)
        costs = [chord.lookup(k).messages for k in rng.sample(keys, 30)]
        assert mean(costs) <= 12

    def test_nearest_neighbor_unsupported(self):
        chord = ChordDHT([1.0, 2.0, 3.0])
        with pytest.raises(NotImplementedError):
            chord.nearest_neighbor(1.5)


class TestBaselineRangeSearch:
    """Ordered overlays answer ranges in O(log n + k); hashing cannot."""

    @pytest.mark.parametrize("cls", ORDERED_BASELINES)
    def test_range_matches_reference(self, cls):
        keys = sorted(set(float(k) for k in uniform_keys(64, seed=90)))
        structure = cls(keys, seed=90)
        low, high = keys[10], keys[30]
        result = structure.range_search(low, high)
        assert sorted(result.matches) == keys[10:31]
        assert result.messages == result.descent_messages + result.report_messages
        assert result.report_messages <= len(result.matches) + 1

    def test_chord_range_raises_unsupported(self):
        from repro.errors import UnsupportedOperationError

        chord = ChordDHT(uniform_keys(32, seed=91))
        with pytest.raises(UnsupportedOperationError):
            chord.range_steps((0.0, 1.0))
