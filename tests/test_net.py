"""Tests for the peer-to-peer network simulator substrate."""

import pytest

from repro.errors import AddressError, HostFailedError, HostMemoryExceeded, UnknownHostError
from repro.net import Address, FailureInjector, Host, MessageKind, Network, Traversal
from repro.net.congestion import congestion_report, round_congestion_report
from repro.net.message import MessageLog


class TestHost:
    def test_store_and_load_round_trip(self):
        host = Host(host_id=0)
        address = host.store("payload")
        assert host.load(address) == "payload"
        assert address.host == 0

    def test_store_respects_memory_limit(self):
        host = Host(host_id=1, memory_limit=2)
        host.store("a")
        host.store("b")
        with pytest.raises(HostMemoryExceeded):
            host.store("c")

    def test_memory_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            Host(host_id=0, memory_limit=0)

    def test_load_wrong_host_raises(self):
        host = Host(host_id=0)
        other = Host(host_id=1)
        address = other.store("x")
        with pytest.raises(AddressError):
            host.load(address)

    def test_free_releases_slot(self):
        host = Host(host_id=0, memory_limit=1)
        address = host.store("a")
        assert host.free(address) == "a"
        host.store("b")  # does not raise: slot was released
        assert host.memory_used == 1

    def test_free_unknown_slot_raises(self):
        host = Host(host_id=0)
        with pytest.raises(AddressError):
            host.free(Address(host=0, slot=99))

    def test_replace_overwrites_in_place(self):
        host = Host(host_id=0)
        address = host.store("old")
        host.replace(address, "new")
        assert host.load(address) == "new"

    def test_contains_and_items(self):
        host = Host(host_id=0)
        address = host.store("x")
        assert address in host
        assert list(host.items()) == [(address, "x")]

    def test_reference_counters(self):
        host = Host(host_id=0)
        host.note_in_reference(3)
        host.note_out_reference(2)
        host.note_owned_items(4)
        assert (host.in_references, host.out_references, host.items_owned) == (3, 2, 4)
        host.reset_reference_counts()
        assert host.in_references == host.out_references == host.items_owned == 0


class TestNetwork:
    def test_add_hosts_and_lookup(self):
        network = Network()
        network.add_hosts(3)
        assert network.host_count == 3
        assert network.host(1).host_id == 1
        assert 2 in network

    def test_unknown_host_raises(self):
        network = Network()
        with pytest.raises(UnknownHostError):
            network.host(7)

    def test_explicit_host_id(self):
        network = Network()
        network.add_host(host_id=10)
        with pytest.raises(ValueError):
            network.add_host(host_id=10)
        # Automatic ids continue after the explicit one.
        assert network.add_host().host_id == 11

    def test_send_counts_messages_between_distinct_hosts(self):
        network = Network()
        network.add_hosts(2)
        network.send(0, 1)
        network.send(1, 0, kind=MessageKind.UPDATE)
        assert network.total_messages == 2
        assert network.message_log.count(MessageKind.QUERY) == 1
        assert network.message_log.count(MessageKind.UPDATE) == 1

    def test_send_to_self_is_free(self):
        network = Network()
        network.add_hosts(1)
        assert network.send(0, 0) is None
        assert network.total_messages == 0

    def test_send_to_unknown_host_raises(self):
        network = Network()
        network.add_hosts(1)
        with pytest.raises(UnknownHostError):
            network.send(0, 5)

    def test_measure_isolates_operations(self):
        network = Network()
        network.add_hosts(3)
        network.send(0, 1)
        with network.measure() as stats:
            network.send(1, 2)
            network.send(2, 0)
        assert stats.messages == 2
        assert stats.hosts_touched == {0, 1, 2}
        assert network.total_messages == 3

    def test_measure_nests(self):
        network = Network()
        network.add_hosts(2)
        with network.measure() as outer:
            network.send(0, 1)
            with network.measure() as inner:
                network.send(1, 0)
        assert inner.messages == 1
        assert outer.messages == 2

    def test_memory_profile_and_reset(self):
        network = Network()
        network.add_hosts(2)
        network.store(0, "a")
        network.store(0, "b")
        network.store(1, "c")
        assert network.memory_profile() == {0: 2, 1: 1}
        assert network.max_memory_used() == 2
        network.send(0, 1)
        network.reset_counters()
        assert network.total_messages == 0

    def test_failed_host_rejects_traffic(self):
        network = Network()
        network.add_hosts(2)
        network.fail_host(1)
        with pytest.raises(HostFailedError):
            network.send(0, 1)
        network.recover_host(1)
        network.send(0, 1)
        assert network.total_messages == 1


class TestTraversal:
    def test_local_visit_is_free(self):
        network = Network()
        network.add_hosts(2)
        address = network.store(0, "x")
        traversal = Traversal(network, origin=0)
        assert traversal.visit(address) == "x"
        assert traversal.hops == 0

    def test_remote_visit_charges_one_message(self):
        network = Network()
        network.add_hosts(2)
        address = network.store(1, "x")
        traversal = Traversal(network, origin=0)
        traversal.visit(address)
        assert traversal.hops == 1
        assert traversal.current_host == 1
        assert traversal.path == [0, 1]

    def test_hop_to_same_host_is_free(self):
        network = Network()
        network.add_hosts(2)
        traversal = Traversal(network, origin=0)
        traversal.hop_to(0)
        assert traversal.hops == 0
        traversal.hop_to(1)
        assert traversal.hops == 1

    def test_update_kind_is_recorded(self):
        network = Network()
        network.add_hosts(2)
        traversal = Traversal(network, origin=0, kind=MessageKind.UPDATE)
        traversal.hop_to(1)
        assert network.message_log.count(MessageKind.UPDATE) == 1


class TestMessageLog:
    def test_per_host_counters(self):
        log = MessageLog()
        log.record(0, 1, MessageKind.QUERY)
        log.record(2, 1, MessageKind.QUERY)
        log.record(1, 0, MessageKind.UPDATE)
        assert log.received_by(1) == 2
        assert log.sent_by(1) == 1
        assert log.busiest_hosts(top=1) == [(1, 2)]
        assert len(log) == 3

    def test_counts_survive_without_keeping_messages(self):
        log = MessageLog(keep_messages=False)
        log.record(0, 1, MessageKind.QUERY)
        assert len(log) == 1
        assert log.messages == []

    def test_clear(self):
        log = MessageLog()
        log.record(0, 1, MessageKind.QUERY)
        log.clear()
        assert len(log) == 0
        assert log.received_by(1) == 0


class TestCongestion:
    def test_congestion_includes_base_load(self):
        network = Network()
        network.add_hosts(4)
        report = congestion_report(network, ground_set_size=8)
        assert report.mean_congestion == pytest.approx(2.0)
        assert report.max_congestion == pytest.approx(2.0)
        assert report.imbalance == pytest.approx(1.0)

    def test_congestion_counts_references(self):
        network = Network()
        network.add_hosts(2)
        network.host(0).note_out_reference(3)
        network.host(1).note_in_reference(3)
        report = congestion_report(network, ground_set_size=2)
        assert report.per_host[0] == pytest.approx(3 + 1)
        assert report.per_host[1] == pytest.approx(3 + 1)

    def test_empty_network_report(self):
        network = Network()
        report = congestion_report(network, ground_set_size=0)
        assert report.max_congestion == 0.0
        assert report.as_dict()["hosts"] == 0.0

    def test_congestion_counts_alive_hosts_only(self):
        """Regression: failed hosts must not dilute the n/H base load.

        With H registered hosts but one failed, the base-load term n/H
        must use the alive count — otherwise every per-host congestion
        figure after churn is understated (and the dead host still gets
        a row of its own).
        """
        network = Network()
        network.add_hosts(4)
        network.host(0).note_out_reference(2)
        before = congestion_report(network, ground_set_size=12)
        assert before.host_count == 4
        assert before.per_host[0] == pytest.approx(2 + 12 / 4)

        network.fail_host(3)
        after = congestion_report(network, ground_set_size=12)
        assert after.host_count == 3
        assert 3 not in after.per_host
        # The surviving hosts absorb the failed host's share of queries.
        assert after.per_host[0] == pytest.approx(2 + 12 / 3)
        assert after.per_host[0] > before.per_host[0]

        network.recover_host(3)
        recovered = congestion_report(network, ground_set_size=12)
        assert recovered.host_count == 4
        assert recovered.per_host == before.per_host


class TestRoundMode:
    def test_post_requires_round_mode(self):
        network = Network()
        network.add_hosts(2)
        with pytest.raises(RuntimeError):
            network.post(0, 1)

    def test_run_round_delivers_queued_messages(self):
        network = Network()
        network.add_hosts(3)
        with network.rounds():
            ticket_a = network.post(0, 1)
            ticket_b = network.post(2, 1)
            report = network.run_round()
        assert report.delivered == 2
        assert report.per_host == {1: 2}
        assert report.max_host_load == 2
        assert ticket_a.result() is not None
        assert ticket_b.result() is not None
        assert network.total_messages == 2

    def test_self_post_is_free(self):
        network = Network()
        network.add_hosts(1)
        with network.rounds():
            ticket = network.post(0, 0)
            report = network.run_round()
        # Free in the cost model: resolved, but not a delivered message —
        # round totals stay consistent with the network's own accounting.
        assert report.delivered == 0
        assert ticket.result() is None
        assert network.total_messages == 0
        assert round_congestion_report(network).total_messages == 0

    def test_round_reports_accumulate_per_session(self):
        network = Network()
        network.add_hosts(2)
        with network.rounds():
            network.post(0, 1)
            network.run_round()
            network.post(1, 0)
            network.post(1, 0)
            network.run_round()
            assert network.rounds_completed == 2
        reports = network.round_reports
        assert [report.index for report in reports] == [0, 1]
        assert [report.delivered for report in reports] == [1, 2]
        # Entering a new session resets the round counters.
        with network.rounds():
            assert network.rounds_completed == 0
            assert network.round_reports == []

    def test_measure_records_round_counters(self):
        network = Network()
        network.add_hosts(2)
        with network.measure() as stats:
            with network.rounds():
                network.post(0, 1)
                network.run_round()
                network.post(1, 0)
                network.post(0, 1)
                network.run_round()
        assert stats.messages == 3
        assert stats.by_round == {0: 1, 1: 2}
        assert stats.rounds == 2

    def test_delivery_to_failed_host_is_dropped_not_raised(self):
        """Round-level failure semantics: only the affected ticket errors."""
        network = Network()
        network.add_hosts(3)
        with network.rounds():
            doomed = network.post(0, 2)
            healthy = network.post(0, 1)
            network.fail_host(2)
            report = network.run_round()
        assert report.delivered == 1
        assert report.dropped == 1
        with pytest.raises(HostFailedError):
            doomed.result()
        assert healthy.result() is not None
        assert network.total_messages == 1

    def test_run_rounds_drives_steppers(self):
        network = Network()
        network.add_hosts(4)
        sent: list[int] = []

        def make_stepper(src, dst, hops):
            remaining = [hops]

            def step() -> bool:
                if remaining[0] == 0:
                    return False
                remaining[0] -= 1
                network.post(src, dst)
                sent.append(src)
                return True

            return step

        with network.rounds():
            reports = network.run_rounds([make_stepper(0, 1, 3), make_stepper(2, 3, 1)])
        assert len(reports) == 3
        assert reports[0].delivered == 2
        assert reports[1].delivered == 1
        assert sent.count(0) == 3 and sent.count(2) == 1

    def test_direct_sends_count_in_round_reports(self):
        """send() inside a session is consistent with queued deliveries,
        and a trailing send after the last run_round gets a closing report."""
        network = Network()
        network.add_hosts(2)
        with network.rounds():
            network.send(0, 1)
            network.post(0, 1)
            report = network.run_round()
            network.send(1, 0)
        assert report.delivered == 2
        assert report.per_host == {1: 2}
        summary = round_congestion_report(network)
        assert summary.rounds == 2
        assert summary.total_messages == network.total_messages == 3

    def test_round_congestion_report_summarises_session(self):
        network = Network()
        network.add_hosts(3)
        with network.rounds():
            network.post(0, 1)
            network.post(2, 1)
            network.run_round()
            network.post(1, 0)
            network.run_round()
        report = round_congestion_report(network)
        assert report.rounds == 2
        assert report.total_messages == 3
        assert report.per_round_max == (2, 1)
        assert report.max_host_round_load == 2
        assert report.busiest_host == 1
        assert report.busiest_round == 0
        assert report.as_dict()["max_host_round_load"] == 2.0

    def test_round_congestion_report_empty_without_rounds(self):
        network = Network()
        network.add_hosts(2)
        report = round_congestion_report(network)
        assert report.rounds == 0
        assert report.max_host_round_load == 0
        assert report.busiest_host is None

    def test_nested_round_sessions_rejected(self):
        network = Network()
        network.add_hosts(1)
        with network.rounds():
            with pytest.raises(RuntimeError):
                with network.rounds():
                    pass  # pragma: no cover


class TestFailureInjector:
    def test_fail_and_recover(self):
        network = Network()
        network.add_hosts(10)
        injector = FailureInjector(network)
        failed = injector.fail_random(0.3)
        assert len(failed) == 3
        assert injector.failed == set(failed)
        injector.recover_all()
        assert injector.failed == set()

    def test_fraction_validation(self):
        network = Network()
        network.add_hosts(2)
        with pytest.raises(ValueError):
            FailureInjector(network).fail_random(1.5)

    def test_injector_failure_between_rounds(self):
        """Failing a host mid-session only poisons deliveries to that host."""
        network = Network()
        network.add_hosts(4)
        injector = FailureInjector(network)
        with network.rounds():
            before = network.post(0, 1)
            network.run_round()
            injector.fail([1])
            doomed = network.post(0, 1)
            unaffected = network.post(2, 3)
            report = network.run_round()
        assert before.result() is not None
        with pytest.raises(HostFailedError):
            doomed.result()
        assert unaffected.result() is not None
        assert report.dropped == 1
        injector.recover_all()
        with network.rounds():
            recovered = network.post(0, 1)
            network.run_round()
        assert recovered.result() is not None
