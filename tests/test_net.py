"""Tests for the peer-to-peer network simulator substrate."""

import pytest

from repro.errors import AddressError, HostFailedError, HostMemoryExceeded, UnknownHostError
from repro.net import Address, FailureInjector, Host, MessageKind, Network, Traversal
from repro.net.congestion import congestion_report
from repro.net.message import MessageLog


class TestHost:
    def test_store_and_load_round_trip(self):
        host = Host(host_id=0)
        address = host.store("payload")
        assert host.load(address) == "payload"
        assert address.host == 0

    def test_store_respects_memory_limit(self):
        host = Host(host_id=1, memory_limit=2)
        host.store("a")
        host.store("b")
        with pytest.raises(HostMemoryExceeded):
            host.store("c")

    def test_memory_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            Host(host_id=0, memory_limit=0)

    def test_load_wrong_host_raises(self):
        host = Host(host_id=0)
        other = Host(host_id=1)
        address = other.store("x")
        with pytest.raises(AddressError):
            host.load(address)

    def test_free_releases_slot(self):
        host = Host(host_id=0, memory_limit=1)
        address = host.store("a")
        assert host.free(address) == "a"
        host.store("b")  # does not raise: slot was released
        assert host.memory_used == 1

    def test_free_unknown_slot_raises(self):
        host = Host(host_id=0)
        with pytest.raises(AddressError):
            host.free(Address(host=0, slot=99))

    def test_replace_overwrites_in_place(self):
        host = Host(host_id=0)
        address = host.store("old")
        host.replace(address, "new")
        assert host.load(address) == "new"

    def test_contains_and_items(self):
        host = Host(host_id=0)
        address = host.store("x")
        assert address in host
        assert list(host.items()) == [(address, "x")]

    def test_reference_counters(self):
        host = Host(host_id=0)
        host.note_in_reference(3)
        host.note_out_reference(2)
        host.note_owned_items(4)
        assert (host.in_references, host.out_references, host.items_owned) == (3, 2, 4)
        host.reset_reference_counts()
        assert host.in_references == host.out_references == host.items_owned == 0


class TestNetwork:
    def test_add_hosts_and_lookup(self):
        network = Network()
        network.add_hosts(3)
        assert network.host_count == 3
        assert network.host(1).host_id == 1
        assert 2 in network

    def test_unknown_host_raises(self):
        network = Network()
        with pytest.raises(UnknownHostError):
            network.host(7)

    def test_explicit_host_id(self):
        network = Network()
        network.add_host(host_id=10)
        with pytest.raises(ValueError):
            network.add_host(host_id=10)
        # Automatic ids continue after the explicit one.
        assert network.add_host().host_id == 11

    def test_send_counts_messages_between_distinct_hosts(self):
        network = Network()
        network.add_hosts(2)
        network.send(0, 1)
        network.send(1, 0, kind=MessageKind.UPDATE)
        assert network.total_messages == 2
        assert network.message_log.count(MessageKind.QUERY) == 1
        assert network.message_log.count(MessageKind.UPDATE) == 1

    def test_send_to_self_is_free(self):
        network = Network()
        network.add_hosts(1)
        assert network.send(0, 0) is None
        assert network.total_messages == 0

    def test_send_to_unknown_host_raises(self):
        network = Network()
        network.add_hosts(1)
        with pytest.raises(UnknownHostError):
            network.send(0, 5)

    def test_measure_isolates_operations(self):
        network = Network()
        network.add_hosts(3)
        network.send(0, 1)
        with network.measure() as stats:
            network.send(1, 2)
            network.send(2, 0)
        assert stats.messages == 2
        assert stats.hosts_touched == {0, 1, 2}
        assert network.total_messages == 3

    def test_measure_nests(self):
        network = Network()
        network.add_hosts(2)
        with network.measure() as outer:
            network.send(0, 1)
            with network.measure() as inner:
                network.send(1, 0)
        assert inner.messages == 1
        assert outer.messages == 2

    def test_memory_profile_and_reset(self):
        network = Network()
        network.add_hosts(2)
        network.store(0, "a")
        network.store(0, "b")
        network.store(1, "c")
        assert network.memory_profile() == {0: 2, 1: 1}
        assert network.max_memory_used() == 2
        network.send(0, 1)
        network.reset_counters()
        assert network.total_messages == 0

    def test_failed_host_rejects_traffic(self):
        network = Network()
        network.add_hosts(2)
        network.fail_host(1)
        with pytest.raises(HostFailedError):
            network.send(0, 1)
        network.recover_host(1)
        network.send(0, 1)
        assert network.total_messages == 1


class TestTraversal:
    def test_local_visit_is_free(self):
        network = Network()
        network.add_hosts(2)
        address = network.store(0, "x")
        traversal = Traversal(network, origin=0)
        assert traversal.visit(address) == "x"
        assert traversal.hops == 0

    def test_remote_visit_charges_one_message(self):
        network = Network()
        network.add_hosts(2)
        address = network.store(1, "x")
        traversal = Traversal(network, origin=0)
        traversal.visit(address)
        assert traversal.hops == 1
        assert traversal.current_host == 1
        assert traversal.path == [0, 1]

    def test_hop_to_same_host_is_free(self):
        network = Network()
        network.add_hosts(2)
        traversal = Traversal(network, origin=0)
        traversal.hop_to(0)
        assert traversal.hops == 0
        traversal.hop_to(1)
        assert traversal.hops == 1

    def test_update_kind_is_recorded(self):
        network = Network()
        network.add_hosts(2)
        traversal = Traversal(network, origin=0, kind=MessageKind.UPDATE)
        traversal.hop_to(1)
        assert network.message_log.count(MessageKind.UPDATE) == 1


class TestMessageLog:
    def test_per_host_counters(self):
        log = MessageLog()
        log.record(0, 1, MessageKind.QUERY)
        log.record(2, 1, MessageKind.QUERY)
        log.record(1, 0, MessageKind.UPDATE)
        assert log.received_by(1) == 2
        assert log.sent_by(1) == 1
        assert log.busiest_hosts(top=1) == [(1, 2)]
        assert len(log) == 3

    def test_counts_survive_without_keeping_messages(self):
        log = MessageLog(keep_messages=False)
        log.record(0, 1, MessageKind.QUERY)
        assert len(log) == 1
        assert log.messages == []

    def test_clear(self):
        log = MessageLog()
        log.record(0, 1, MessageKind.QUERY)
        log.clear()
        assert len(log) == 0
        assert log.received_by(1) == 0


class TestCongestion:
    def test_congestion_includes_base_load(self):
        network = Network()
        network.add_hosts(4)
        report = congestion_report(network, ground_set_size=8)
        assert report.mean_congestion == pytest.approx(2.0)
        assert report.max_congestion == pytest.approx(2.0)
        assert report.imbalance == pytest.approx(1.0)

    def test_congestion_counts_references(self):
        network = Network()
        network.add_hosts(2)
        network.host(0).note_out_reference(3)
        network.host(1).note_in_reference(3)
        report = congestion_report(network, ground_set_size=2)
        assert report.per_host[0] == pytest.approx(3 + 1)
        assert report.per_host[1] == pytest.approx(3 + 1)

    def test_empty_network_report(self):
        network = Network()
        report = congestion_report(network, ground_set_size=0)
        assert report.max_congestion == 0.0
        assert report.as_dict()["hosts"] == 0.0


class TestFailureInjector:
    def test_fail_and_recover(self):
        network = Network()
        network.add_hosts(10)
        injector = FailureInjector(network)
        failed = injector.fail_random(0.3)
        assert len(failed) == 3
        assert injector.failed == set(failed)
        injector.recover_all()
        assert injector.failed == set()

    def test_fraction_validation(self):
        network = Network()
        network.add_hosts(2)
        with pytest.raises(ValueError):
            FailureInjector(network).fail_random(1.5)
