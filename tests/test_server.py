"""The HTTP/JSON service layer: routes, taxonomy, sessions, determinism.

Most tests drive the WSGI app directly (no sockets) through a small
in-process client; the end-to-end tests bind a real ``ThreadingWSGIServer``
on an OS-assigned port and run the seeded hammer against it twice,
asserting the byte-identity property the CI serve-gate enforces.
"""

import io
import json
import threading

import pytest

from repro.api.cluster import Cluster
from repro.api.results import OperationHandle
from repro.errors import ReproError, StructureError
from repro.server import (
    ERROR_HTTP,
    STATUS_HTTP,
    create_app,
    http_status_for,
    http_status_for_error,
    run_hammer,
    serve_background,
)
from repro.server.dashboard import DASHBOARD_HTML, collect_stats
from repro.workloads import uniform_keys

KEYS = uniform_keys(48, seed=7)


def call(app, method, path, body=None, query="", raw=None):
    """Invoke the WSGI app in-process; returns (status, body, headers)."""
    if raw is None:
        raw = json.dumps(body).encode("utf-8") if body is not None else b""
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    captured = {}

    def start_response(status, headers):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(headers)

    text = b"".join(app(environ, start_response)).decode("utf-8")
    if captured["headers"]["Content-Type"].startswith("application/json"):
        return captured["status"], json.loads(text), captured["headers"]
    return captured["status"], text, captured["headers"]


@pytest.fixture()
def app():
    application = create_app(
        initial=[
            {
                "name": "default",
                "structure": "skipweb1d",
                "items": list(KEYS),
                "seed": 7,
            }
        ]
    )
    yield application
    application.manager.close()


class TestRoutesAndTransport:
    def test_healthz(self, app):
        code, body, _ = call(app, "GET", "/healthz")
        assert code == 200
        assert body == {"status": "ok", "clusters": 1}

    def test_dashboard_pages_are_self_contained_html(self, app):
        for path in ("/", "/dashboard"):
            code, text, headers = call(app, "GET", path)
            assert code == 200
            assert headers["Content-Type"].startswith("text/html")
            assert text == DASHBOARD_HTML
        assert "/dashboard/stats" in DASHBOARD_HTML
        assert "<script" in DASHBOARD_HTML and "http://" not in DASHBOARD_HTML

    def test_unknown_route_is_404(self, app):
        code, body, _ = call(app, "GET", "/nope")
        assert code == 404 and body["error"] == "NotFound"
        code, body, _ = call(app, "POST", "/ops/frobnicate", body={"payload": 1})
        assert code == 404

    def test_wrong_method_is_405_with_allow(self, app):
        code, body, headers = call(app, "DELETE", "/batch")
        assert code == 405
        assert headers["Allow"] == "POST"
        code, _, headers = call(app, "PUT", "/clusters")
        assert code == 405
        assert headers["Allow"] == "GET, POST"

    def test_malformed_json_is_400(self, app):
        code, body, _ = call(app, "POST", "/ops/get", raw=b"{not json")
        assert code == 400 and "JSON" in body["message"]
        code, body, _ = call(app, "POST", "/batch", raw=b"[1, 2]")
        assert code == 400 and "object" in body["message"]

    def test_missing_payload_is_400(self, app):
        code, body, _ = call(app, "POST", "/ops/get", body={})
        assert code == 400 and "payload" in body["message"]


class TestClusters:
    def test_list_and_inspect(self, app):
        code, body, _ = call(app, "GET", "/clusters")
        assert code == 200
        assert [c["name"] for c in body["clusters"]] == ["default"]
        code, body, _ = call(app, "GET", "/clusters/default")
        assert code == 200
        assert body["structure"] == "skipweb1d"
        assert body["items_loaded"] == len(KEYS)
        assert body["operations"]["total"] == 0

    def test_create_run_delete(self, app):
        spec = {
            "name": "strings",
            "structure": "skiptrie",
            "items": ["alpha", "beta", "gamma"],
            "seed": 1,
        }
        code, body, _ = call(app, "POST", "/clusters", body=spec)
        assert code == 201 and body["name"] == "strings"
        code, body, _ = call(
            app, "POST", "/ops/get", body={"cluster": "strings", "payload": "beta"}
        )
        assert code == 200 and body["status"] == "ok"
        code, body, _ = call(
            app,
            "POST",
            "/ops/range",
            body={"cluster": "strings", "payload": {"prefix": "a"}},
        )
        assert code == 200 and body["status"] == "ok"
        code, body, _ = call(app, "DELETE", "/clusters/strings")
        assert code == 200 and body["closed"] == "strings"
        code, _, _ = call(app, "GET", "/clusters/strings")
        assert code == 404

    def test_generated_ground_set_and_unknown_keys(self, app):
        spec = {
            "name": "gen",
            "generate": {"kind": "uniform", "count": 32},
            "seed": 5,
        }
        code, body, _ = call(app, "POST", "/clusters", body=spec)
        assert code == 201 and body["items_loaded"] == 32
        key = uniform_keys(32, seed=5)[4]
        code, body, _ = call(app, "POST", "/ops/get", body={"cluster": "gen", "payload": key})
        assert code == 200 and body["status"] == "ok"
        code, body, _ = call(app, "POST", "/clusters", body={"name": "x", "bogus": 1})
        assert code == 400 and "bogus" in body["message"]
        code, body, _ = call(app, "POST", "/clusters", body={"name": "x"})
        assert code == 400 and "items" in body["message"]

    def test_duplicate_name_is_rejected(self, app):
        code, body, _ = call(app, "POST", "/clusters", body={"name": "default", "items": [1.0]})
        assert code == 400 and "already exists" in body["message"]

    def test_unknown_cluster_is_404(self, app):
        code, body, _ = call(app, "POST", "/ops/get", body={"cluster": "ghost", "payload": 1.0})
        assert code == 404 and body["error"] == "UnknownResourceError"


class TestOperations:
    def test_get_known_key_is_ok(self, app):
        code, body, _ = call(app, "POST", "/ops/get", body={"payload": KEYS[3]})
        assert code == 200
        assert body["status"] == "ok"
        assert body["messages"] > 0 and body["rounds"] > 0
        assert body["cluster"] == "default"

    def test_get_via_query_string(self, app):
        code, body, _ = call(app, "GET", "/ops/get", query=f"payload={KEYS[3]!r}")
        assert code == 200 and body["status"] == "ok"

    def test_range_returns_sorted_hits(self, app):
        low, high = sorted(KEYS)[10], sorted(KEYS)[20]
        code, body, _ = call(app, "POST", "/ops/range", body={"payload": [low, high]})
        assert code == 200 and body["status"] == "ok"

    def test_insert_then_delete_round_trip(self, app):
        code, body, _ = call(app, "POST", "/ops/insert", body={"payload": 123.25})
        assert code == 200 and body["status"] == "ok"
        code, body, _ = call(app, "POST", "/ops/delete", body={"payload": 123.25})
        assert code == 200 and body["status"] == "ok"

    def test_bad_range_payload_is_400(self, app):
        code, body, _ = call(app, "POST", "/ops/range", body={"payload": "wat"})
        assert code == 400

    def test_batch_reports_all_handles(self, app):
        operations = [
            {"kind": "get", "payload": KEYS[0]},
            {"kind": "get", "payload": KEYS[1]},
            {"kind": "range", "payload": [KEYS[0], KEYS[0] + 1000.0]},
        ]
        code, body, _ = call(app, "POST", "/batch", body={"operations": operations})
        assert code == 200
        assert body["ops"] == 3
        assert len(body["handles"]) == 3
        assert all(handle["status"] == "ok" for handle in body["handles"])
        assert body["summary"]["messages"] > 0
        code, body, _ = call(app, "POST", "/batch", body={"operations": []})
        assert code == 400


class TestErrorTaxonomy:
    """Satellite: every handle status and typed error -> HTTP code + body."""

    def test_status_table_is_total(self):
        assert set(STATUS_HTTP) == {"ok", "unsupported", "failed", "timed_out", "gave_up"}
        assert STATUS_HTTP["ok"] == 200
        assert STATUS_HTTP["unsupported"] == 422
        assert STATUS_HTTP["failed"] == 409
        assert STATUS_HTTP["timed_out"] == 503
        assert STATUS_HTTP["gave_up"] == 503
        with pytest.raises(ValueError):
            http_status_for("never_heard_of_it")

    @pytest.mark.parametrize("cls,code", ERROR_HTTP)
    def test_every_typed_error_maps(self, cls, code):
        try:
            error = cls("boom")
        except TypeError:
            error = cls.__new__(cls)
        assert http_status_for_error(error) == code

    def test_subclasses_shadow_bases(self):
        # UnsupportedOperationError subclasses the 409 family but must
        # keep its own 422; unknown exception types fall back to 500.
        from repro.errors import UnsupportedOperationError

        assert issubclass(UnsupportedOperationError, ReproError)
        assert http_status_for_error(UnsupportedOperationError("x")) == 422
        assert http_status_for_error(RuntimeError("x")) == 500

    def test_failed_on_the_wire(self, app):
        code, body, _ = call(app, "POST", "/ops/delete", body={"payload": -1.0})
        assert code == 409
        assert body["status"] == "failed"
        assert body["error"] == "UpdateError"
        assert body["error_message"]

    def test_unsupported_on_the_wire(self, app):
        call(
            app,
            "POST",
            "/clusters",
            body={"name": "ring", "structure": "chord", "items": list(KEYS[:16])},
        )
        code, body, _ = call(
            app,
            "POST",
            "/ops/range",
            body={"cluster": "ring", "payload": [KEYS[0], KEYS[1]]},
        )
        assert code == 422
        assert body["status"] == "unsupported"
        assert body["error"] == "UnsupportedOperationError"

    def test_timed_out_on_the_wire(self, app):
        call(
            app,
            "POST",
            "/clusters",
            body={
                "name": "tight",
                "items": list(KEYS),
                "seed": 7,
                "round_budget": 1,
            },
        )
        # KEYS[3] deterministically needs more than one round as the
        # cluster's first operation, so a round_budget of 1 abandons it.
        code, body, _ = call(app, "POST", "/ops/get", body={"cluster": "tight", "payload": KEYS[3]})
        assert code == 503
        assert body["status"] == "timed_out"
        assert body["error"] == "OperationTimedOutError"

    def test_gave_up_on_the_wire(self, app):
        call(
            app,
            "POST",
            "/clusters",
            body={
                "name": "dark",
                "items": list(KEYS),
                "seed": 7,
                "max_retries": 2,
                "faults": {"rules": [{"kind": "drop", "probability": 1.0}]},
            },
        )
        code, body, _ = call(app, "POST", "/ops/get", body={"cluster": "dark", "payload": KEYS[2]})
        assert code == 503
        assert body["status"] == "gave_up"
        assert body["error"] == "FaultInjectedError"

    def test_churn_error_is_409(self, app):
        call(
            app,
            "POST",
            "/clusters",
            body={"name": "tiny", "items": list(KEYS[:8]), "hosts": 2},
        )
        code, body, _ = call(app, "POST", "/churn/leave", body={"cluster": "tiny"})
        assert code == 409
        assert body["error"] == "ChurnError"


class TestSessions:
    def test_lifecycle_and_accounting(self, app):
        code, first, _ = call(app, "POST", "/sessions", body={})
        assert code == 201 and first["session"] == "s1"
        code, second, _ = call(app, "POST", "/sessions", body={})
        assert code == 201 and second["session"] == "s2"

        for key in KEYS[:3]:
            code, body, _ = call(app, "POST", "/ops/get", body={"payload": key, "session": "s1"})
            assert code == 200 and body["session"] == "s1"
        call(
            app,
            "POST",
            "/batch",
            body={
                "operations": [{"kind": "get", "payload": KEYS[5]}],
                "session": "s2",
            },
        )

        code, body, _ = call(app, "GET", "/sessions")
        assert code == 200
        by_id = {row["session"]: row for row in body["sessions"]}
        assert by_id["s1"]["ops"] == 3 and by_id["s1"]["messages"] > 0
        assert by_id["s2"]["ops"] == 1 and by_id["s2"]["batches"] == 1

        code, final = call(app, "DELETE", "/sessions/s1")[:2]
        assert code == 200 and final["open"] is False and final["ops"] == 3
        code, body, _ = call(app, "GET", "/sessions/s1")
        assert code == 404
        # Billing a closed session is a 404, not silent misaccounting.
        code, _, _ = call(app, "POST", "/ops/get", body={"payload": KEYS[0], "session": "s1"})
        assert code == 404

    def test_session_is_bound_to_its_cluster(self, app):
        call(app, "POST", "/clusters", body={"name": "other", "items": [1.0, 2.0]})
        code, body, _ = call(app, "POST", "/sessions", body={"cluster": "other"})
        sid = body["session"]
        code, body, _ = call(app, "POST", "/ops/get", body={"payload": KEYS[0], "session": sid})
        assert code == 400 and "belongs to cluster" in body["message"]

    def test_open_session_on_missing_cluster_is_404(self, app):
        code, _, _ = call(app, "POST", "/sessions", body={"cluster": "ghost"})
        assert code == 404


class TestChurnEndpoints:
    def test_full_lifecycle(self, app):
        code, event, _ = call(app, "POST", "/churn/join", body={})
        assert code == 200 and event["kind"] == "join"
        code, event, _ = call(app, "POST", "/churn/crash", body={})
        assert code == 200 and event["kind"] == "crash"
        crashed = event["host"]
        # A churn crash self-repairs and *removes* the host, so recovering
        # it is a lifecycle conflict — 409 with the typed ChurnError.
        code, body, _ = call(app, "POST", "/churn/recover", body={"host": crashed})
        assert code == 409 and body["error"] == "ChurnError"
        code, event, _ = call(app, "POST", "/churn/leave", body={})
        assert code == 200 and event["kind"] == "leave"
        assert event["repair_messages"] >= 0
        code, report, _ = call(app, "POST", "/churn/repair", body={"hosts": [crashed]})
        assert code == 200 and report["kind"] == "repair"
        code, body, _ = call(app, "POST", "/churn/repair", body={})
        assert code == 400
        code, body, _ = call(app, "POST", "/churn/explode", body={})
        assert code == 404


class TestDashboard:
    def test_stats_shape(self, app):
        operations = [{"kind": "get", "payload": key} for key in KEYS[:4]] + [
            {"kind": "range", "payload": [min(KEYS), max(KEYS)]}
        ]
        call(app, "POST", "/batch", body={"operations": operations})
        code, body, _ = call(app, "GET", "/dashboard/stats")
        assert code == 200
        row = body["clusters"][0]
        assert row["cluster"] == "default"
        assert row["ops"]["total"] == 5
        assert row["ops"]["by_status"] == {"ok": 5}
        assert row["congestion"]["messages"] > 0
        assert row["stats"]["alive_hosts"] > 0
        assert row["ops_per_sec"] >= 0
        code, body, _ = call(app, "GET", "/dashboard/stats", query="cluster=ghost")
        assert code == 404

    def test_congestion_matches_facade_exactly(self):
        """Acceptance: /dashboard/stats == cluster.round_congestion()."""
        items = uniform_keys(40, seed=11)
        operations = [{"kind": "get", "payload": key} for key in items[:12]] + [
            {"kind": "range", "payload": [items[0], items[0] + 250_000.0]}
        ]
        app = create_app(initial=[{"name": "p", "items": list(items), "seed": 11}])
        code, _, _ = call(app, "POST", "/batch", body={"cluster": "p", "operations": operations})
        assert code == 200
        code, stats, _ = call(app, "GET", "/dashboard/stats", query="cluster=p")
        served_congestion = stats["clusters"][0]["congestion"]

        direct = Cluster(structure="skipweb1d", items=list(items), seed=11)
        direct.batch(
            [
                {
                    "kind": op["kind"],
                    "payload": tuple(op["payload"])
                    if isinstance(op["payload"], list)
                    else op["payload"],
                }
                for op in operations
            ]
        )
        expected = direct.round_congestion().as_dict()
        assert served_congestion == expected
        assert expected["messages"] > 0
        app.manager.close()
        direct.close()

    def test_collect_stats_reads_under_the_lock(self, app):
        # Taking the lock in another thread must block collection, not
        # tear it: release and assert the poll then completes.
        served = app.manager.get_cluster("default")
        acquired = served.lock.acquire()
        assert acquired
        result = {}

        def poll():
            result["stats"] = collect_stats(app.manager)

        thread = threading.Thread(target=poll)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()  # blocked on the cluster lock
        served.lock.release()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert result["stats"]["clusters"][0]["cluster"] == "default"


class TestWireFormats:
    def test_handle_to_dict_is_json_ready(self, app):
        code, body, _ = call(app, "POST", "/ops/get", body={"payload": KEYS[0]})
        json.dumps(body)  # must not raise
        assert set(body) >= {
            "index",
            "kind",
            "payload",
            "origin_host",
            "status",
            "messages",
            "rounds",
            "retries",
            "cache_hits",
            "latency",
            "value",
        }

    def test_to_dict_round_trips_without_server(self):
        cluster = Cluster(items=list(KEYS), seed=7)
        handle = cluster.get(KEYS[0])
        data = handle.to_dict()
        json.dumps(data)
        assert data["status"] == "ok" and data["kind"] == "search"
        assert handle.to_dict(include_value=False).get("value") is None
        report = cluster.batch([{"kind": "get", "payload": KEYS[1]}])
        batch_data = report.to_dict()
        json.dumps(batch_data)
        assert batch_data["ops"] == 1
        assert batch_data["handles"][0]["status"] == "ok"
        assert "handles" in report.to_dict(include_values=False)
        cluster.close()

    def test_error_handles_carry_typed_names(self):
        cluster = Cluster(items=list(KEYS), seed=7)
        handle = cluster.delete(-5.0)
        data = handle.to_dict()
        assert data["status"] == "failed"
        assert data["error"] == "UpdateError"
        assert isinstance(data["error_message"], str)
        cluster.close()


class TestClusterClose:
    """Satellite: Cluster.close() is idempotent and thread-safe."""

    def test_double_close_is_a_no_op(self):
        cluster = Cluster(items=list(KEYS[:16]), seed=1)
        cluster.close()
        cluster.close()
        with pytest.raises(StructureError):
            cluster.get(KEYS[0])

    def test_concurrent_close_from_many_threads(self):
        cluster = Cluster(items=list(KEYS[:16]), seed=1)
        errors = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            try:
                cluster.close()
            except Exception as exc:  # noqa: BLE001 - the assertion target
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestEndToEnd:
    def test_real_socket_serve_and_hammer_determinism(self):
        """Acceptance: two seeded hammer runs are byte-identical."""
        app = create_app(
            initial=[
                {
                    "name": "default",
                    "generate": {"kind": "uniform", "count": 48},
                    "seed": 7,
                }
            ]
        )
        server, _thread = serve_background(app, "127.0.0.1", 0)
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            kwargs = dict(cluster="default", sessions=3, ops=8, seed=5, items=48, key_seed=7)
            first = run_hammer(url, **kwargs)
            second = run_hammer(url, **kwargs)
            assert first.all_ok and second.all_ok
            blob_a = json.dumps(first.deterministic_report(), sort_keys=True)
            blob_b = json.dumps(second.deterministic_report(), sort_keys=True)
            assert blob_a == blob_b
            assert first.requests == 3 * 8
            assert first.by_http_status == {200: 24}
            # The wall-clock half really is measured, just not compared.
            assert first.requests_per_sec > 0
            assert first.latency_p99_ms >= first.latency_p50_ms >= 0
        finally:
            server.shutdown()
            server.server_close()
            app.manager.close()

    def test_hammer_rejects_unknown_mix(self):
        with pytest.raises(ValueError):
            run_hammer("http://127.0.0.1:1", mix="chaotic")


class TestOperationHandleDict:
    def test_plain_handle_without_error(self):
        handle = OperationHandle(kind="search", payload=1.5, origin_host=3, status="ok", value=None)
        data = handle.to_dict()
        assert "error" not in data
        assert data["payload"] == 1.5 and data["origin_host"] == 3
