"""Tests for ``repro.net.faults``: seeded chaos plans and self-healing ops.

The subsystem's contract has three legs, each pinned here:

* **Determinism** — every fault decision flows from one seeded rng at
  one delivery choke point, so two identical runs (and a journal
  replay) make byte-identical fault decisions.
* **Resilience** — the executors absorb injected faults: bounded
  retries with linear backoff, round budgets that time operations out,
  and an immediate-mode retry loop; exhaustion is a typed terminal
  status (``gave_up`` / ``timed_out``), never a hang.
* **Recovery** — crash-stopped hosts come back (scheduled
  ``recover_after``, ``ChurnController.recover``,
  ``Cluster.recover_host``), and the durability layer journals all of
  it (with a mismatch guard for tampered chaos schedules).

``faults=None`` identity is pinned separately in
``tests/test_perf_equivalence.py`` (the no-kwarg sweep over all
families).
"""

import json
import os
import random

import pytest

from repro.api import Cluster, FaultPlan, FaultRule, resolve_faults
from repro.engine.sharded import ShardedExecutor
from repro.errors import (
    ChurnError,
    FaultInjectedError,
    OperationTimedOutError,
    StorageError,
)
from repro.net import (
    ChurnController,
    FailureInjector,
    MessageKind,
    Network,
    churn_schedule,
)
from repro.net.churn import EVENT_KINDS
from repro.net.faults import (
    FAULT_NAMES,
    crash,
    delay,
    drop,
    duplicate,
    faults_from_config,
    inject_host_faults,
    outage,
)
from repro.net.network import ledger_mode
from repro.net.topology import ClusteredTopology
from repro.onedim import SkipWeb1D
from repro.storage import decode_record, encode_record
from repro.workloads import uniform_keys

KEYS = uniform_keys(32, seed=7)
QUERIES = uniform_keys(12, seed=8)


class TestRulesAndResolution:
    def test_invalid_rules_are_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("scramble")
        with pytest.raises(ValueError, match="probability"):
            drop(1.5)
        with pytest.raises(ValueError, match="window"):
            drop(0.5, window=(3, 3))
        with pytest.raises(ValueError, match="delay_rounds"):
            delay(0)
        with pytest.raises(ValueError, match="victims"):
            crash(victims=0)
        with pytest.raises(ValueError, match="recover_after"):
            crash(recover_after=0)
        with pytest.raises(ValueError, match="expected FaultRule"):
            FaultPlan(("drop",))

    def test_zero_probability_is_allowed_but_inert(self):
        network = Network(faults=FaultPlan([drop(0.0)], seed=1))
        network.add_hosts(2)
        with network.rounds():
            ticket = network.post(0, 1)
            network.run_round()
        assert ticket.error is None
        assert network.message_log.dropped == 0

    def test_describe_round_trips_through_config(self):
        plan = FaultPlan(
            [
                drop(0.25, src=1, message_kind="query", window=(2, 5)),
                duplicate(0.5, cluster=1),
                delay(3, 0.1, dst=4),
                crash(at_round=2, victims=2, recover_after=4),
                outage(1, at_round=3),
            ],
            seed=9,
        )
        rebuilt = faults_from_config(plan.describe())
        assert rebuilt == plan
        assert rebuilt.describe() == plan.describe()
        assert faults_from_config(None) is None
        with pytest.raises(ValueError, match="unknown fault config kind"):
            faults_from_config({"kind": "mesh"})

    def test_resolve_faults_accepts_every_spelling(self):
        assert resolve_faults(None) is None
        plan = FaultPlan([drop(0.1)], seed=2)
        assert resolve_faults(plan) is plan
        wrapped = resolve_faults(drop(0.1), seed=2)
        assert wrapped.rules == (drop(0.1),) and wrapped.seed == 2
        listed = resolve_faults([drop(0.1), duplicate(0.2)], seed=3)
        assert listed.rules == (drop(0.1), duplicate(0.2))
        for name in FAULT_NAMES:
            preset = resolve_faults(name, seed=4)
            assert isinstance(preset, FaultPlan) and preset.seed == 4
        with pytest.raises(ValueError, match="unknown fault preset"):
            resolve_faults("meteor")
        with pytest.raises(ValueError, match="cannot resolve faults"):
            resolve_faults(3.14)


class TestMessageFaults:
    @staticmethod
    def _network(*rules, seed=0, hosts=3, **kwargs):
        network = Network(trace=True, faults=FaultPlan(rules, seed=seed), **kwargs)
        network.add_hosts(hosts)
        return network

    def test_drop_fails_the_ticket_uncharged(self):
        network = self._network(drop(1.0))
        with network.rounds():
            ticket = network.post(0, 1)
            network.run_round()
        with pytest.raises(FaultInjectedError):
            ticket.result()
        assert network.total_messages == 0
        assert network.message_log.dropped == 1
        assert network.round_reports[-1].injected_drops == 1

    def test_duplicate_charges_the_delivery_twice(self):
        network = self._network(duplicate(1.0))
        with network.rounds():
            ticket = network.post(0, 1)
            network.run_round()
        assert ticket.error is None
        assert network.total_messages == 2
        assert network.message_log.duplicated == 1
        assert network.round_reports[-1].duplicated == 1

    def test_delay_parks_the_ticket_then_delivers_once(self):
        network = self._network(delay(2, 1.0))
        with network.rounds():
            ticket = network.post(0, 1)
            network.run_round()
            assert ticket.deferred
            network.run_round()
            network.run_round()
        assert ticket.error is None
        assert not ticket.deferred
        assert network.total_messages == 1
        assert network.message_log.delayed == 1

    def test_link_and_kind_scoping(self):
        network = self._network(drop(1.0, src=0), drop(1.0, message_kind="update"))
        with network.rounds():
            doomed_src = network.post(0, 1)
            doomed_kind = network.post(1, 2, MessageKind.UPDATE)
            healthy = network.post(1, 2)
            network.run_round()
        with pytest.raises(FaultInjectedError):
            doomed_src.result()
        with pytest.raises(FaultInjectedError):
            doomed_kind.result()
        assert healthy.error is None
        assert network.message_log.dropped == 2

    def test_window_bounds_a_burst(self):
        network = self._network(drop(1.0, window=(1, 2)))
        outcomes = []
        with network.rounds():
            for _ in range(3):
                ticket = network.post(0, 1)
                network.run_round()
                outcomes.append(ticket.error is None)
        assert outcomes == [True, False, True]

    def test_first_matching_rule_wins(self):
        network = self._network(duplicate(1.0, dst=1), drop(1.0))
        with network.rounds():
            duplicated = network.post(0, 1)
            dropped = network.post(0, 2)
            network.run_round()
        assert duplicated.error is None
        with pytest.raises(FaultInjectedError):
            dropped.result()
        assert network.message_log.duplicated == 1
        assert network.message_log.dropped == 1

    def test_immediate_send_drop_raises_and_windows_never_match(self):
        network = self._network(drop(1.0, window=(0, 100)), drop(1.0, dst=2))
        # Burst windows are round-relative, so they cannot match outside
        # a round session; only the un-windowed dst rule fires.
        assert network.send(0, 1, MessageKind.QUERY) is not None
        with pytest.raises(FaultInjectedError):
            network.send(0, 2, MessageKind.QUERY)
        assert network.message_log.dropped == 1

    def test_two_identical_runs_decide_identically(self):
        def run():
            network = self._network(drop(0.4), duplicate(0.3), delay(2, 0.2), seed=11)
            with network.rounds():
                tickets = []
                for step in range(12):
                    tickets.append(network.post(step % 3, (step + 1) % 3))
                    network.run_round()
                network.run_round()
                network.run_round()
            log = network.message_log
            return (
                [ticket.error is None for ticket in tickets],
                network.total_messages,
                (log.dropped, log.duplicated, log.delayed),
            )

        assert run() == run()


class TestHostFaults:
    def test_crash_rule_fails_then_recovers_on_schedule(self):
        plan = FaultPlan([crash(host=2, at_round=0, recover_after=3)], seed=0)
        network = Network(faults=plan)
        network.add_hosts(4)
        with network.rounds():
            network.run_round()
            assert network.failed_hosts == {2}
            network.run_round()
            network.run_round()
            assert network.failed_hosts == {2}
            network.run_round()  # clock 3: the scheduled recovery is due
            assert network.failed_hosts == set()

    def test_scheduled_recovery_survives_a_session_boundary(self):
        # The plan's clock is monotone across round sessions, so a
        # recovery scheduled past the end of one batch fires during the
        # next batch's rounds instead of being lost.
        plan = FaultPlan([crash(host=1, at_round=0, recover_after=3)], seed=0)
        network = Network(faults=plan)
        network.add_hosts(3)
        with network.rounds():
            network.run_round()
        assert network.failed_hosts == {1}
        with network.rounds():
            network.run_round()
            network.run_round()
            network.run_round()
        assert network.failed_hosts == set()

    def test_sampled_crash_never_takes_the_last_host(self):
        plan = FaultPlan([crash(victims=10)], seed=3)
        network = Network(faults=plan)
        network.add_hosts(3)
        with network.rounds():
            network.run_round()
        assert len(network.failed_hosts) == 2
        assert len(network.alive_host_ids()) == 1

    def test_outage_requires_a_topology(self):
        network = Network(faults=FaultPlan([outage(0)], seed=0))
        network.add_hosts(3)
        with pytest.raises(ValueError, match="needs a topology"):
            with network.rounds():
                network.run_round()

    def test_inject_host_faults_skips_unknown_and_already_failed(self):
        network = Network()
        network.add_hosts(3)
        assert inject_host_faults(network, [99, 1]) == [1]
        assert inject_host_faults(network, [1, 2]) == [2]
        assert network.failed_hosts == {1, 2}


class TestClusterResilience:
    @staticmethod
    def _batch(faults, seed=7, **kwargs):
        with ledger_mode():
            cluster = Cluster("skipweb1d", KEYS, seed=seed, faults=faults, **kwargs)
            report = cluster.batch([("search", query) for query in QUERIES])
        return cluster, report

    def test_seeded_chaos_runs_are_byte_identical(self):
        def run():
            cluster, report = self._batch(
                FaultPlan([drop(0.3, message_kind="query"), delay(2, 0.1)], seed=7)
            )
            log = cluster.network.message_log
            return (
                [(h.status, h.messages, h.rounds, h.retries) for h in report],
                report.summary(),
                (log.dropped, log.duplicated, log.delayed),
            )

        first, second = run(), run()
        assert first == second
        assert first[2][0] > 0  # the plan actually dropped deliveries

    def test_retries_absorb_moderate_loss(self):
        cluster, report = self._batch(FaultPlan([drop(0.2, message_kind="query")], seed=7))
        assert report.summary()["completed"] == len(QUERIES)
        assert sum(handle.retries for handle in report) > 0
        assert cluster.network.message_log.dropped > 0
        # The delivered answers match a fault-free run's, message for key.
        _, clean = self._batch(None)
        assert [handle.value for handle in report] == [handle.value for handle in clean]

    def test_total_loss_gives_up_with_bounded_retries(self):
        cluster, report = self._batch(FaultPlan([drop(1.0, message_kind="query")], seed=7))
        summary = report.summary()
        assert summary["gave_up"] == len(QUERIES) == report.gave_up
        for handle in report:
            assert handle.status == "gave_up"
            assert handle.retries == cluster._max_retries
            assert isinstance(handle.error, FaultInjectedError)

    def test_round_budget_times_out_stalled_operations(self):
        _, report = self._batch(FaultPlan([delay(8, 1.0)], seed=7), round_budget=2)
        summary = report.summary()
        assert summary.get("timed_out", 0) == len(QUERIES) == report.timed_out
        for handle in report:
            assert handle.status == "timed_out"
            assert isinstance(handle.error, OperationTimedOutError)

    def test_outage_blacks_out_one_topology_cluster(self):
        with ledger_mode():
            cluster = Cluster(
                "skipweb1d",
                KEYS,
                seed=7,
                topology=ClusteredTopology(clusters=2, inter_cost=5),
                faults=FaultPlan([outage(0, at_round=0)], seed=7),
            )
            cluster.batch([("search", query) for query in QUERIES])
        failed = cluster.network.failed_hosts
        assert failed
        topology = cluster.network.topology
        assert all(topology.cluster_of(host) == 0 for host in failed)
        assert cluster.network.alive_host_ids()

    def test_immediate_mode_retries_then_succeeds(self):
        with ledger_mode():
            cluster = Cluster(
                "skipweb1d",
                KEYS,
                seed=7,
                mode="immediate",
                faults=FaultPlan([drop(0.3, message_kind="query")], seed=7),
            )
            handles = [cluster.nearest(query) for query in QUERIES[:6]]
        assert all(handle.ok for handle in handles)
        assert sum(handle.retries for handle in handles) > 0

    def test_immediate_mode_gives_up_on_total_loss(self):
        with ledger_mode():
            cluster = Cluster(
                "skipweb1d",
                KEYS,
                seed=7,
                mode="immediate",
                max_retries=2,
                faults=FaultPlan([drop(1.0, message_kind="query")], seed=7),
            )
            handle = cluster.nearest(QUERIES[0])
        assert handle.status == "gave_up"
        assert handle.retries == 2
        assert isinstance(handle.error, FaultInjectedError)

    def test_preset_names_resolve_on_the_cluster(self):
        cluster, report = self._batch("lossy")
        assert isinstance(cluster.faults, FaultPlan)
        assert cluster.faults.rules == (drop(0.05, message_kind="query"),)
        assert report.summary()["completed"] == len(QUERIES)

    def test_sharded_executor_declares_serial_fallback(self):
        with ledger_mode():
            chaotic = Cluster(
                "skipweb1d", KEYS, seed=7, workers=2, faults=FaultPlan([drop(0.1)], seed=7)
            )
            assert isinstance(chaotic.executor, ShardedExecutor)
            chaotic.batch([("search", QUERIES[0])])
            assert "fault plan" in chaotic.executor.last_fallback_reason

            budgeted = Cluster("skipweb1d", KEYS, seed=7, workers=2, round_budget=50)
            assert isinstance(budgeted.executor, ShardedExecutor)
            budgeted.batch([("search", QUERIES[0])])
            assert "round budget" in budgeted.executor.last_fallback_reason


class TestChurnRecover:
    @staticmethod
    def _web_and_controller(seed=0):
        from repro.engine import RepairEngine

        web = SkipWeb1D(uniform_keys(24, seed=seed), seed=seed)
        controller = ChurnController(
            web.network, RepairEngine(web), rng=random.Random(seed)
        )
        return web, controller

    def test_recover_brings_a_crash_stopped_host_back(self):
        web, controller = self._web_and_controller()
        victim = web.origin_hosts()[2]
        FailureInjector(web.network).fail([victim])
        event = controller.recover(victim)
        assert event.kind == "recover"
        assert event.host == victim
        assert event.repair_messages == 0 and event.records_moved == 0
        assert victim not in web.network.failed_hosts

    def test_recover_samples_among_failed_hosts(self):
        web, controller = self._web_and_controller(seed=1)
        victims = web.origin_hosts()[1:3]
        FailureInjector(web.network).fail(victims)
        event = controller.recover()
        assert event.host in victims
        assert len(web.network.failed_hosts) == 1

    def test_recover_validates_its_target(self):
        web, controller = self._web_and_controller(seed=2)
        with pytest.raises(ChurnError, match="no failed hosts"):
            controller.recover()
        with pytest.raises(ChurnError, match="not a failed host"):
            controller.recover(web.origin_hosts()[0])

    def test_run_schedule_accepts_recover_events(self):
        web, controller = self._web_and_controller(seed=3)
        FailureInjector(web.network).fail([web.origin_hosts()[4]])
        events = controller.run_schedule(["recover"])
        assert [event.kind for event in events] == ["recover"]

    def test_schedule_draws_are_unchanged_by_the_zero_weight_kind(self):
        # The pre-existing seeded schedules must stay byte-identical:
        # the trailing zero-weight "recover" entry never changes what
        # rng.choices draws.
        legacy = random.Random(4).choices(
            ("join", "leave", "crash"), weights=(2.0, 1.0, 1.0), k=40
        )
        assert churn_schedule(40, random.Random(4)) == legacy
        weighted = churn_schedule(200, random.Random(4), recover_weight=2.0)
        assert "recover" in weighted
        assert set(weighted) <= set(EVENT_KINDS)


class TestFailureInjector:
    def test_fail_never_refails_and_reports_actual_victims(self):
        network = Network()
        network.add_hosts(4)
        injector = FailureInjector(network)
        assert injector.fail([1, 2]) == [1, 2]
        assert injector.fail([2, 3, 99]) == [3]
        assert injector.failed == {1, 2, 3}

    def test_fail_random_fails_at_least_one_host(self):
        network = Network()
        network.add_hosts(5)
        injector = FailureInjector(network, rng=random.Random(0))
        victims = injector.fail_random(0.1)  # 5 * 0.1 truncates to 0
        assert len(victims) == 1
        injector.recover_all()
        assert injector.fail_random(0.0) == []
        with pytest.raises(ValueError, match="fraction"):
            injector.fail_random(1.5)


class TestDurability:
    @staticmethod
    def _store(tmp_path, name="store.jsonl"):
        return str(tmp_path / name)

    def test_faults_and_budget_are_journaled_and_replayed(self, tmp_path):
        store = self._store(tmp_path)
        plan = FaultPlan([crash(at_round=0), drop(0.2, message_kind="query")], seed=5)
        with ledger_mode():
            cluster = Cluster(
                "skipweb1d", KEYS, seed=5, storage=store, faults=plan, round_budget=60
            )
            cluster.batch([("search", query) for query in QUERIES[:6]])
            assert cluster.network.failed_hosts  # the crash rule fired
            event = cluster.recover_host()
            assert event.kind == "recover"
            assert not cluster.network.failed_hosts
            cluster.batch([("search", query) for query in QUERIES[6:]])
            expected = cluster.stats().as_dict()
            expected_dropped = cluster.network.message_log.dropped
            cluster.close()
            recovered = Cluster.recover(store)
        assert recovered.stats().as_dict() == expected
        assert recovered.faults == plan
        assert recovered._round_budget == 60
        assert recovered.network.message_log.dropped == expected_dropped > 0
        recovered.close()

    def test_recover_host_replays_from_a_snapshot_tail(self, tmp_path):
        store = self._store(tmp_path)
        plan = FaultPlan([crash(at_round=0)], seed=5)
        with ledger_mode():
            cluster = Cluster(
                "skipweb1d",
                KEYS,
                seed=5,
                storage=store,
                faults=plan,
                snapshot_every=1,
            )
            cluster.batch([("search", QUERIES[0])])
            cluster.save()  # snapshot covers the batch; the tail is churn
            cluster.recover_host()
            expected = cluster.stats().as_dict()
            cluster.close()
            recovered = Cluster.recover(store)
        assert recovered.stats().as_dict() == expected
        assert not recovered.network.failed_hosts
        recovered.close()

    def test_recover_refuses_a_mismatched_chaos_schedule(self, tmp_path):
        store = self._store(tmp_path)
        with ledger_mode():
            cluster = Cluster(
                "skipweb1d",
                KEYS,
                seed=5,
                storage=store,
                faults=FaultPlan([drop(0.1)], seed=5),
                snapshot_every=1,
            )
            cluster.batch([("search", QUERIES[0])])
            cluster.save()
            cluster.close()
        # Rewrite the journal's create record to claim a different plan
        # (re-encoded, so its checksum stays valid): the snapshot and
        # the journal now disagree about the chaos schedule.
        log = os.path.join(store, "log.jsonl")
        with open(log) as fh:
            lines = fh.readlines()
        record = decode_record(json.loads(lines[0]), expected_seq=0)
        assert record.kind == "create"
        payload = dict(record.payload)
        payload["faults"] = FaultPlan([duplicate(0.9)], seed=99).describe()
        tampered = type(record)(seq=0, kind="create", payload=payload)
        lines[0] = json.dumps(encode_record(tampered)) + "\n"
        with open(log, "w") as fh:
            fh.writelines(lines)
        with pytest.raises(StorageError, match="fault-plan mismatch"):
            Cluster.recover(store)
