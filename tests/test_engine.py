"""Tests for the batched execution engine (steps, protocol, executor)."""

import random

import pytest

from repro.baselines import ChordDHT, SkipGraph
from repro.core.ranges import Interval
from repro.engine import (
    BatchExecutor,
    DistributedStructure,
    HopTo,
    Operation,
    Resolution,
    StepCursor,
    Visit,
    local_steps,
    run_immediate,
)
from repro.errors import (
    ChurnError,
    HostFailedError,
    QueryError,
    StructureError,
    UpdateError,
)
from repro.net import MessageKind, Network
from repro.onedim import BucketSkipWeb1D, SkipWeb1D
from repro.spatial.geometry import HyperCube
from repro.spatial.skip_quadtree import SkipQuadtreeWeb
from repro.strings import LOWERCASE
from repro.strings.skip_trie import SkipTrieWeb
from repro.workloads import uniform_keys, uniform_points
from repro.workloads.strings import random_strings


class TestSteps:
    def test_run_immediate_charges_cross_host_visits(self):
        network = Network()
        network.add_hosts(3)
        local = network.store(0, "local")
        remote = network.store(1, "remote")

        def walk():
            cursor = StepCursor(0)
            first = yield from cursor.visit(local)
            second = yield from cursor.visit(remote)
            yield from cursor.hop_to(2)
            return (first, second, cursor.hops, cursor.path)

        first, second, hops, path = run_immediate(network, walk(), 0)
        assert (first, second) == ("local", "remote")
        assert hops == 2
        assert path == [0, 1, 2]
        assert network.total_messages == 2

    def test_cursor_does_not_move_on_uncharged_resolution(self):
        """A cache-style resolution leaves the cursor (and cost) in place."""
        cursor = StepCursor(0)
        gen = cursor.visit(None)
        next(gen)
        with pytest.raises(StopIteration):
            gen.send(Resolution(value="copy", host=0, charged=False))
        assert cursor.hops == 0
        assert cursor.current_host == 0

    def test_effects_expose_targets(self):
        network = Network()
        network.add_hosts(2)
        address = network.store(1, "x")
        assert Visit(address).address.host == 1
        assert HopTo(1).host == 1


class TestProtocolConformance:
    def test_all_structures_implement_protocol(self):
        keys = uniform_keys(24, seed=0)
        web = SkipWeb1D(keys, seed=0)
        structures = [
            web,
            web.web,
            BucketSkipWeb1D(keys, memory_size=8, seed=0),
            SkipQuadtreeWeb(
                uniform_points(16, dimension=2, seed=0),
                bounding_cube=HyperCube((0.0, 0.0), 1.0),
            ),
            SkipTrieWeb(random_strings(16, alphabet=LOWERCASE, seed=0), alphabet=LOWERCASE),
            SkipGraph(keys, seed=0),
            ChordDHT(keys),
        ]
        for structure in structures:
            assert isinstance(structure, DistributedStructure), structure
            assert structure.origin_hosts()
            # Every implementation's seed_roots is local routing state:
            # drivable as a step generator and free of messages.
            origin = structure.origin_hosts()[0]
            before = structure.network.total_messages
            roots = run_immediate(structure.network, structure.seed_roots(origin), origin)
            assert roots is not None
            assert structure.network.total_messages == before

    def test_seed_roots_are_local_and_free(self):
        keys = uniform_keys(16, seed=1)
        web = SkipWeb1D(keys, seed=1)
        origin = web.origin_hosts()[0]
        before = web.network.total_messages
        roots = run_immediate(web.network, web.seed_roots(origin), origin)
        assert roots  # (unit, address) pairs
        assert web.network.total_messages == before

    def test_search_steps_match_eager_api(self):
        keys = uniform_keys(48, seed=2)
        web = SkipWeb1D(keys, seed=2)
        query = 123456.789
        stepped = run_immediate(
            web.network, web.search_steps(query, origin_host=3), 3, kind=MessageKind.QUERY
        )
        direct = web.nearest(query, origin_host=3)
        assert stepped.answer.nearest == direct.answer.nearest
        assert stepped.messages == direct.messages
        assert stepped.hosts_visited == direct.hosts_visited


class TestBatchExecutor:
    def test_mixed_batch_completes_and_matches_immediate(self):
        rng = random.Random(0)
        keys = uniform_keys(64, seed=3)
        web = SkipWeb1D(keys, seed=3)
        queries = [rng.uniform(0, 1e6) for _ in range(30)]
        inserts = uniform_keys(6, seed=4, low=2_000_000, high=3_000_000)
        operations = [Operation("search", q) for q in queries]
        operations += [Operation("insert", k) for k in inserts]
        result = BatchExecutor(web).run(operations)
        assert result.failed == 0
        assert result.rounds > 0
        assert result.messages > 0
        assert result.max_round_congestion >= 1
        web.web.validate()
        for key in inserts:
            assert web.contains(key)
        # Per-op accounting adds up to the batch total.
        assert sum(outcome.messages for outcome in result.outcomes) == result.messages

    def test_batch_runs_three_structure_types(self):
        rng = random.Random(1)
        n = 32
        webs = [
            SkipWeb1D(uniform_keys(n, seed=5), seed=5),
            SkipQuadtreeWeb(
                uniform_points(n, dimension=2, seed=5),
                bounding_cube=HyperCube((0.0, 0.0), 1.0),
                seed=5,
            ),
            SkipTrieWeb(random_strings(n, alphabet=LOWERCASE, seed=5), alphabet=LOWERCASE, seed=5),
        ]
        payloads = [
            lambda: rng.uniform(0, 1e6),
            lambda: (rng.random(), rng.random()),
            lambda: "zz",
        ]
        for web, payload in zip(webs, payloads):
            result = BatchExecutor(web).run([Operation("search", payload()) for _ in range(20)])
            assert result.failed == 0
            assert result.ops_per_round > 1.0

    def test_host_failure_mid_batch_is_isolated(self):
        """A host failing mid-batch fails only the ops that touch it."""
        keys = uniform_keys(48, seed=6)
        web = SkipWeb1D(keys, seed=6)
        rng = random.Random(6)
        operations = [Operation("search", rng.uniform(0, 1e6)) for _ in range(40)]
        victim = web.origin_hosts()[len(web.origin_hosts()) // 2]

        def kill_after_first_round(report):
            if report.index == 0:
                web.network.fail_host(victim)

        executor = BatchExecutor(web, on_round=kill_after_first_round)
        result = executor.run(operations)
        assert len(result.outcomes) == len(operations)
        failures = [outcome for outcome in result.outcomes if not outcome.ok]
        assert failures, "some operation should have touched the failed host"
        assert all(isinstance(outcome.error, HostFailedError) for outcome in failures)
        # Every other in-flight operation still produced a correct answer.
        web.network.recover_host(victim)
        for outcome in result.outcomes:
            if outcome.ok:
                direct = web.nearest(outcome.operation.payload, origin_host=outcome.origin_host)
                assert direct.answer.nearest == outcome.value.answer.nearest
        with pytest.raises(HostFailedError):
            failures[0].result()
        web.web.validate()

    def test_update_interrupted_by_failure_leaves_structure_consistent(self):
        """Updates mutate atomically before billing: a host failing mid-batch
        can cost an insert its acks, never leave a half-updated skip-web."""
        keys = uniform_keys(48, seed=12)
        web = SkipWeb1D(keys, seed=12)
        rng = random.Random(12)
        inserts = uniform_keys(12, seed=13, low=2_000_000, high=3_000_000)
        operations = [Operation("insert", k) for k in inserts]
        operations += [Operation("search", rng.uniform(0, 1e6)) for _ in range(12)]
        victims = web.origin_hosts()[5:8]

        def kill_early(report):
            if report.index == 2:
                for victim in victims:
                    web.network.fail_host(victim)

        result = BatchExecutor(web, on_round=kill_early).run(operations)
        for victim in victims:
            web.network.recover_host(victim)
        # Regardless of which operations failed, the structure is whole.
        web.web.validate()
        for outcome in result.outcomes:
            if outcome.operation.kind == "insert" and outcome.ok:
                assert web.contains(outcome.operation.payload)

    def test_duplicate_insert_is_recorded_not_raised(self):
        keys = uniform_keys(16, seed=7)
        web = SkipWeb1D(keys, seed=7)
        result = BatchExecutor(web).run([Operation("insert", keys[0])])
        assert result.failed == 1
        assert isinstance(result.outcomes[0].error, UpdateError)

    def test_bucket_skipgraph_batched_matches_eager(self):
        """The protocol path must use the bucket-local finish, not the base one."""
        from repro.baselines import BucketSkipGraph

        keys = uniform_keys(64, seed=1)
        structure = BucketSkipGraph(keys, seed=1)
        rng = random.Random(1)
        queries = [rng.uniform(0, 1e6) for _ in range(15)] + [123456.0]
        result = BatchExecutor(structure).run([Operation("search", q) for q in queries])
        assert result.failed == 0
        for outcome in result.outcomes:
            eager = structure.search(outcome.operation.payload)
            batched = outcome.value
            assert (eager.predecessor, eager.successor, eager.nearest) == (
                batched.predecessor,
                batched.successor,
                batched.nearest,
            )

    def test_chord_searches_batch_but_updates_fail(self):
        keys = uniform_keys(32, seed=8)
        chord = ChordDHT(keys)
        rng = random.Random(8)
        result = BatchExecutor(chord).run(
            [Operation("search", rng.choice(keys)) for _ in range(16)]
        )
        assert result.failed == 0
        assert all(outcome.value.found for outcome in result.outcomes)
        update = BatchExecutor(chord).run([Operation("insert", 1.0)])
        assert update.failed == 1
        assert isinstance(update.outcomes[0].error, UpdateError)

    def test_route_cache_warms_across_batches(self):
        rng = random.Random(9)
        keys = uniform_keys(64, seed=9)
        web = SkipWeb1D(keys, seed=9)
        executor = BatchExecutor(web, route_cache=True)
        operations = [
            Operation("search", rng.uniform(0, 1e6), origin_host=2) for _ in range(15)
        ]
        cold = executor.run(operations)
        warm = executor.run(operations)
        assert cold.cache_hits == 0
        assert warm.cache_hits > 0
        assert warm.messages < cold.messages
        # Cached answers stay correct.
        for outcome in warm.outcomes:
            direct = web.nearest(outcome.operation.payload, origin_host=2)
            assert direct.answer.nearest == outcome.value.answer.nearest

    def test_update_invalidates_route_cache(self):
        rng = random.Random(10)
        keys = uniform_keys(32, seed=10)
        web = SkipWeb1D(keys, seed=10)
        executor = BatchExecutor(web, route_cache=True)
        operations = [
            Operation("search", rng.uniform(0, 1e6), origin_host=1) for _ in range(10)
        ]
        executor.run(operations)
        executor.run([Operation("insert", 2_500_000.0)])
        after = executor.run(operations)
        # First search batch after the insert must re-fetch (cache cleared).
        assert after.cache_misses > 0
        web.web.validate()

    def test_failure_injection_invalidates_route_cache(self):
        """Failing or recovering hosts mid-session drops memoized routes.

        A cached top-level record is served without touching the network,
        so without epoch-based invalidation a batch after a failure would
        happily route searches via records on dead hosts.
        """
        from repro.net import FailureInjector

        rng = random.Random(13)
        keys = uniform_keys(32, seed=13)
        web = SkipWeb1D(keys, seed=13)
        executor = BatchExecutor(web, route_cache=True)
        operations = [
            Operation("search", rng.uniform(0, 1e6), origin_host=1) for _ in range(10)
        ]
        executor.run(operations)
        warm = executor.run(operations)
        assert warm.cache_hits > 0 and warm.cache_misses == 0

        injector = FailureInjector(web.network)
        victim = web.origin_hosts()[-1]
        injector.fail([victim])
        injector.recover_all()
        # Membership changed (fail + recover): every memoized route is
        # suspect, so the next batch must re-fetch instead of hitting.
        after = executor.run(operations)
        assert after.cache_misses > 0

    def test_mid_batch_failure_invalidates_route_cache(self):
        """Epoch sync also fires inside a batch, via the on_round hook."""
        rng = random.Random(14)
        keys = uniform_keys(32, seed=14)
        web = SkipWeb1D(keys, seed=14)

        def flicker(report):
            if report.index == 0:
                victim = web.origin_hosts()[-1]
                web.network.fail_host(victim)
                web.network.recover_host(victim)

        executor = BatchExecutor(web, route_cache=True, on_round=flicker)
        operations = [
            Operation("search", rng.uniform(0, 1e6), origin_host=2) for _ in range(8)
        ]
        executor.run(operations)
        warm = executor.run(operations)
        # The flicker during each run keeps clearing the cache, so warm
        # batches cannot blindly reuse pre-failure routes.
        assert warm.cache_misses > 0

    def test_unknown_operation_kind_rejected(self):
        web = SkipWeb1D(uniform_keys(8, seed=11), seed=11)
        with pytest.raises(ValueError):
            BatchExecutor(web).run([Operation("rename", 1.0)])

    def test_batch_skips_failed_origin_hosts(self):
        """Churn-then-batch: operations never originate on a dead host."""
        keys = uniform_keys(32, seed=15)
        web = SkipWeb1D(keys, seed=15)
        victim = web.origin_hosts()[3]
        web.network.fail_host(victim)
        rng = random.Random(15)
        operations = [Operation("search", rng.uniform(0, 1e6)) for _ in range(20)]
        result = BatchExecutor(web).run(operations)
        assert all(outcome.origin_host != victim for outcome in result.outcomes)
        web.network.recover_host(victim)

    def test_batch_raises_cleanly_when_no_origin_survives(self):
        keys = uniform_keys(8, seed=16)
        web = SkipWeb1D(keys, seed=16)
        for host in web.origin_hosts():
            web.network.fail_host(host)
        with pytest.raises(QueryError):
            BatchExecutor(web).run([Operation("search", 1.0)])


class _ForkingStructure:
    """Minimal DistributedStructure whose range op forks two fixed sub-walks.

    Host 0 is the origin; the left sub-walk visits records on hosts 1
    then 2, the right sub-walk visits hosts 3 then 4 — four cross-host
    messages total, deterministic, with per-attempt poisoning hooks so
    retry semantics can be asserted exactly.
    """

    def __init__(self, fail_first_attempts: int = 0) -> None:
        self.network = Network()
        self.network.add_hosts(5)
        self.left = [self.network.store(1, "L1"), self.network.store(2, "L2")]
        self.right = [self.network.store(3, "R1"), self.network.store(4, "R2")]
        self.fail_first_attempts = fail_first_attempts
        self.range_attempts = 0
        self.left_walk_starts = 0

    def origin_hosts(self):
        return [0]

    def seed_roots(self, origin_host):
        return local_steps(None)

    def search_steps(self, query, origin_host=None):
        cursor = StepCursor(0 if origin_host is None else origin_host)
        value = yield from cursor.visit(self.left[0])
        return (value, cursor.hops)

    def insert_steps(self, item, origin_host=None):
        raise UpdateError("static")

    def delete_steps(self, item, origin_host=None):
        raise UpdateError("static")

    def migrate_host(self, host_id, targets=None, fraction=1.0):
        raise ChurnError("static")

    def repair(self, host_ids):
        raise ChurnError("static")

    def _walk(self, addresses, start, poison=False, count_left=False):
        if count_left:
            self.left_walk_starts += 1
        cursor = StepCursor(start)
        values = []
        for index, address in enumerate(addresses):
            if poison and index == 1:
                raise StructureError("record changed under the walk")
            values.append((yield from cursor.visit(address)))
        return (tuple(values), cursor.hops)

    def range_steps(self, query_range, origin_host=None):
        self.range_attempts += 1
        origin = 0 if origin_host is None else origin_host
        poison = self.range_attempts <= self.fail_first_attempts
        cursor = StepCursor(origin)
        reports = yield from cursor.fork(
            [
                self._walk(self.left, origin, count_left=True),
                self._walk(self.right, origin, poison=poison),
            ]
        )
        values = tuple(value for branch_values, _hops in reports for value in branch_values)
        return (values, cursor.hops + sum(hops for _values, hops in reports))


class TestForkedCursors:
    """Forked sub-walk semantics: billing, failure isolation, retry restarts."""

    def test_fork_billing_identical_immediate_vs_batched(self):
        imm = _ForkingStructure()
        with imm.network.measure() as stats:
            values, billed = run_immediate(imm.network, imm.range_steps(None), 0)
        assert values == ("L1", "L2", "R1", "R2")
        assert billed == 4
        assert stats.messages == 4

        batched = _ForkingStructure()
        with batched.network.measure() as batch_stats:
            result = BatchExecutor(batched).run([Operation("range", None)])
        outcome = result.outcomes[0]
        assert outcome.ok
        assert outcome.value[0] == ("L1", "L2", "R1", "R2")
        assert outcome.messages == 4
        assert batch_stats.messages == 4
        # Fan-out of 2: both sub-walks cross one host per round, so the
        # four messages land in two delivery rounds.
        assert result.rounds <= 3

    def test_range_totals_match_on_real_structures(self):
        rng = random.Random(17)
        keys = uniform_keys(48, seed=17)
        web = SkipWeb1D(keys, seed=17)
        sorted_keys = sorted(set(float(key) for key in keys))
        queries = []
        for _ in range(6):
            start = rng.randrange(0, len(sorted_keys) - 6)
            queries.append(Interval(sorted_keys[start], sorted_keys[start + 5]))
        origins = [web.origin_hosts()[index % 5] for index in range(len(queries))]
        immediate = [
            run_immediate(web.network, web.range_steps(query, origin), origin)
            for query, origin in zip(queries, origins)
        ]
        batch = BatchExecutor(web).run(
            [
                Operation("range", query, origin_host=origin)
                for query, origin in zip(queries, origins)
            ]
        )
        assert batch.failed == 0
        for outcome, reference in zip(batch.outcomes, immediate):
            assert outcome.messages == reference.messages
            assert outcome.value.matches == reference.matches
        assert batch.messages == sum(result.messages for result in immediate)

    def test_branch_host_failure_fails_only_that_operation(self):
        structure = _ForkingStructure()

        def kill_right_tail(report):
            if report.index == 0:
                structure.network.fail_host(4)

        executor = BatchExecutor(structure, on_round=kill_right_tail)
        result = executor.run([Operation("range", None), Operation("search", None)])
        range_outcome, search_outcome = result.outcomes
        assert not range_outcome.ok
        assert isinstance(range_outcome.error, HostFailedError)
        # The concurrent search never touches host 4 and is undisturbed.
        assert search_outcome.ok
        assert search_outcome.value[0] == "L1"

    def test_retry_after_concurrent_update_restarts_all_subwalks(self):
        structure = _ForkingStructure(fail_first_attempts=1)
        result = BatchExecutor(structure).run([Operation("range", None)])
        outcome = result.outcomes[0]
        assert outcome.ok
        assert outcome.value[0] == ("L1", "L2", "R1", "R2")
        assert outcome.retries == 1
        # The poisoned right walk failed once, and the retry re-ran the
        # *left* walk too: a fork restarts from scratch, never partially.
        assert structure.range_attempts == 2
        assert structure.left_walk_starts == 2
        # The aborted first attempt's messages stay billed to the op —
        # including the sibling walk's deliveries in flight at the abort —
        # so per-op accounting still adds up to the network-measured total.
        assert outcome.messages > 4
        assert outcome.messages == result.messages

    def test_retry_exhaustion_records_error(self):
        structure = _ForkingStructure(fail_first_attempts=100)
        result = BatchExecutor(structure, max_retries=2).run([Operation("range", None)])
        outcome = result.outcomes[0]
        assert not outcome.ok
        assert isinstance(outcome.error, StructureError)
        assert outcome.retries == 2

    def test_nested_fork_raises_type_error_under_both_drivers(self):
        """A branch that forks again is a programming error, not an outcome.

        Branches are flat walks by contract; both the immediate driver
        and the batch executor's compiled dispatch must refuse a nested
        ``Fork`` with ``TypeError`` instead of mis-billing it.
        """

        class _NestedForkStructure(_ForkingStructure):
            def _forking_branch(self, origin):
                cursor = StepCursor(origin)
                reports = yield from cursor.fork([self._walk(self.left, origin)])
                return reports

            def range_steps(self, query_range, origin_host=None):
                origin = 0 if origin_host is None else origin_host
                cursor = StepCursor(origin)
                reports = yield from cursor.fork(
                    [self._forking_branch(origin), self._walk(self.right, origin)]
                )
                return reports

        immediate = _NestedForkStructure()
        with pytest.raises(TypeError, match="nested Fork"):
            run_immediate(immediate.network, immediate.range_steps(None), 0)

        batched = _NestedForkStructure()
        with pytest.raises(TypeError, match="nested Fork"):
            BatchExecutor(batched).run([Operation("range", None)])
