"""Tests for segments, trapezoidal maps and trapezoid skip-webs."""

import random

import pytest

from repro.errors import QueryError, StructureError
from repro.planar import Segment, SkipTrapezoidWeb, TrapezoidalMap
from repro.planar.segments import bounding_box, segments_in_general_position
from repro.planar.skip_trapezoid import TrapezoidalMapStructure
from repro.workloads import city_map_segments, non_crossing_segments, x_disjoint_segments


def brute_force_region(segments, box, point):
    """Identify the containing face by the segments directly above and below."""
    x, y = point
    above = None
    below = None
    for segment in segments:
        if segment.x_min <= x <= segment.x_max:
            sy = segment.y_at(x)
            if sy >= y and (above is None or sy < above.y_at(x)):
                above = segment
            if sy <= y and (below is None or sy > below.y_at(x)):
                below = segment
    return above, below


class TestSegments:
    def test_of_normalises_order(self):
        segment = Segment.of((5.0, 1.0), (2.0, 3.0))
        assert segment.left[0] < segment.right[0]

    def test_vertical_rejected(self):
        with pytest.raises(ValueError):
            Segment.of((1.0, 0.0), (1.0, 5.0))

    def test_y_at_interpolates(self):
        segment = Segment.of((0.0, 0.0), (10.0, 10.0))
        assert segment.y_at(5.0) == pytest.approx(5.0)

    def test_crosses_detects_proper_intersection(self):
        first = Segment.of((0.0, 0.0), (10.0, 10.0))
        second = Segment.of((0.5, 9.0), (9.0, 0.5))
        third = Segment.of((0.25, 5.0), (4.0, 9.0))
        assert first.crosses(second)
        assert not first.crosses(third) or not third.crosses(first) is None

    def test_general_position_rejects_crossings(self):
        first = Segment.of((0.0, 0.0), (10.0, 10.0))
        second = Segment.of((1.0, 9.0), (9.0, 1.0))
        with pytest.raises(StructureError):
            segments_in_general_position([first, second])

    def test_general_position_rejects_shared_x(self):
        first = Segment.of((0.0, 0.0), (5.0, 1.0))
        second = Segment.of((0.0, 3.0), (6.0, 4.0))
        with pytest.raises(StructureError):
            segments_in_general_position([first, second])

    def test_bounding_box_encloses_everything(self):
        segments = x_disjoint_segments(10, seed=1)
        x_min, x_max, y_min, y_max = bounding_box(segments)
        for segment in segments:
            assert x_min <= segment.x_min and segment.x_max <= x_max
            assert y_min <= min(segment.left[1], segment.right[1])
            assert max(segment.left[1], segment.right[1]) <= y_max


class TestWorkloadGenerators:
    @pytest.mark.parametrize("generator", [x_disjoint_segments, non_crossing_segments])
    def test_generated_segments_are_valid(self, generator):
        segments = generator(25, seed=3)
        assert len(segments) == 25
        segments_in_general_position(segments)

    def test_city_map_is_valid(self):
        segments = city_map_segments(seed=2)
        assert segments
        segments_in_general_position(segments)


class TestTrapezoidalMap:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_invariants(self, seed):
        segments = non_crossing_segments(25, seed=seed)
        trap_map = TrapezoidalMap(segments)
        trap_map.validate()
        assert trap_map.trapezoid_count() <= 3 * len(segments) + 1

    def test_single_segment_map(self):
        segment = Segment.of((0.0, 0.0), (10.0, 1.0))
        trap_map = TrapezoidalMap([segment])
        trap_map.validate()
        # One segment yields 4 trapezoids (left, above, below, right).
        assert trap_map.trapezoid_count() == 4

    def test_empty_map_is_single_trapezoid(self):
        trap_map = TrapezoidalMap([], box=(0.0, 10.0, 0.0, 10.0))
        assert trap_map.trapezoid_count() == 1
        assert trap_map.locate((5.0, 5.0)).top is None

    def test_locate_agrees_with_bruteforce_boundaries(self):
        rng = random.Random(4)
        segments = non_crossing_segments(20, seed=4)
        box = bounding_box(segments)
        trap_map = TrapezoidalMap(segments, box=box)
        for _ in range(30):
            point = (rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3]))
            trapezoid = trap_map.locate(point)
            above, below = brute_force_region(segments, box, point)
            assert trapezoid.top == above
            assert trapezoid.bottom == below

    def test_locate_outside_box_raises(self):
        trap_map = TrapezoidalMap([], box=(0.0, 1.0, 0.0, 1.0))
        with pytest.raises(QueryError):
            trap_map.locate((5.0, 5.0))

    def test_neighbors_share_walls(self):
        segments = non_crossing_segments(15, seed=5)
        trap_map = TrapezoidalMap(segments)
        for trapezoid in trap_map.trapezoids:
            for neighbor in trap_map.neighbors(trapezoid):
                assert (
                    abs(trapezoid.x_right - neighbor.x_left) < 1e-9
                    or abs(trapezoid.x_left - neighbor.x_right) < 1e-9
                )

    def test_conflicting_trapezoids_lemma5_shape(self):
        segments = non_crossing_segments(30, seed=6)
        box = bounding_box(segments)
        full = TrapezoidalMap(segments, box=box)
        half = TrapezoidalMap(segments[::2], box=box)
        rng = random.Random(7)
        counts = []
        for _ in range(20):
            point = (rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3]))
            trapezoid = half.locate(point)
            counts.append(len(full.conflicting_trapezoids(trapezoid)))
        assert sum(counts) / len(counts) <= 12


@pytest.fixture(scope="module")
def trapezoid_web():
    segments = non_crossing_segments(30, seed=40)
    box = bounding_box(segments)
    return segments, box, SkipTrapezoidWeb(segments, box=box, seed=11)


class TestSkipTrapezoidWeb:
    def test_validate(self, trapezoid_web):
        _segments, _box, web = trapezoid_web
        web.web.validate()

    def test_point_location_matches_local_map(self, trapezoid_web):
        _segments, box, web = trapezoid_web
        rng = random.Random(8)
        for _ in range(20):
            point = (rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3]))
            located = web.locate(point).answer.trapezoid
            reference = web.level0_map.locate(point)
            assert located.key() == reference.key() or located.contains(point)

    def test_messages_logarithmic(self, trapezoid_web):
        _segments, box, web = trapezoid_web
        rng = random.Random(9)
        costs = [
            web.locate((rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3]))).messages
            for _ in range(20)
        ]
        assert max(costs) <= 30

    def test_structure_adapter_validates(self, trapezoid_web):
        segments, box, _web = trapezoid_web
        structure = TrapezoidalMapStructure(segments, box)
        structure.validate()
        assert len(structure.items) == len(segments)

    def test_build_requires_box(self):
        with pytest.raises(StructureError):
            TrapezoidalMapStructure.build([Segment.of((0.0, 0.0), (1.0, 1.0))])

    def test_answer_reports_bounding_segments(self, trapezoid_web):
        segments, box, web = trapezoid_web
        rng = random.Random(10)
        point = (rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3]))
        answer = web.locate(point).answer
        above, below = brute_force_region(segments, box, point)
        assert answer.above_segment == above
        assert answer.below_segment == below

    def test_insert_and_delete_segment(self):
        segments = non_crossing_segments(12, seed=41)
        box = bounding_box(segments)
        # Leave room inside the box for a new non-crossing segment.
        web = SkipTrapezoidWeb(
            segments, box=(box[0] - 5, box[1] + 5, box[2] - 5, box[3] + 5), seed=3
        )
        new_segment = Segment.of((box[1] + 1.0, box[2]), (box[1] + 4.0, box[2] + 1.0))
        web.insert(new_segment)
        assert new_segment in web.segments
        web.delete(segments[0])
        assert segments[0] not in web.segments
        web.web.validate()


class TestWindowReporting:
    """Segment-stabbing window reporting on the trapezoid skip-web."""

    def test_window_report_matches_brute_force(self):
        from repro.planar.skip_trapezoid import Window

        rng = random.Random(51)
        segments = non_crossing_segments(14, seed=51)
        box = bounding_box(segments)
        web = SkipTrapezoidWeb(segments, box=box, seed=51)
        trapezoids = web.level0_map.trapezoids
        for _ in range(5):
            center = rng.choice(trapezoids).center
            half_x = 0.2 * (box[1] - box[0])
            half_y = 0.25 * (box[3] - box[2])
            window = Window(
                max(box[0], center[0] - half_x),
                min(box[1], center[0] + half_x),
                max(box[2], center[1] - half_y),
                min(box[3], center[1] + half_y),
            )
            expected = {t.key() for t in trapezoids if window.intersects(t)}
            result = web.window_report(window)
            assert {t.key() for t in result.matches} == expected
            assert result.messages == result.descent_messages + result.report_messages
            stabbed = web.stabbed_segments(result.matches)
            assert all(segment in segments for segment in stabbed)

    def test_window_accepts_tuples_and_validates(self):
        from repro.planar.skip_trapezoid import Window

        segments = non_crossing_segments(8, seed=52)
        box = bounding_box(segments)
        web = SkipTrapezoidWeb(segments, box=box, seed=52)
        result = web.window_report((box[0], box[1], box[2], box[3]))
        assert result.count == len(web.level0_map.trapezoids)
        with pytest.raises(ValueError):
            Window(1.0, 0.0, 0.0, 1.0)
