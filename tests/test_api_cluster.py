"""Tests for the ``repro.api`` façade: registry, Cluster, handles, shims."""

import random
import warnings

import pytest

from repro.api import (
    BatchReport,
    Cluster,
    Operation,
    available_structures,
    resolve_structure,
    structure_specs,
)
from repro.api.compat import build_churn_controller, build_executor, build_structure
from repro.baselines import ChordDHT, DistributedOrderedStructure, SkipGraph
from repro.engine import BatchExecutor, DistributedStructure
from repro.errors import StructureError
from repro.onedim import BucketSkipWeb1D, SkipWeb1D
from repro.planar import SkipTrapezoidWeb
from repro.spatial import HyperCube, SkipQuadtreeWeb
from repro.strings import DNA, SkipTrieWeb
from repro.workloads import dna_reads, non_crossing_segments, uniform_keys, uniform_points

#: Every registered family with (constructor items, extra Cluster kwargs,
#: a search payload, a range payload, and a fresh item to insert).
KEYS = uniform_keys(24, seed=3)
POINTS = uniform_points(16, dimension=2, seed=3)
READS = dna_reads(16, seed=3)
SEGMENTS = non_crossing_segments(10, seed=3)

SCENARIOS = {
    "skipweb1d": dict(items=KEYS, kwargs={}, search=123.0, range=(0.0, 500_000.0), insert=1.5),
    "bucket-skipweb1d": dict(
        items=KEYS, kwargs={"memory_size": 16}, search=123.0, range=(0.0, 500_000.0), insert=1.5
    ),
    "skipquadtree": dict(
        items=POINTS,
        kwargs={"bounding_cube": HyperCube((0.0, 0.0), 1.0)},
        search=(0.5, 0.5),
        range=None,
        insert=(0.123, 0.456),
    ),
    "skiptrie": dict(
        items=READS, kwargs={"alphabet": DNA}, search=READS[0][:6], range=None, insert=None
    ),
    "skiptrapezoid": dict(
        items=SEGMENTS,
        kwargs={},
        search=(SEGMENTS[0].left[0] + 0.5, SEGMENTS[0].left[1] + 0.5),
        range=None,
        insert=None,
    ),
    "skipgraph": dict(items=KEYS, kwargs={}, search=123.0, range=(0.0, 500_000.0), insert=1.5),
    "skipnet": dict(items=KEYS, kwargs={}, search=123.0, range=None, insert=None),
    "non-skipgraph": dict(items=KEYS, kwargs={}, search=123.0, range=None, insert=None),
    "family-tree": dict(items=KEYS, kwargs={}, search=123.0, range=None, insert=None),
    "det-skipnet": dict(items=KEYS, kwargs={}, search=123.0, range=None, insert=None),
    "bucket-skipgraph": dict(items=KEYS, kwargs={}, search=123.0, range=None, insert=None),
    "chord": dict(items=KEYS, kwargs={}, search=KEYS[1], range=None, insert=None),
}


def _cluster(name, **extra):
    scenario = SCENARIOS[name]
    kwargs = dict(scenario["kwargs"])
    kwargs.update(extra)
    return Cluster(structure=name, items=scenario["items"], seed=3, **kwargs)


class TestRegistry:
    def test_every_scenario_name_is_registered(self):
        assert sorted(SCENARIOS) == available_structures()

    def test_expected_classes(self):
        expected = {
            "skipweb1d": SkipWeb1D,
            "bucket-skipweb1d": BucketSkipWeb1D,
            "skipquadtree": SkipQuadtreeWeb,
            "skiptrie": SkipTrieWeb,
            "skiptrapezoid": SkipTrapezoidWeb,
            "skipgraph": SkipGraph,
            "chord": ChordDHT,
        }
        for name, cls in expected.items():
            assert resolve_structure(name).cls is cls

    def test_every_baseline_overlay_is_registered(self):
        """Every concrete DistributedOrderedStructure resolves by name."""
        registered = {spec.cls for spec in structure_specs().values()}
        for cls in DistributedOrderedStructure.__subclasses__():
            assert cls in registered, f"{cls.__name__} missing from the registry"

    def test_every_registered_structure_satisfies_the_protocol(self):
        for name in available_structures():
            cluster = _cluster(name)
            assert isinstance(cluster.structure, DistributedStructure), name

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(StructureError, match="skipweb1d"):
            resolve_structure("btree")

    def test_bucket_requires_memory_size(self):
        with pytest.raises(StructureError, match="memory_size"):
            Cluster(structure="bucket-skipweb1d", items=KEYS)


class TestClusterOperations:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_batch_bulk_load_and_churn_for_every_family(self, name):
        scenario = SCENARIOS[name]
        cluster = _cluster(name)
        spec = cluster.spec

        # batch: a search plus (when defined) a range, across the family
        operations = [("search", scenario["search"])]
        if scenario["range"] is not None:
            operations.append(("range", scenario["range"]))
        report = cluster.batch(operations)
        assert isinstance(report, BatchReport)
        assert len(report) == len(operations)
        assert report[0].ok
        for handle in report:
            if handle.kind == "range" and not spec.supports_range:
                assert handle.unsupported
            else:
                assert handle.ok, f"{name}: {handle.error!r}"

        # churn lifecycle: join then crash, queries keep completing
        rng = random.Random(7)
        cluster.configure_churn(rng=rng)
        alive_before = len(cluster.network.alive_host_ids())
        join = cluster.join_host()
        assert join.kind == "join"
        # At least the newcomer joined (rebalancing may register extras).
        assert len(cluster.network.alive_host_ids()) > alive_before
        crash = cluster.crash_host()
        assert crash.kind == "crash"
        assert [event.kind for event in cluster.churn_events] == ["join", "crash"]
        after = cluster.batch([("search", scenario["search"])])
        assert after[0].ok

        # bulk_load: the build_from_sorted path charges construction traffic
        empty = Cluster(structure=name, seed=3, **scenario["kwargs"])
        items = scenario["items"]
        if name in ("skipweb1d", "bucket-skipweb1d", "chord") or issubclass(
            spec.cls, DistributedOrderedStructure
        ):
            items = sorted(set(float(item) for item in items))
        loaded = empty.bulk_load(items)
        assert loaded.ok
        assert loaded.messages == empty.stats().construction_messages
        assert loaded.messages > 0

    def test_single_operations_in_both_modes(self):
        for mode in ("immediate", "batched"):
            cluster = _cluster("skipweb1d", mode=mode)
            found = cluster.nearest(KEYS[2])
            assert found.ok and found.value.answer.exact
            inserted = cluster.insert(17.5)
            assert inserted.ok
            window = cluster.range((0.0, 1_000_000.0))
            assert window.ok and window.value.count == len(set(KEYS)) + 1
            removed = cluster.delete(17.5)
            assert removed.ok

    def test_alias_kinds_and_mappings(self):
        cluster = _cluster("skipweb1d")
        report = cluster.batch(
            [
                ("get", KEYS[0]),
                {"kind": "nearest", "payload": KEYS[1]},
                Operation("search", KEYS[2]),
            ]
        )
        assert [handle.status for handle in report] == ["ok", "ok", "ok"]

    def test_unknown_kind_raises_before_running(self):
        cluster = _cluster("skipweb1d")
        with pytest.raises(ValueError, match="unknown operation kind"):
            cluster.batch([("explode", 1.0)])

    def test_session_and_context_manager(self):
        with _cluster("skipweb1d") as cluster:
            with cluster.session() as session:
                session.batch(
                    [("search", float(q)) for q in range(1000, 900_000, 111_111)]
                )
                assert session.messages > 0
                assert session.by_kind().get("query") == session.messages
        with pytest.raises(StructureError, match="closed"):
            cluster.nearest(1.0)

    def test_stats_and_congestion_snapshots(self):
        cluster = _cluster("skipweb1d")
        cluster.batch([("search", float(q)) for q in range(1000, 900_000, 111_111)])
        stats = cluster.stats()
        assert stats.structure == "skipweb1d"
        assert stats.hosts == stats.alive_hosts == len(set(KEYS))
        assert stats.ground_set_size == len(set(KEYS))
        assert stats.messages_total == sum(stats.messages_by_kind.values()) > 0
        assert cluster.congestion().max_congestion >= 0
        assert cluster.round_congestion().max_host_round_load >= 0

    def test_empty_cluster_refuses_operations(self):
        cluster = Cluster(structure="skipweb1d")
        with pytest.raises(StructureError, match="no data"):
            cluster.nearest(1.0)
        cluster.bulk_load(sorted(set(float(k) for k in KEYS)))
        with pytest.raises(StructureError, match="already holds data"):
            cluster.bulk_load([1.0])

    def test_from_structure_wraps_existing_instance(self):
        web = SkipWeb1D(KEYS, seed=3)
        cluster = Cluster.from_structure(web, mode="immediate")
        assert cluster.structure is web
        assert cluster.spec.name == "skipweb1d"
        assert cluster.nearest(KEYS[0]).ok
        with pytest.raises(StructureError, match="not a registered"):
            Cluster.from_structure(object())

    def test_from_structure_prefers_exact_class_over_base_family(self):
        from repro.baselines import SkipNet

        cluster = Cluster.from_structure(SkipNet(KEYS, seed=3))
        assert cluster.spec.name == "skipnet"
        assert cluster.stats().structure == "skipnet"

    def test_closed_cluster_keeps_churn_history(self):
        with _cluster("skipweb1d") as cluster:
            cluster.configure_churn(rng=random.Random(2))
            cluster.join_host()
            cluster.crash_host()
        assert [event.kind for event in cluster.churn_events] == ["join", "crash"]

    def test_immediate_failure_still_bills_messages(self):
        cluster = _cluster("skipweb1d", mode="immediate")
        # Find a query whose walk crosses at least two hosts, so failing
        # its final host leaves charged traffic before the failure.
        probe = next(
            handle
            for handle in (
                cluster.nearest(float(query)) for query in range(0, 1_000_000, 50_000)
            )
            if handle.messages >= 2
        )
        # Fail the host the successful walk ended on; the repeated walk
        # (deterministic) charges every crossing before the dead one.
        cluster.network.fail_host(probe.value.hosts_visited[-1])
        failed = cluster.nearest(probe.payload, origin_host=probe.origin_host)
        assert failed.status == "failed"
        assert failed.messages == probe.messages - 1 > 0


class TestErrorTaxonomy:
    def test_chord_batch_translates_unsupported_instead_of_raising(self):
        cluster = _cluster("chord")
        report = cluster.batch(
            [
                ("range", (0.0, 100.0)),
                ("insert", 5.5),
                ("delete", KEYS[0]),
                ("search", KEYS[1]),
            ]
        )
        assert [handle.status for handle in report] == [
            "unsupported",
            "unsupported",
            "unsupported",
            "ok",
        ]
        assert report.unsupported == 3 and report.completed == 1
        with pytest.raises(Exception):
            report[0].result()

    def test_domain_failures_stay_per_handle(self):
        cluster = _cluster("skipweb1d")
        duplicate = float(KEYS[0])
        report = cluster.batch(
            [("insert", duplicate), ("delete", -1.0), ("search", KEYS[1])]
        )
        assert report[0].status == "failed"  # duplicate insert
        assert report[2].ok
        assert report.failed >= 1 and report.completed >= 1


class TestFacadeEqualsDirect:
    """Construction through the façade changes no message count."""

    def test_skipweb1d_immediate_queries_match(self):
        keys = uniform_keys(48, seed=11)
        direct = SkipWeb1D(keys, seed=11)
        cluster = Cluster(structure="skipweb1d", items=keys, seed=11, mode="immediate")
        origins = direct.origin_hosts()
        for index, query in enumerate(uniform_keys(12, seed=13)):
            origin = origins[index % len(origins)]
            assert (
                direct.nearest(query, origin_host=origin).messages
                == cluster.nearest(query, origin_host=origin).result().messages
            )

    def test_skipweb1d_batch_matches_direct_executor(self):
        keys = uniform_keys(48, seed=11)
        direct = SkipWeb1D(keys, seed=11)
        cluster = Cluster(structure="skipweb1d", items=keys, seed=11)
        origins = direct.origin_hosts()
        operations = [
            Operation("search", query, origin_host=origins[index % len(origins)])
            for index, query in enumerate(uniform_keys(20, seed=13))
        ]
        expected = BatchExecutor(direct).run(operations)
        actual = cluster.batch(operations)
        assert actual.messages == expected.messages
        assert actual.rounds == expected.rounds
        assert actual.max_round_congestion == expected.max_round_congestion

    def test_chord_lookup_matches(self):
        keys = uniform_keys(32, seed=11)
        direct = ChordDHT(keys)
        cluster = Cluster(structure="chord", items=keys, mode="immediate")
        origin = direct.origin_hosts()[0]
        for key in keys[:8]:
            assert (
                direct.lookup(key, origin_host=origin).messages
                == cluster.get(key, origin_host=origin).result().messages
            )


class TestDeprecationShims:
    def test_build_structure_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="Cluster"):
            web = build_structure("skipweb1d", KEYS, seed=3)
        assert isinstance(web, SkipWeb1D)
        assert web.nearest(KEYS[0]).answer.exact

    def test_build_executor_warns_and_works(self):
        web = SkipWeb1D(KEYS, seed=3)
        with pytest.warns(DeprecationWarning, match="Cluster.batch"):
            executor = build_executor(web)
        result = executor.run([Operation("search", KEYS[0])])
        assert result.completed == 1

    def test_build_churn_controller_warns_and_works(self):
        web = SkipWeb1D(KEYS, seed=3)
        with pytest.warns(DeprecationWarning, match="join_host"):
            controller = build_churn_controller(web, rng=random.Random(1))
        event = controller.join()
        assert event.kind == "join"

    def test_new_code_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cluster = _cluster("skipweb1d")
            assert cluster.nearest(KEYS[0]).ok
