"""Count-equivalence guarantees of the wall-clock performance layer.

The performance overhaul (ledger substrate, bulk-load construction,
incremental level-structure updates, caches) must be invisible to the
cost model: every message count, every benchmark row, byte for byte.
These tests pin that contract:

* every gated experiment produces identical rows under ``trace=True``
  and ``trace=False`` (the ledger substrate);
* ``build_from_sorted`` + k inserts charges exactly what the plain
  constructor + the same k inserts charges, for every structure family;
* the incremental ``with_item`` fast paths produce structures
  bit-identical to a from-scratch rebuild (units, order, adjacency);
* the network-level caches (alive hosts, round reports) change no
  observable number while bounding memory;
* the sharded multi-worker executor (``Cluster(workers=N)``) produces
  results, per-operation stats, congestion aggregates and deployment
  snapshots identical to a serial run, for every structure family;
* the fault-injection seam (``Cluster(faults=...)``) is invisible when
  left off: ``faults=None`` — implicit or explicit, serial or sharded —
  reproduces every observable number and records zero fault tallies,
  for every structure family.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Cluster
from repro.baselines import ChordDHT, SkipGraph
from repro.engine.sharded import ShardedExecutor, fork_available
from repro.bench.experiments import (
    churn,
    congestion_rounds,
    range_queries,
    throughput,
    update_costs,
)
from repro.net.message import MessageKind
from repro.net.network import Network, ledger_mode, tracing_mode
from repro.onedim import BucketSkipWeb1D, SkipWeb1D
from repro.onedim.linked_list import SortedListStructure
from repro.spatial.geometry import HyperCube
from repro.spatial.skip_quadtree import QuadtreeStructure, SkipQuadtreeWeb
from repro.strings import DNA, LOWERCASE
from repro.strings.skip_trie import SkipTrieWeb, TrieStructure
from repro.workloads import (
    dna_reads,
    non_crossing_segments,
    uniform_keys,
    uniform_points,
)
from repro.workloads.strings import random_strings


class TestLedgerRowEquivalence:
    """Every experiment row is byte-identical on either substrate."""

    @pytest.mark.parametrize(
        "experiment, params",
        [
            (throughput, {"sizes": (64,), "ops_per_size": 120, "seed": 0}),
            (congestion_rounds, {"sizes": (64,), "queries_per_host": 1, "seed": 0}),
            (
                range_queries,
                {"sizes": (48,), "target_ks": (4,), "queries_per_size": 3, "seed": 0},
            ),
            (update_costs, {"sizes": (64,), "updates_per_size": 4, "seed": 0}),
            (churn, {"sizes": (48,), "events": 3, "ops_per_phase": 16, "seed": 0}),
        ],
        ids=["throughput", "congestion-rounds", "range-queries", "updates", "churn"],
    )
    def test_rows_identical_between_substrates(self, experiment, params):
        with tracing_mode():
            traced = experiment(**params)
        with ledger_mode():
            ledgered = experiment(**params)
        assert traced == ledgered

    def test_ledger_network_counts_match_traced(self):
        for trace in (True, False):
            network = Network(trace=trace, keep_messages=trace)
            network.add_hosts(4)
            with network.measure() as stats:
                network.send(0, 1, MessageKind.QUERY)
                network.send(1, 2, MessageKind.UPDATE)
                network.send(2, 2, MessageKind.QUERY)  # self-send: free
            assert stats.messages == 2
            assert stats.count(MessageKind.QUERY) == 1
            assert stats.count(MessageKind.UPDATE) == 1
            assert network.total_messages == 2
            assert network.message_log.received_by(1) == 1
            # Only the traced substrate materialises message objects.
            assert len(network.message_log.messages) == (2 if trace else 0)


class TestBulkLoadEquivalence:
    """Bulk-load + k inserts ≡ plain construction + the same k inserts."""

    def test_skipweb1d_costs_identical(self):
        keys = sorted(set(float(key) for key in uniform_keys(64, seed=3)))
        extra = [1_000_001.5 + index for index in range(5)]
        plain = SkipWeb1D(keys, seed=3)
        bulk = SkipWeb1D.build_from_sorted(keys, seed=3)
        assert bulk.construction_messages > 0
        insert_costs_plain = [plain.insert(key).messages for key in extra]
        insert_costs_bulk = [bulk.insert(key).messages for key in extra]
        assert insert_costs_plain == insert_costs_bulk
        rng = random.Random(11)
        queries = [rng.uniform(0.0, 2_000_000.0) for _ in range(30)]
        plain_costs = [plain.nearest(query).messages for query in queries]
        bulk_costs = [bulk.nearest(query).messages for query in queries]
        assert plain_costs == bulk_costs
        assert [plain.nearest(q).answer.nearest for q in queries] == [
            bulk.nearest(q).answer.nearest for q in queries
        ]

    def test_quadtree_and_trie_webs_cost_identical(self):
        points = uniform_points(48, dimension=2, seed=4)
        cube = HyperCube((0.0, 0.0), 1.0)
        plain_quad = SkipQuadtreeWeb(points, bounding_cube=cube, seed=4)
        bulk_quad = SkipQuadtreeWeb.build_from_sorted(points, bounding_cube=cube, seed=4)
        rng = random.Random(5)
        point_queries = [(rng.random(), rng.random()) for _ in range(20)]
        assert [plain_quad.locate(q).messages for q in point_queries] == [
            bulk_quad.locate(q).messages for q in point_queries
        ]

        strings = random_strings(48, alphabet=LOWERCASE, seed=4)
        plain_trie = SkipTrieWeb(strings, alphabet=LOWERCASE, seed=4)
        bulk_trie = SkipTrieWeb.build_from_sorted(strings, alphabet=LOWERCASE, seed=4)
        assert [plain_trie.locate(s).messages for s in strings[:20]] == [
            bulk_trie.locate(s).messages for s in strings[:20]
        ]

    def test_bucket_baseline_and_chord_costs_identical(self):
        keys = sorted(set(float(key) for key in uniform_keys(64, seed=6)))
        rng = random.Random(7)
        queries = [rng.uniform(0.0, 1_000_000.0) for _ in range(20)]

        plain_bucket = BucketSkipWeb1D(keys, memory_size=32, seed=6)
        bulk_bucket = BucketSkipWeb1D.build_from_sorted(keys, 32, seed=6)
        assert [plain_bucket.nearest(q).messages for q in queries] == [
            bulk_bucket.nearest(q).messages for q in queries
        ]

        plain_graph = SkipGraph(keys, seed=6)
        bulk_graph = SkipGraph.build_from_sorted(keys, seed=6)
        assert [plain_graph.search(q).messages for q in queries] == [
            bulk_graph.search(q).messages for q in queries
        ]

        plain_chord = ChordDHT(keys)
        bulk_chord = ChordDHT.build_from_sorted(keys)
        assert [plain_chord.lookup(k).messages for k in keys[:20]] == [
            bulk_chord.lookup(k).messages for k in keys[:20]
        ]

    def test_construction_traffic_is_construction_kind_only(self):
        keys = sorted(set(float(key) for key in uniform_keys(48, seed=8)))
        web = SkipWeb1D.build_from_sorted(keys, seed=8)
        log = web.network.message_log
        assert web.construction_messages == log.count(MessageKind.CONSTRUCTION) > 0
        assert log.count(MessageKind.QUERY) == 0
        assert log.count(MessageKind.UPDATE) == 0


class TestIncrementalStructureEquivalence:
    """The ``with_item`` fast paths match a from-scratch rebuild exactly."""

    @staticmethod
    def _assert_same(incremental, rebuilt):
        left, right = incremental.units(), rebuilt.units()
        assert [unit.key for unit in left] == [unit.key for unit in right]
        assert left == right
        assert list(incremental.items) == list(rebuilt.items)
        for unit in left:
            assert [n.key for n in incremental.neighbors(unit.key)] == [
                n.key for n in rebuilt.neighbors(unit.key)
            ]

    def test_sorted_list(self):
        rng = random.Random(1)
        keys = sorted(set(float(key) for key in uniform_keys(24, seed=1)))
        current = SortedListStructure(keys)
        grown = list(keys)
        for _ in range(8):
            key = rng.uniform(-100.0, 2_000_000.0)
            if key in grown:
                continue
            current = current.with_item(key)
            grown.append(key)
            self._assert_same(current, SortedListStructure(grown))

    def test_trie(self):
        for alphabet in (DNA, LOWERCASE):
            strings = random_strings(20, alphabet=alphabet, seed=2)
            current = TrieStructure(strings, alphabet)
            grown = list(current.items)
            for value in random_strings(30, alphabet=alphabet, seed=77):
                if value in grown:
                    continue
                current = current.with_item(value)
                grown.append(value)
                current.trie.validate()
                self._assert_same(current, TrieStructure.build(grown, alphabet=alphabet))

    def test_quadtree(self):
        rng = random.Random(3)
        for dimension in (2, 3):
            cube = HyperCube(tuple(0.0 for _ in range(dimension)), 1.0)
            points = uniform_points(20, dimension=dimension, seed=3)
            current = QuadtreeStructure(points, cube)
            grown = list(current.items)
            for _ in range(8):
                point = tuple(rng.random() for _ in range(dimension))
                if point in grown:
                    continue
                current = current.with_item(point)
                grown.append(point)
                current.tree.validate()
                self._assert_same(current, QuadtreeStructure(grown, cube))

    def test_quadtree_compression_moves(self):
        """Clustered points followed by far points move the split cell."""
        rng = random.Random(4)
        cube = HyperCube((0.0, 0.0), 1.0)
        clustered = [(0.001 + rng.random() * 0.01, 0.001 + rng.random() * 0.01) for _ in range(12)]
        current = QuadtreeStructure(clustered, cube)
        grown = list(current.items)
        for point in [(0.93, 0.91), (0.5, 0.5), (0.25, 0.7), (0.0078, 0.0055)]:
            current = current.with_item(point)
            grown.append(point)
            current.tree.validate()
            self._assert_same(current, QuadtreeStructure(grown, cube))


class TestNetworkCaches:
    """The alive-host cache and round-report bounding change no numbers."""

    def test_alive_cache_tracks_membership_changes(self):
        network = Network()
        network.add_hosts(3)
        assert network.alive_host_ids() == [0, 1, 2]
        network.fail_host(1)
        assert network.alive_host_ids() == [0, 2]
        network.recover_host(1)
        assert network.alive_host_ids() == [0, 1, 2]
        network.remove_host(2)
        assert network.alive_host_ids() == [0, 1]
        host = network.add_host()
        assert host.host_id in network.alive_host_ids()
        # The returned list is a copy: mutating it does not poison the cache.
        network.alive_host_ids().append(999)
        assert 999 not in network.alive_host_ids()

    def test_round_report_retention_keeps_aggregates(self):
        bounded = Network(trace=False, round_report_retention=2)
        unbounded = Network(trace=True)
        for network in (bounded, unbounded):
            network.add_hosts(4)
            with network.rounds():
                for round_index in range(5):
                    for destination in range(1, 2 + round_index % 2):
                        network.post(0, destination)
                    network.run_round()
        assert len(bounded.round_reports) == 2
        assert len(unbounded.round_reports) == 5
        # The whole-session congestion aggregates are identical regardless.
        assert bounded.round_congestion_summary() == unbounded.round_congestion_summary()
        # Ledger-mode reports drop the per-host dicts but keep the maxima.
        for report in bounded.round_reports:
            assert report.per_host == {}
            assert report.max_host_load >= 1

    def test_ledger_round_failure_reporting_still_works(self):
        network = Network(trace=False)
        network.add_hosts(3)
        with network.rounds():
            healthy = network.post(0, 1)
            network.run_round()
            assert healthy.result() is None  # shared fast-path ticket
            network.fail_host(2)
            doomed = network.post(0, 2)
            network.run_round()
            with pytest.raises(Exception):
                doomed.result()

    def test_batched_rows_identical_with_bounded_retention(self):
        keys = uniform_keys(48, seed=9)
        queries = uniform_keys(30, seed=10)
        from repro.engine import BatchExecutor, Operation

        reference = SkipWeb1D(keys, network=Network(trace=True), seed=9)
        bounded = SkipWeb1D(
            keys, network=Network(trace=False, round_report_retention=4), seed=9
        )
        operations = [Operation("search", query) for query in queries]
        result_reference = BatchExecutor(reference).run(list(operations))
        result_bounded = BatchExecutor(bounded).run(list(operations))
        assert result_reference.summary() == result_bounded.summary()
        assert (
            result_reference.round_congestion().as_dict()
            == result_bounded.round_congestion().as_dict()
        )


#: Read-only batch scenarios for every registered family: constructor
#: items, extra Cluster kwargs, a list of search payloads, and (where the
#: family answers them) one range payload.
_SHARD_KEYS = uniform_keys(32, seed=21)
_SHARD_POINTS = uniform_points(24, dimension=2, seed=21)
_SHARD_READS = dna_reads(20, seed=21)
_SHARD_SEGMENTS = non_crossing_segments(12, seed=21)

SHARD_SCENARIOS = {
    "skipweb1d": dict(
        items=_SHARD_KEYS,
        kwargs={},
        searches=uniform_keys(18, seed=22),
        range=(0.0, 500_000.0),
    ),
    "bucket-skipweb1d": dict(
        items=_SHARD_KEYS,
        kwargs={"memory_size": 16},
        searches=uniform_keys(18, seed=22),
        range=(0.0, 500_000.0),
    ),
    "skipquadtree": dict(
        items=_SHARD_POINTS,
        kwargs={"bounding_cube": HyperCube((0.0, 0.0), 1.0)},
        searches=[tuple(point) for point in uniform_points(14, dimension=2, seed=23)],
        range=None,
    ),
    "skiptrie": dict(
        items=_SHARD_READS,
        kwargs={"alphabet": DNA},
        searches=[read[: 3 + index % 5] for index, read in enumerate(_SHARD_READS[:14])],
        range=None,
    ),
    "skiptrapezoid": dict(
        items=_SHARD_SEGMENTS,
        kwargs={},
        searches=[
            (segment.left[0] + 0.25, segment.left[1] + 0.25)
            for segment in _SHARD_SEGMENTS[:10]
        ],
        range=None,
    ),
    "skipgraph": dict(
        items=_SHARD_KEYS,
        kwargs={},
        searches=uniform_keys(18, seed=22),
        range=(0.0, 500_000.0),
    ),
    "skipnet": dict(items=_SHARD_KEYS, kwargs={}, searches=uniform_keys(18, seed=22), range=None),
    "non-skipgraph": dict(
        items=_SHARD_KEYS, kwargs={}, searches=uniform_keys(18, seed=22), range=None
    ),
    "family-tree": dict(
        items=_SHARD_KEYS, kwargs={}, searches=uniform_keys(18, seed=22), range=None
    ),
    "det-skipnet": dict(
        items=_SHARD_KEYS, kwargs={}, searches=uniform_keys(18, seed=22), range=None
    ),
    "bucket-skipgraph": dict(
        items=_SHARD_KEYS, kwargs={}, searches=uniform_keys(18, seed=22), range=None
    ),
    "chord": dict(items=_SHARD_KEYS, kwargs={}, searches=list(_SHARD_KEYS[:14]), range=None),
}


class TestShardedEquivalence:
    """``Cluster(workers=N)`` changes no observable number, ever.

    The sharded executor's contract (ISSUE: zero counted-message drift)
    is that a read-only batch run across fork workers is *accounting-
    identical* to the same batch run serially: every
    :class:`~repro.api.results.OperationHandle` field, the batch's round
    and message totals, the per-round congestion reports, the session
    congestion aggregates, and the cluster's lifetime deployment
    snapshot.  The sweep below pins all of it for every registered
    structure family and ``workers ∈ {1, 2, 4}``.
    """

    @staticmethod
    def _run_batch(name, workers):
        # Sharding requires the ledger substrate (the benchmarks' and the
        # CLI's default); under tracing it transparently stays serial.
        with ledger_mode():
            scenario = SHARD_SCENARIOS[name]
            cluster = Cluster(
                structure=name,
                items=scenario["items"],
                seed=21,
                workers=workers,
                **scenario["kwargs"],
            )
            operations = [("search", payload) for payload in scenario["searches"]]
            if scenario["range"] is not None:
                operations.append(("range", scenario["range"]))
            report = cluster.batch(operations)
        return cluster, report

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("name", sorted(SHARD_SCENARIOS))
    def test_every_family_matches_serial(self, name, workers):
        serial_cluster, serial = self._run_batch(name, workers=1)
        sharded_cluster, sharded = self._run_batch(name, workers=workers)

        if workers > 1 and fork_available():
            executor = sharded_cluster.executor
            assert isinstance(executor, ShardedExecutor)
            assert executor.last_fallback_reason is None, executor.last_fallback_reason

        # Per-operation stats and values, in submission order.
        assert len(serial) == len(sharded)
        for left, right in zip(serial, sharded):
            assert left.status == right.status
            assert left.kind == right.kind
            assert left.origin_host == right.origin_host
            assert left.messages == right.messages
            assert left.rounds == right.rounds
            assert left.retries == right.retries
            assert left.cache_hits == right.cache_hits
            assert left.value == right.value
            assert type(left.error) is type(right.error)

        # Batch aggregates and per-round congestion.
        assert serial.rounds == sharded.rounds
        assert serial.messages == sharded.messages
        assert serial.max_round_congestion == sharded.max_round_congestion
        assert serial.summary() == sharded.summary()
        assert serial.round_congestion().as_dict() == sharded.round_congestion().as_dict()
        serial_reports = serial.raw.round_reports
        sharded_reports = sharded.raw.round_reports
        assert [
            (report.index, report.delivered, report.max_load, report.max_load_host)
            for report in serial_reports
        ] == [
            (report.index, report.delivered, report.max_load, report.max_load_host)
            for report in sharded_reports
        ]

        # Lifetime deployment snapshots (construction + batch traffic).
        assert serial_cluster.stats().as_dict() == sharded_cluster.stats().as_dict()

    def test_mutating_batch_falls_back_and_says_so(self):
        with ledger_mode():
            cluster = Cluster(structure="skipweb1d", items=_SHARD_KEYS, seed=21, workers=2)
            executor = cluster.executor
            assert isinstance(executor, ShardedExecutor)
            report = cluster.batch([("insert", 77.5), ("search", 123.0)])
            assert report[0].ok and report[1].ok
            assert executor.last_fallback_reason == "mutating operation kind 'insert'"

    def test_failed_hosts_force_the_serial_path(self):
        with ledger_mode():
            cluster = Cluster(structure="skipweb1d", items=_SHARD_KEYS, seed=21, workers=2)
            executor = cluster.executor
            assert isinstance(executor, ShardedExecutor)
            victim = next(
                host
                for host in cluster.network.alive_host_ids()
                if host not in set(cluster.structure.origin_hosts()[:1])
            )
            cluster.network.fail_host(victim)
            report = cluster.batch(
                [("search", payload) for payload in uniform_keys(6, seed=24)]
            )
            assert executor.last_fallback_reason == "failed hosts present"
            assert len(report) == 6

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            Cluster(structure="skipweb1d", items=_SHARD_KEYS, seed=21, workers=0)
        with pytest.raises(ValueError, match="workers"):
            ShardedExecutor(Cluster("skipweb1d", _SHARD_KEYS, seed=21).structure, workers=0)


class TestFaultFreeIdentity:
    """``faults=None`` changes no pre-existing number, for any family.

    The fault-injection choke point sits inside every delivery on both
    substrates, so its no-op contract is the whole subsystem's licence
    to exist: a cluster that never opted in must be byte-identical to
    one built before the subsystem landed.  The sweep pins per-operation
    stats, batch aggregates, round reports, deployment snapshots and the
    (all-zero) fault tallies across the no-kwarg, explicit
    ``faults=None`` and ``workers=2, faults=None`` spellings.
    """

    @staticmethod
    def _run_batch(name, **extra):
        with ledger_mode():
            scenario = SHARD_SCENARIOS[name]
            cluster = Cluster(
                structure=name,
                items=scenario["items"],
                seed=21,
                **scenario["kwargs"],
                **extra,
            )
            operations = [("search", payload) for payload in scenario["searches"]]
            if scenario["range"] is not None:
                operations.append(("range", scenario["range"]))
            report = cluster.batch(operations)
        return cluster, report

    @pytest.mark.parametrize("name", sorted(SHARD_SCENARIOS))
    def test_every_family_matches_implicit_default(self, name):
        implicit_cluster, implicit = self._run_batch(name)
        explicit_cluster, explicit = self._run_batch(name, faults=None)
        sharded_cluster, sharded = self._run_batch(name, faults=None, workers=2)

        for cluster, report in (
            (explicit_cluster, explicit),
            (sharded_cluster, sharded),
        ):
            assert cluster.faults is None
            assert len(report) == len(implicit)
            for left, right in zip(implicit, report):
                assert left.status == right.status
                assert left.messages == right.messages
                assert left.rounds == right.rounds
                assert left.retries == right.retries
                assert left.value == right.value
            assert report.summary() == implicit.summary()
            assert report.rounds == implicit.rounds
            assert report.messages == implicit.messages
            assert cluster.stats().as_dict() == implicit_cluster.stats().as_dict()
            log = cluster.network.message_log
            assert (log.dropped, log.duplicated, log.delayed) == (0, 0, 0)
        # No fault plan ⇒ the new summary keys never materialise.
        assert "timed_out" not in implicit.summary()
        assert "gave_up" not in implicit.summary()


class TestFlatTopologyIdentity:
    """An explicit ``FlatTopology`` changes no pre-refactor counter.

    The topology seam's contract mirrors the ledger's and the sharded
    executor's: invisible until you opt in.  A cluster constructed with
    ``topology="flat"`` must reproduce every observable number of a
    cluster constructed without a topology — per-operation stats, batch
    aggregates, congestion reports, lifetime deployment snapshots — for
    every registered family; the only additions are the weighted
    observables (``latency`` equal to the message count, per-link and
    per-cluster aggregates with all weights 1).
    """

    @staticmethod
    def _run_batch(name, topology):
        with ledger_mode():
            scenario = SHARD_SCENARIOS[name]
            cluster = Cluster(
                structure=name,
                items=scenario["items"],
                seed=21,
                topology=topology,
                **scenario["kwargs"],
            )
            operations = [("search", payload) for payload in scenario["searches"]]
            if scenario["range"] is not None:
                operations.append(("range", scenario["range"]))
            report = cluster.batch(operations)
        return cluster, report

    @pytest.mark.parametrize("name", sorted(SHARD_SCENARIOS))
    def test_every_family_matches_implicit_default(self, name):
        default_cluster, default = self._run_batch(name, None)
        flat_cluster, flat = self._run_batch(name, "flat")

        assert len(default) == len(flat)
        for left, right in zip(default, flat):
            assert left.status == right.status
            assert left.messages == right.messages
            assert left.rounds == right.rounds
            assert left.retries == right.retries
            assert left.cache_hits == right.cache_hits
            assert left.value == right.value
            # The weighted dimension: absent by default, messages×1 flat.
            assert left.latency == 0
            assert right.latency == right.messages

        assert default.rounds == flat.rounds
        assert default.messages == flat.messages
        assert default.max_round_congestion == flat.max_round_congestion
        assert default.latency == 0
        assert flat.latency == flat.messages

        default_congestion = default.round_congestion().as_dict()
        flat_congestion = flat.round_congestion().as_dict()
        # Every pre-refactor congestion field is identical; the explicit
        # topology only *adds* the weighted keys.
        assert {
            key: value
            for key, value in flat_congestion.items()
            if key in default_congestion
        } == default_congestion
        assert flat_congestion["weight"] == flat_congestion["messages"]

        assert default_cluster.stats().as_dict() == flat_cluster.stats().as_dict()

    @pytest.mark.parametrize("topology", ["clustered", "geo"])
    def test_sharded_matches_serial_under_weighted_topology(self, topology):
        def run(workers):
            with ledger_mode():
                cluster = Cluster(
                    structure="skipweb1d",
                    items=_SHARD_KEYS,
                    seed=21,
                    workers=workers,
                    topology=topology,
                )
                report = cluster.batch(
                    [("search", payload) for payload in SHARD_SCENARIOS["skipweb1d"]["searches"]]
                )
            return cluster, report

        serial_cluster, serial = run(1)
        sharded_cluster, sharded = run(2)
        assert [handle.latency for handle in serial] == [
            handle.latency for handle in sharded
        ]
        assert serial.latency == sharded.latency > serial.messages
        assert serial.round_congestion().as_dict() == sharded.round_congestion().as_dict()
        assert (
            serial_cluster.network.topology_congestion_summary()
            == sharded_cluster.network.topology_congestion_summary()
        )
