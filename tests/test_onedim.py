"""Tests for the one-dimensional structures: sorted list, skip-web, bucket skip-web."""

import bisect
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StructureError, UpdateError
from repro.onedim import BucketSkipWeb1D, SkipWeb1D, SortedListStructure


def reference_nearest(keys, query):
    index = bisect.bisect_left(keys, query)
    candidates = []
    if index > 0:
        candidates.append(keys[index - 1])
    if index < len(keys):
        candidates.append(keys[index])
    return min(candidates, key=lambda value: abs(value - query))


class TestSortedListStructure:
    def test_unit_counts(self):
        structure = SortedListStructure([1.0, 2.0, 3.0])
        # 3 nodes, 2 inner links, 2 sentinel links.
        assert len(structure.node_units()) == 3
        assert len(structure.link_units()) == 4
        structure.validate()

    def test_requires_at_least_one_key(self):
        with pytest.raises(StructureError):
            SortedListStructure([])

    def test_duplicates_are_collapsed(self):
        structure = SortedListStructure([2.0, 2.0, 1.0])
        assert structure.keys_sorted == [1.0, 2.0]

    def test_locate_exact_returns_node(self):
        structure = SortedListStructure([1.0, 5.0, 9.0])
        assert structure.locate(5.0).is_node

    def test_locate_between_returns_link(self):
        structure = SortedListStructure([1.0, 5.0, 9.0])
        unit = structure.locate(6.5)
        assert unit.is_link and unit.payload == (5.0, 9.0)

    def test_locate_outside_returns_sentinels(self):
        structure = SortedListStructure([1.0, 5.0])
        assert structure.locate(-10).payload == (None, 1.0)
        assert structure.locate(100).payload == (5.0, None)

    def test_answer_nearest(self):
        structure = SortedListStructure([1.0, 5.0, 9.0])
        answer = structure.answer(6.0, structure.locate(6.0))
        assert answer.nearest == 5.0 and not answer.exact
        exact = structure.answer(9.0, structure.locate(9.0))
        assert exact.exact and exact.nearest == 9.0

    def test_overlapping_matches_bruteforce(self):
        rng = random.Random(0)
        keys = sorted(rng.sample(range(1000), 60))
        structure = SortedListStructure(keys)
        from repro.core.ranges import Interval

        query = Interval(200.0, 400.0)
        fast = {unit.key for unit in structure.overlapping(query)}
        slow = {
            unit.key
            for unit in structure.units()
            if query.intersects(unit.range) or unit.range.intersects(query)
        }
        assert fast == slow

    def test_predecessor_successor(self):
        structure = SortedListStructure([1.0, 5.0, 9.0])
        assert structure.predecessor(5.0) == 5.0
        assert structure.predecessor(0.5) is None
        assert structure.successor(5.5) == 9.0
        assert structure.successor(10.0) is None

    @given(
        keys=st.lists(st.integers(0, 10**6), min_size=1, max_size=80, unique=True),
        query=st.floats(-1e5, 1.1e6),
    )
    @settings(max_examples=80, deadline=None)
    def test_nearest_matches_reference(self, keys, query):
        keys = sorted(float(k) for k in keys)
        structure = SortedListStructure(keys)
        assert structure.nearest_key(query) == reference_nearest(keys, query)


@pytest.fixture(scope="module")
def onedim_web():
    keys = sorted(random.Random(11).sample(range(10**6), 150))
    return [float(k) for k in keys], SkipWeb1D(sorted(float(k) for k in keys), seed=7)


class TestSkipWeb1D:
    def test_structure_is_valid(self, onedim_web):
        _keys, web = onedim_web
        web.web.validate()

    def test_queries_match_reference(self, onedim_web):
        keys, web = onedim_web
        rng = random.Random(3)
        for query in [rng.uniform(0, 10**6) for _ in range(25)] + keys[:5]:
            assert web.nearest(query).answer.nearest == reference_nearest(keys, query)

    def test_contains(self, onedim_web):
        keys, web = onedim_web
        assert web.contains(keys[10])
        assert not web.contains(keys[10] + 0.5)

    def test_query_message_cost_is_logarithmic(self, onedim_web):
        keys, web = onedim_web
        rng = random.Random(4)
        costs = [web.nearest(rng.uniform(0, 10**6)).messages for _ in range(30)]
        # log2(150) ≈ 7.2 levels; allow a small constant factor.
        assert max(costs) <= 30
        assert sum(costs) / len(costs) <= 15

    def test_memory_per_host_is_logarithmic(self, onedim_web):
        keys, web = onedim_web
        assert web.max_memory_per_host() <= 20 * 8  # c * log n with generous c

    def test_query_from_every_origin_host(self, onedim_web):
        keys, web = onedim_web
        rng = random.Random(5)
        for origin in rng.sample(range(web.host_count), 5):
            result = web.nearest(keys[20] + 0.1, origin_host=origin)
            assert result.answer.nearest == keys[20]
            assert result.origin_host == origin

    def test_congestion_report(self, onedim_web):
        _keys, web = onedim_web
        report = web.congestion()
        assert report.max_congestion > 0
        assert report.host_count == web.host_count

    def test_hosts_equal_keys_by_default(self, onedim_web):
        keys, web = onedim_web
        assert web.host_count == len(keys)


class TestSkipWeb1DUpdates:
    def test_insert_then_query(self):
        keys = [float(k) for k in range(0, 200, 2)]
        web = SkipWeb1D(keys, seed=1)
        result = web.insert(13.5)
        assert result.kind == "insert" and result.messages > 0
        assert web.contains(13.5)
        web.web.validate()

    def test_insert_duplicate_raises(self):
        web = SkipWeb1D([1.0, 2.0, 3.0], seed=1)
        with pytest.raises(UpdateError):
            web.insert(2.0)

    def test_delete_then_query(self):
        keys = [float(k) for k in range(0, 100, 2)]
        web = SkipWeb1D(keys, seed=2)
        web.delete(10.0)
        assert not web.contains(10.0)
        assert web.nearest(10.0).answer.nearest in (8.0, 12.0)
        web.web.validate()

    def test_delete_missing_raises(self):
        web = SkipWeb1D([1.0, 2.0], seed=1)
        with pytest.raises(UpdateError):
            web.delete(5.0)

    def test_delete_last_key_raises(self):
        web = SkipWeb1D([1.0], seed=1)
        with pytest.raises(UpdateError):
            web.delete(1.0)

    def test_many_updates_keep_structure_consistent(self):
        rng = random.Random(9)
        keys = sorted(float(k) for k in rng.sample(range(10000), 60))
        web = SkipWeb1D(keys, seed=3)
        alive = list(keys)
        for _ in range(10):
            new_key = round(rng.uniform(0, 10000), 3)
            if new_key in alive:
                continue
            web.insert(new_key)
            alive.append(new_key)
        for victim in rng.sample(alive, 8):
            web.delete(victim)
            alive.remove(victim)
        web.web.validate()
        alive.sort()
        for query in [rng.uniform(0, 10000) for _ in range(15)]:
            assert web.nearest(query).answer.nearest == reference_nearest(alive, query)

    def test_update_cost_is_logarithmic(self):
        rng = random.Random(10)
        keys = sorted(float(k) for k in rng.sample(range(10**6), 120))
        web = SkipWeb1D(keys, seed=4)
        costs = [web.insert(rng.uniform(0, 10**6)).messages for _ in range(8)]
        assert sum(costs) / len(costs) <= 90  # c * log n with generous c


class TestBlockingPolicies:
    @pytest.mark.parametrize("blocking", ["owner", "round_robin", "hash"])
    def test_all_policies_answer_correctly(self, blocking):
        rng = random.Random(6)
        keys = sorted(float(k) for k in rng.sample(range(10**6), 80))
        web = SkipWeb1D(keys, blocking=blocking, seed=5)
        for query in [rng.uniform(0, 10**6) for _ in range(12)]:
            assert web.nearest(query).answer.nearest == reference_nearest(keys, query)


class TestBucketSkipWeb1D:
    @pytest.fixture(scope="class")
    def bucket(self):
        keys = sorted(float(k) for k in random.Random(12).sample(range(10**6), 200))
        return keys, BucketSkipWeb1D(keys, memory_size=32, seed=8)

    def test_validate(self, bucket):
        _keys, web = bucket
        web.validate()

    def test_queries_match_reference(self, bucket):
        keys, web = bucket
        rng = random.Random(7)
        for query in [rng.uniform(0, 10**6) for _ in range(25)] + keys[:5]:
            assert (
                web.nearest(query, origin_key=rng.choice(keys)).answer.nearest
                == reference_nearest(keys, query)
            )

    def test_fewer_hosts_than_plain_deployment(self, bucket):
        keys, web = bucket
        assert web.host_count < len(keys) * (web.height + 1)

    def test_query_cost_beats_plain_skipweb(self, bucket):
        keys, web = bucket
        rng = random.Random(8)
        plain = SkipWeb1D(keys, seed=8)
        queries = [rng.uniform(0, 10**6) for _ in range(20)]
        bucket_cost = sum(web.nearest(q, origin_key=rng.choice(keys)).messages for q in queries)
        plain_cost = sum(plain.nearest(q).messages for q in queries)
        assert bucket_cost < plain_cost

    def test_memory_scales_with_M(self):
        keys = sorted(float(k) for k in random.Random(13).sample(range(10**6), 150))
        small = BucketSkipWeb1D(keys, memory_size=8, seed=1)
        large = BucketSkipWeb1D(keys, memory_size=64, seed=1)
        assert large.host_count < small.host_count

    def test_memory_size_validation(self):
        with pytest.raises(ValueError):
            BucketSkipWeb1D([1.0, 2.0], memory_size=2)

    def test_insert_and_delete(self, bucket):
        keys = sorted(float(k) for k in random.Random(14).sample(range(10**6), 60))
        web = BucketSkipWeb1D(keys, memory_size=16, seed=2)
        insert = web.insert(123456.5)
        assert insert.messages >= 1
        assert web.contains(123456.5)
        delete = web.delete(keys[7])
        assert delete.kind == "delete"
        assert not web.contains(keys[7])
        web.validate()

    def test_insert_duplicate_and_delete_missing(self, bucket):
        web = BucketSkipWeb1D([1.0, 2.0, 3.0, 4.0], memory_size=8, seed=3)
        with pytest.raises(UpdateError):
            web.insert(2.0)
        with pytest.raises(UpdateError):
            web.delete(9.0)


class TestRangeSearch1D:
    """Output-sensitive key-range reporting (O(log n + k) messages)."""

    def test_skipweb_range_matches_reference(self):
        rng = random.Random(21)
        keys = sorted(float(k) for k in rng.sample(range(10**6), 80))
        web = SkipWeb1D(keys, seed=21)
        for _ in range(8):
            start = rng.randrange(0, len(keys) - 10)
            width = rng.randrange(1, 10)
            low, high = keys[start], keys[start + width]
            result = web.range_search(low, high)
            assert sorted(result.matches) == keys[start : start + width + 1]
            assert result.count == width + 1
            assert result.messages == result.descent_messages + result.report_messages

    def test_skipweb_empty_range_costs_only_the_descent(self):
        web = SkipWeb1D([10.0, 20.0, 30.0, 40.0], seed=1)
        result = web.range_search(21.0, 29.0)
        assert result.matches == ()
        assert result.report_messages == 0
        assert result.branches == 0

    def test_bucket_range_matches_and_beats_plain(self):
        rng = random.Random(22)
        keys = sorted(float(k) for k in rng.sample(range(10**6), 120))
        plain = SkipWeb1D(keys, seed=22)
        bucket = BucketSkipWeb1D(keys, memory_size=32, seed=22)
        start = 30
        low, high = keys[start], keys[start + 24]
        plain_result = plain.range_search(low, high)
        bucket_result = bucket.range_search(low, high, origin_key=keys[0])
        assert sorted(plain_result.matches) == keys[start : start + 25]
        assert sorted(bucket_result.matches) == keys[start : start + 25]
        # Blocks keep consecutive keys co-located, so the bucket layout
        # reports the same k for fewer messages.
        assert bucket_result.messages < plain_result.messages

    def test_range_accepts_interval_and_tuple(self):
        from repro.core.ranges import Interval

        web = SkipWeb1D([1.0, 2.0, 3.0], seed=0)
        by_tuple = web.range_report((1.0, 2.0))
        by_interval = web.range_report(Interval(1.0, 2.0))
        assert sorted(by_tuple.matches) == sorted(by_interval.matches) == [1.0, 2.0]
