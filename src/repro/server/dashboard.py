"""The live operations dashboard: congestion aggregates + a tiny HTML view.

:func:`collect_stats` is the JSON side — one dict per served cluster with
the *exact* :meth:`~repro.api.cluster.Cluster.round_congestion` aggregates
(`rounds`, `messages`, `max_host_round_load`, `mean_round_max`, plus the
weighted `max_link_round_load` / `max_cluster_round_load` keys under a
topology-aware cost model), the deployment snapshot, lifetime per-status
operation counters, repair traffic, session counts and a requests/sec
figure.  Everything is read under the cluster's serialization lock, so a
dashboard poll observes a consistent point in time and never tears a
half-applied batch.

:data:`DASHBOARD_HTML` is the page served at ``GET /`` — a single
self-contained document (no external assets, works from ``file://`` too)
that polls ``/dashboard/stats`` every two seconds and renders stat tiles
plus a per-cluster aggregates table.  The table *is* the accessible
view: every number on the page appears as text, and the single-series
tiles use text-token colors, not a categorical palette.
"""

from __future__ import annotations

import time
from typing import Any

from repro.server.manager import ClusterManager, ServedCluster


def collect_cluster_stats(manager: ClusterManager, served: ServedCluster) -> dict[str, Any]:
    """One cluster's dashboard row; congestion matches the façade exactly."""
    with served.lock:
        congestion = served.cluster.round_congestion().as_dict()
        stats = served.cluster.stats().as_dict()
        ops = served.operations_snapshot()
        repair = {
            "churn_events": served.churn_events_total,
            "messages": served.repair_messages_total,
            "rounds": served.repair_rounds_total,
        }
        uptime = max(time.monotonic() - served.started, 1e-9)
        ops_per_sec = served.ops_total / uptime
    return {
        "cluster": served.name,
        "structure": served.cluster.spec.name,
        "congestion": congestion,
        "stats": stats,
        "ops": ops,
        "repair": repair,
        "sessions": manager.session_counts(served.name),
        "ops_per_sec": round(ops_per_sec, 3),
        "uptime_secs": round(uptime, 3),
    }


def collect_stats(manager: ClusterManager, cluster: str | None = None) -> dict[str, Any]:
    """The ``GET /dashboard/stats`` body: all clusters, or one by name."""
    if cluster is not None:
        served_list = [manager.get_cluster(cluster)]
    else:
        served_list = manager.clusters()
    return {
        "clusters": [
            collect_cluster_stats(manager, served) for served in served_list
        ],
        "sessions": manager.session_counts(),
    }


#: The self-contained dashboard page (``GET /`` and ``GET /dashboard``).
DASHBOARD_HTML = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro &middot; operations dashboard</title>
<style>
  :root {
    --surface: #ffffff; --panel: #f6f7f9; --border: #d9dde3;
    --ink: #1a1d21; --ink-2: #4b5563; --ink-3: #8b93a1;
    --accent: #2f6fdb;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      --surface: #15171a; --panel: #1e2126; --border: #32373f;
      --ink: #e7e9ec; --ink-2: #aab2bd; --ink-3: #737c89;
      --accent: #6ea0ef;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 24px; background: var(--surface); color: var(--ink);
    font: 14px/1.45 ui-sans-serif, system-ui, sans-serif;
  }
  h1 { font-size: 18px; margin: 0 0 4px; }
  .sub { color: var(--ink-3); margin: 0 0 20px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 24px; }
  .tile {
    background: var(--panel); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 16px; min-width: 150px;
  }
  .tile .label {
    color: var(--ink-3); font-size: 11px; letter-spacing: .04em;
    text-transform: uppercase;
  }
  .tile .value {
    font-size: 26px; font-weight: 600; font-variant-numeric: tabular-nums;
  }
  .tile .detail { color: var(--ink-2); font-size: 12px; }
  table { border-collapse: collapse; width: 100%; }
  caption {
    text-align: left; color: var(--ink-2); font-size: 13px;
    padding: 0 0 8px;
  }
  th, td {
    text-align: right; padding: 6px 10px; border-bottom: 1px solid var(--border);
    font-variant-numeric: tabular-nums;
  }
  th { color: var(--ink-3); font-weight: 500; font-size: 12px; }
  th:first-child, td:first-child { text-align: left; }
  td:first-child { font-weight: 600; }
  #state { color: var(--ink-3); font-size: 12px; margin-top: 16px; }
  #state.err { color: #b4232c; }
</style>
</head>
<body>
<h1>repro operations dashboard</h1>
<p class="sub">Round-congestion aggregates of every served cluster,
refreshed every 2&nbsp;s from <code>/dashboard/stats</code>.</p>
<div class="tiles" id="tiles"></div>
<table aria-live="polite">
  <caption>Per-cluster congestion and traffic aggregates</caption>
  <thead><tr id="head"></tr></thead>
  <tbody id="rows"></tbody>
</table>
<p id="state">connecting&hellip;</p>
<script>
"use strict";
const COLUMNS = [
  ["cluster", s => s.cluster],
  ["structure", s => s.structure],
  ["hosts alive", s => s.stats.alive_hosts + "/" + s.stats.hosts],
  ["ops", s => s.ops.total],
  ["ok", s => s.ops.by_status.ok || 0],
  ["degraded", s => s.ops.total - (s.ops.by_status.ok || 0)],
  ["rounds", s => s.congestion.rounds],
  ["messages", s => s.congestion.messages],
  ["max host load/round", s => s.congestion.max_host_round_load],
  ["mean round max", s => Number(s.congestion.mean_round_max).toFixed(2)],
  ["latency", s => s.ops.latency],
  ["repair msgs", s => s.repair.messages],
  ["open sessions", s => s.sessions.open],
  ["ops/sec", s => Number(s.ops_per_sec).toFixed(1)],
];
const tile = (label, value, detail) =>
  '<div class="tile"><div class="label">' + label + '</div>' +
  '<div class="value">' + value + '</div>' +
  (detail ? '<div class="detail">' + detail + '</div>' : '') + '</div>';
function render(data) {
  const cs = data.clusters;
  const sum = f => cs.reduce((a, s) => a + f(s), 0);
  document.getElementById("tiles").innerHTML =
    tile("clusters", cs.length, cs.map(s => s.cluster).join(", ")) +
    tile("operations", sum(s => s.ops.total),
         sum(s => (s.ops.by_status.ok || 0)) + " ok") +
    tile("messages", sum(s => s.congestion.messages),
         sum(s => s.congestion.rounds) + " rounds") +
    tile("max load / round", cs.length
         ? Math.max(...cs.map(s => s.congestion.max_host_round_load)) : 0,
         "worst host, worst round") +
    tile("repair traffic", sum(s => s.repair.messages),
         sum(s => s.repair.churn_events) + " churn events") +
    tile("sessions", data.sessions.open, data.sessions.closed + " closed");
  document.getElementById("head").innerHTML =
    COLUMNS.map(c => "<th scope=\\"col\\">" + c[0] + "</th>").join("");
  document.getElementById("rows").innerHTML = cs.map(s =>
    "<tr>" + COLUMNS.map(c => "<td>" + c[1](s) + "</td>").join("") + "</tr>"
  ).join("");
}
async function poll() {
  const state = document.getElementById("state");
  try {
    const res = await fetch("/dashboard/stats", {cache: "no-store"});
    if (!res.ok) throw new Error("HTTP " + res.status);
    render(await res.json());
    state.className = "";
    state.textContent = "last update " + new Date().toLocaleTimeString();
  } catch (err) {
    state.className = "err";
    state.textContent = "stats unavailable: " + err.message;
  }
}
poll();
setInterval(poll, 2000);
</script>
</body>
</html>
"""
