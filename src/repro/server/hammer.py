"""The seeded load generator: concurrent sessions over plain ``urllib``.

``run_hammer`` opens N server sessions, drives each from its own thread
with a per-session ``random.Random(f"{seed}:{index}")`` stream, and
returns a :class:`HammerReport` with two disjoint views:

* **timing** — requests/sec, p50/p99 request latency, per-HTTP-status
  counts.  Wall-clock, different every run, for humans and job summaries.
* **determinism** — per-session operation facts (kind, payload, handle
  status, message/round/retry/latency counters, a SHA-256 digest over
  the per-operation results) keyed by the *client-side* session index.
  With a read-only mix these are independent of thread interleaving and
  of the server-assigned session ids, so two hammer runs with the same
  seed against the same seeded cluster must be **byte-identical** — the
  CI serve-gate writes both to files and ``cmp``s them.

The default mix is read-only (70% ``get`` on known ground-set keys,
30% small ``range``) precisely so that property holds; ``mix="write"``
adds inserts/deletes for soak-testing, at the documented cost of
cross-session interleaving sensitivity.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any

from repro.workloads import uniform_keys


def request_json(
    base_url: str,
    method: str,
    path: str,
    body: Any = None,
    timeout: float = 10.0,
) -> tuple[int, dict[str, Any]]:
    """One JSON request; HTTP error codes return normally (code, body)."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base_url.rstrip("/") + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode("utf-8", errors="replace")
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError:
            parsed = {"error": "NonJsonBody", "message": raw, "status": exc.code}
        return exc.code, parsed


def wait_until_ready(base_url: str, timeout: float = 10.0) -> None:
    """Poll ``/healthz`` until the server answers (or raise TimeoutError)."""
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            code, _ = request_json(base_url, "GET", "/healthz", timeout=2.0)
            if code == 200:
                return
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            last_error = exc
        time.sleep(0.05)
    raise TimeoutError(f"server at {base_url} not ready after {timeout:.1f}s: {last_error}")


@dataclass
class _SessionRun:
    """One worker thread's accumulated facts."""

    index: int
    session_id: str = ""
    facts: list[dict[str, Any]] = field(default_factory=list)
    http_counts: dict[int, int] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)
    transport_errors: int = 0
    final_snapshot: dict[str, Any] | None = None


@dataclass
class HammerReport:
    """Everything one hammer run measured, split timing vs deterministic."""

    url: str
    cluster: str
    sessions: int
    ops_per_session: int
    seed: int
    mix: str
    elapsed_secs: float
    requests: int
    requests_per_sec: float
    latency_p50_ms: float
    latency_p99_ms: float
    by_http_status: dict[int, int]
    by_op_status: dict[str, int]
    transport_errors: int
    session_rows: list[dict[str, Any]]
    digest: str

    @property
    def all_ok(self) -> bool:
        """No transport errors and every operation handle came back ok."""
        bad = sum(count for status, count in self.by_op_status.items() if status != "ok")
        return self.transport_errors == 0 and bad == 0

    def deterministic_report(self) -> dict[str, Any]:
        """The byte-identity view: no wall-clock, no server session ids."""
        return {
            "cluster": self.cluster,
            "sessions": self.sessions,
            "ops_per_session": self.ops_per_session,
            "seed": self.seed,
            "mix": self.mix,
            "by_op_status": {
                status: self.by_op_status[status]
                for status in sorted(self.by_op_status)
            },
            "session_rows": self.session_rows,
            "digest": self.digest,
        }

    def summary_rows(self) -> list[dict[str, Any]]:
        """Human-facing table rows (CLI ``--format table|json|csv``)."""
        return [
            {
                "sessions": self.sessions,
                "ops": self.requests,
                "requests_per_sec": round(self.requests_per_sec, 1),
                "p50_ms": round(self.latency_p50_ms, 2),
                "p99_ms": round(self.latency_p99_ms, 2),
                "ok": self.by_op_status.get("ok", 0),
                "degraded": sum(
                    count
                    for status, count in self.by_op_status.items()
                    if status != "ok"
                ),
                "transport_errors": self.transport_errors,
                "digest": self.digest[:12],
            }
        ]

    def markdown(self) -> str:
        """A GitHub job-summary table for the serve-gate."""
        lines = [
            "### serve-gate hammer",
            "",
            "| metric | value |",
            "| --- | --- |",
            f"| sessions x ops | {self.sessions} x {self.ops_per_session} |",
            f"| requests | {self.requests} |",
            f"| requests/sec | {self.requests_per_sec:.1f} |",
            f"| p50 latency | {self.latency_p50_ms:.2f} ms |",
            f"| p99 latency | {self.latency_p99_ms:.2f} ms |",
            f"| transport errors | {self.transport_errors} |",
            f"| result digest | `{self.digest[:16]}` |",
        ]
        for status in sorted(self.by_op_status):
            lines.append(f"| status `{status}` | {self.by_op_status[status]} |")
        return "\n".join(lines) + "\n"


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _drive_session(
    base_url: str,
    cluster: str,
    run: _SessionRun,
    ops: int,
    seed: int,
    mix: str,
    keys: list[float],
    low: float,
    high: float,
    timeout: float,
) -> None:
    rng = random.Random(f"{seed}:{run.index}")
    for _ in range(ops):
        roll = rng.random()
        if mix == "write" and roll < 0.2:
            op = "insert" if roll < 0.1 else "delete"
            payload: Any = rng.choice(keys) if op == "delete" else rng.uniform(low, high)
        elif roll < 0.7:
            op, payload = "get", rng.choice(keys)
        else:
            a = rng.uniform(low, high)
            b = a + rng.uniform(0.0, (high - low) * 0.01)
            op, payload = "range", [a, min(b, high)]
        body = {"cluster": cluster, "payload": payload, "session": run.session_id}
        started = time.monotonic()
        try:
            code, answer = request_json(base_url, "POST", f"/ops/{op}", body, timeout=timeout)
        except (urllib.error.URLError, OSError, TimeoutError):
            run.transport_errors += 1
            continue
        run.latencies.append((time.monotonic() - started) * 1000.0)
        run.http_counts[code] = run.http_counts.get(code, 0) + 1
        run.facts.append(
            {
                "op": op,
                "payload": payload,
                "status": answer.get("status"),
                "messages": answer.get("messages"),
                "rounds": answer.get("rounds"),
                "retries": answer.get("retries"),
                "latency": answer.get("latency"),
                "value": answer.get("value"),
            }
        )


def run_hammer(
    url: str,
    *,
    cluster: str = "default",
    sessions: int = 4,
    ops: int = 25,
    seed: int = 0,
    mix: str = "read",
    items: int = 128,
    key_seed: int = 0,
    low: float = 0.0,
    high: float = 1_000_000.0,
    timeout: float = 10.0,
    warmup: float = 10.0,
) -> HammerReport:
    """Drive ``sessions`` concurrent seeded sessions; see module docstring.

    ``items``/``key_seed`` regenerate the served ground set client-side
    (the same :func:`repro.workloads.uniform_keys` call the ``serve``
    command uses), so read-mix ``get`` operations target known keys and a
    healthy deployment answers every one ``ok``.
    """
    if mix not in ("read", "write"):
        raise ValueError(f"unknown mix {mix!r}; expected 'read' or 'write'")
    wait_until_ready(url, timeout=warmup)
    keys = uniform_keys(items, seed=key_seed, low=low, high=high)
    runs = [_SessionRun(index=index) for index in range(sessions)]
    for run in runs:
        code, body = request_json(url, "POST", "/sessions", {"cluster": cluster}, timeout=timeout)
        if code != 201:
            raise RuntimeError(f"could not open session: HTTP {code} {body}")
        run.session_id = body["session"]
    started = time.monotonic()
    threads = [
        threading.Thread(
            target=_drive_session,
            args=(url, cluster, run, ops, seed, mix, keys, low, high, timeout),
            name=f"hammer-{run.index}",
        )
        for run in runs
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = max(time.monotonic() - started, 1e-9)
    for run in runs:
        code, snapshot = request_json(url, "DELETE", f"/sessions/{run.session_id}", timeout=timeout)
        run.final_snapshot = snapshot if code == 200 else {"error": code}

    session_rows = []
    by_op_status: dict[str, int] = {}
    by_http: dict[int, int] = {}
    latencies: list[float] = []
    transport_errors = 0
    overall = hashlib.sha256()
    for run in runs:
        for fact in run.facts:
            status = str(fact["status"])
            by_op_status[status] = by_op_status.get(status, 0) + 1
        for code, count in run.http_counts.items():
            by_http[code] = by_http.get(code, 0) + count
        latencies.extend(run.latencies)
        transport_errors += run.transport_errors
        digest = hashlib.sha256(json.dumps(run.facts, sort_keys=True).encode("utf-8")).hexdigest()
        overall.update(digest.encode("ascii"))
        snapshot = dict(run.final_snapshot or {})
        # Server-assigned ids and open-flags are interleaving-dependent;
        # the deterministic row is keyed by the client-side index.
        snapshot.pop("session", None)
        snapshot.pop("open", None)
        session_rows.append({"session_index": run.index, "digest": digest, "window": snapshot})
    requests_made = sum(by_http.values())
    return HammerReport(
        url=url,
        cluster=cluster,
        sessions=sessions,
        ops_per_session=ops,
        seed=seed,
        mix=mix,
        elapsed_secs=elapsed,
        requests=requests_made,
        requests_per_sec=requests_made / elapsed,
        latency_p50_ms=_percentile(latencies, 0.50),
        latency_p99_ms=_percentile(latencies, 0.99),
        by_http_status={code: by_http[code] for code in sorted(by_http)},
        by_op_status={status: by_op_status[status] for status in sorted(by_op_status)},
        transport_errors=transport_errors,
        session_rows=session_rows,
        digest=overall.hexdigest(),
    )
