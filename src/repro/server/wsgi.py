"""The WSGI application: the full façade surface as JSON over HTTP.

Pure stdlib (the app is a plain WSGI callable; :mod:`repro.server.runner`
hosts it on ``wsgiref``).  The route table:

====================================  =============================================
``GET /`` / ``GET /dashboard``        the live dashboard page (self-contained HTML)
``GET /healthz``                      liveness probe (also the ready gate)
``GET /dashboard/stats``              congestion aggregates (``?cluster=`` to pick)
``GET|POST /clusters``                list / create named clusters
``GET|DELETE /clusters/{name}``       inspect / close one cluster
``GET|POST /ops/{op}``                run one operation; op in get, nearest,
                                      insert, delete, range
``POST /batch``                       run one concurrent batch
``POST /churn/{verb}``                join, leave, crash, recover, repair
``GET|POST /sessions``                list / open client sessions
``GET|DELETE /sessions/{id}``         snapshot / close one session
====================================  =============================================

Status discipline (the HTTP half of the error taxonomy):

* a *completed* operation answers with the code of its handle status —
  200 ``ok``, 422 ``unsupported``, 409 ``failed``, 503 ``timed_out`` /
  ``gave_up`` — and the handle dict (typed error name included) as body;
* a raised :mod:`repro.errors` exception answers via
  :func:`~repro.server.taxonomy.http_status_for_error` with an
  ``{"error", "message", "status"}`` body;
* transport-level mistakes are plain HTTP: unknown path 404, wrong
  method 405 (with ``Allow``), malformed JSON or payload 400.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, Mapping
from urllib.parse import parse_qs

from repro.server.dashboard import DASHBOARD_HTML, collect_stats
from repro.server.manager import (
    CHURN_VERBS,
    OP_NAMES,
    ClusterManager,
    UnknownResourceError,
    describe_handle,
)
from repro.server.taxonomy import (
    error_body,
    http_status_for,
    http_status_for_error,
    reason_phrase,
)

_JSON = [("Content-Type", "application/json; charset=utf-8")]
_HTML = [("Content-Type", "text/html; charset=utf-8")]


class _HttpAnswer(Exception):
    """Internal shortcut: abort request handling with a finished response."""

    def __init__(self, code: int, body: dict[str, Any], headers=None) -> None:
        super().__init__(str(code))
        self.code = code
        self.body = body
        self.headers = headers or []


def _bad_request(message: str) -> _HttpAnswer:
    return _HttpAnswer(400, {"error": "BadRequest", "message": message, "status": 400})


class ReproApp:
    """The service: one :class:`ClusterManager` behind a WSGI callable."""

    def __init__(self, manager: ClusterManager | None = None) -> None:
        self.manager = manager if manager is not None else ClusterManager()

    # -- WSGI entry point ------------------------------------------------- #
    def __call__(self, environ: dict[str, Any], start_response: Callable) -> list[bytes]:
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO") or "/"
        query = {
            key: values[-1]
            for key, values in parse_qs(environ.get("QUERY_STRING", "")).items()
        }
        try:
            code, body, headers = self._dispatch(method, path, query, environ)
        except _HttpAnswer as answer:
            code, body, headers = answer.code, answer.body, answer.headers
        except UnknownResourceError as exc:
            code, body, headers = 404, error_body(exc, 404), []
        except Exception as exc:  # noqa: BLE001 - total: every error is typed
            code = http_status_for_error(exc)
            body = error_body(exc, code)
            headers = []
        if isinstance(body, str):
            payload = body.encode("utf-8")
            response_headers = list(_HTML)
        else:
            payload = json.dumps(body).encode("utf-8")
            response_headers = list(_JSON)
        response_headers.append(("Content-Length", str(len(payload))))
        response_headers.extend(headers)
        start_response(f"{code} {reason_phrase(code)}", response_headers)
        return [payload]

    # -- routing ---------------------------------------------------------- #
    def _dispatch(
        self,
        method: str,
        path: str,
        query: Mapping[str, str],
        environ: dict[str, Any],
    ) -> tuple[int, Any, list]:
        segments = [segment for segment in path.split("/") if segment]
        if not segments or segments == ["dashboard"]:
            self._require(method, ("GET",))
            return 200, DASHBOARD_HTML, []
        head = segments[0]
        if head == "healthz" and len(segments) == 1:
            self._require(method, ("GET",))
            return 200, {"status": "ok", "clusters": len(self.manager.clusters())}, []
        if segments == ["dashboard", "stats"]:
            self._require(method, ("GET",))
            return 200, collect_stats(self.manager, query.get("cluster")), []
        if head == "clusters" and len(segments) <= 2:
            return self._clusters(method, segments, environ)
        if head == "ops" and len(segments) == 2:
            return self._operation(method, segments[1], query, environ)
        if head == "batch" and len(segments) == 1:
            self._require(method, ("POST",))
            return self._batch(environ)
        if head == "churn" and len(segments) == 2:
            self._require(method, ("POST",))
            return self._churn(segments[1], environ)
        if head == "sessions" and len(segments) <= 2:
            return self._sessions(method, segments, query, environ)
        raise _HttpAnswer(
            404,
            {"error": "NotFound", "message": f"no route for {path!r}", "status": 404},
        )

    @staticmethod
    def _require(method: str, allowed: tuple[str, ...]) -> None:
        if method not in allowed:
            raise _HttpAnswer(
                405,
                {
                    "error": "MethodNotAllowed",
                    "message": f"use {' or '.join(allowed)}",
                    "status": 405,
                },
                [("Allow", ", ".join(allowed))],
            )

    @staticmethod
    def _read_json(environ: dict[str, Any]) -> dict[str, Any]:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            return {}
        raw = environ["wsgi.input"].read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _bad_request(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise _bad_request(f"request body must be a JSON object, got {type(body).__name__}")
        return body

    # -- /clusters -------------------------------------------------------- #
    def _clusters(
        self, method: str, segments: list[str], environ: dict[str, Any]
    ) -> tuple[int, Any, list]:
        if len(segments) == 1:
            self._require(method, ("GET", "POST"))
            if method == "GET":
                return 200, {
                    "clusters": [served.describe() for served in self.manager.clusters()]
                }, []
            spec = self._read_json(environ)
            served = self.manager.create_cluster(spec)
            return 201, served.describe(), []
        name = segments[1]
        self._require(method, ("GET", "DELETE"))
        if method == "GET":
            served = self.manager.get_cluster(name)
            description = served.describe()
            description["operations"] = served.operations_snapshot()
            return 200, description, []
        return 200, self.manager.remove_cluster(name), []

    # -- /ops/{op} -------------------------------------------------------- #
    def _operation(
        self,
        method: str,
        op: str,
        query: Mapping[str, str],
        environ: dict[str, Any],
    ) -> tuple[int, Any, list]:
        if op not in OP_NAMES:
            raise _HttpAnswer(
                404,
                {
                    "error": "NotFound",
                    "message": f"unknown operation {op!r}; expected one of {OP_NAMES}",
                    "status": 404,
                },
            )
        self._require(method, ("GET", "POST"))
        if method == "POST":
            body = self._read_json(environ)
        else:
            body = dict(query)
            if "payload" in body:
                try:
                    body["payload"] = json.loads(body["payload"])
                except json.JSONDecodeError:
                    pass  # a bare scalar like ?payload=carol stays a string
        if "payload" not in body:
            raise _bad_request(f"operation {op!r} needs a 'payload' field")
        origin_host = body.get("origin_host")
        if origin_host is not None:
            origin_host = int(origin_host)
        cluster_name = str(body.get("cluster", "default"))
        served = self.manager.get_cluster(cluster_name)
        session = None
        if body.get("session") is not None:
            session = self.manager.get_session(str(body["session"]))
            if session.cluster != cluster_name:
                raise _bad_request(
                    f"session {session.id!r} belongs to cluster "
                    f"{session.cluster!r}, not {cluster_name!r}"
                )
        handle = served.run_operation(op, body["payload"], origin_host=origin_host, session=session)
        answer = describe_handle(handle, cluster=cluster_name)
        if session is not None:
            answer["session"] = session.id
        return http_status_for(handle.status), answer, []

    # -- /batch ----------------------------------------------------------- #
    def _batch(self, environ: dict[str, Any]) -> tuple[int, Any, list]:
        body = self._read_json(environ)
        operations = body.get("operations")
        if not isinstance(operations, list) or not operations:
            raise _bad_request("batch needs a non-empty 'operations' array")
        cluster_name = str(body.get("cluster", "default"))
        served = self.manager.get_cluster(cluster_name)
        session = None
        if body.get("session") is not None:
            session = self.manager.get_session(str(body["session"]))
            if session.cluster != cluster_name:
                raise _bad_request(
                    f"session {session.id!r} belongs to cluster "
                    f"{session.cluster!r}, not {cluster_name!r}"
                )
        report = served.run_batch(operations, session=session)
        answer = report.to_dict(include_values=bool(body.get("include_values", True)))
        answer["cluster"] = cluster_name
        if session is not None:
            answer["session"] = session.id
        return 200, answer, []

    # -- /churn/{verb} ---------------------------------------------------- #
    def _churn(self, verb: str, environ: dict[str, Any]) -> tuple[int, Any, list]:
        if verb not in CHURN_VERBS:
            raise _HttpAnswer(
                404,
                {
                    "error": "NotFound",
                    "message": f"unknown churn verb {verb!r}; "
                    f"expected one of {CHURN_VERBS}",
                    "status": 404,
                },
            )
        body = self._read_json(environ)
        cluster_name = str(body.get("cluster", "default"))
        served = self.manager.get_cluster(cluster_name)
        host = body.get("host")
        event = served.run_churn(
            verb,
            host=int(host) if host is not None else None,
            hosts=body.get("hosts"),
        )
        event["cluster"] = cluster_name
        return 200, event, []

    # -- /sessions -------------------------------------------------------- #
    def _sessions(
        self,
        method: str,
        segments: list[str],
        query: Mapping[str, str],
        environ: dict[str, Any],
    ) -> tuple[int, Any, list]:
        if len(segments) == 1:
            self._require(method, ("GET", "POST"))
            if method == "GET":
                return 200, {"sessions": self.manager.sessions(query.get("cluster"))}, []
            body = self._read_json(environ)
            cluster_name = str(body.get("cluster", "default"))
            session = self.manager.open_session(cluster_name)
            return 201, session.snapshot(), []
        session_id = segments[1]
        self._require(method, ("GET", "DELETE"))
        if method == "GET":
            return 200, self.manager.get_session(session_id).snapshot(), []
        return 200, self.manager.close_session(session_id), []


def create_app(
    manager: ClusterManager | None = None,
    initial: Iterable[Mapping[str, Any]] | None = None,
) -> ReproApp:
    """Build the WSGI app, optionally pre-creating clusters from specs."""
    app = ReproApp(manager)
    for spec in initial or ():
        app.manager.create_cluster(spec)
    return app
