"""JSON payload codecs: wire values in, structure-native payloads out.

The HTTP surface speaks JSON; the structures speak their own payload
types — ``Interval`` for one-dimensional range reporting, ``Box`` for
the skip-quadtree, ``PrefixRange`` for skip-tries, ``Window`` for the
trapezoid web, tuples for points.  :func:`decode_payload` is the one
place that translation lives, keyed on the registry name of the served
structure family, so every entry point (single ops, batches, the load
generator) decodes identically.

Malformed wire payloads raise :class:`ValueError`, which the WSGI layer
maps to HTTP 400 — a client error, distinct from the operation-status
taxonomy of :mod:`repro.server.taxonomy`.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.ranges import Interval
from repro.planar.skip_trapezoid import Window
from repro.spatial.geometry import Box
from repro.strings.skip_trie import PrefixRange

#: Families whose range payload is a closed 1-d interval ``[low, high]``.
_ONE_DIMENSIONAL = frozenset(
    {
        "skipweb1d",
        "bucket-skipweb1d",
        "skipgraph",
        "bucket-skipgraph",
        "skipnet",
        "det-skipnet",
        "non-skipgraph",
        "family-tree",
        "chord",
    }
)


def _two_numbers(payload: Any, what: str) -> tuple[float, float]:
    if isinstance(payload, Mapping):
        try:
            return float(payload["low"]), float(payload["high"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad {what} payload {payload!r}: {exc}") from exc
    if isinstance(payload, (list, tuple)) and len(payload) == 2:
        try:
            return float(payload[0]), float(payload[1])
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad {what} payload {payload!r}: {exc}") from exc
    raise ValueError(
        f"bad {what} payload {payload!r}; expected [low, high] or "
        '{"low": ..., "high": ...}'
    )


def _decode_range(structure: str, payload: Any) -> Any:
    if structure in _ONE_DIMENSIONAL:
        if isinstance(payload, Interval):
            return payload
        low, high = _two_numbers(payload, "interval")
        try:
            return Interval(low, high)
        except ValueError as exc:
            raise ValueError(str(exc)) from exc
    if structure == "skipquadtree":
        if isinstance(payload, Box):
            return payload
        if isinstance(payload, Mapping):
            corners = payload.get("lower"), payload.get("upper")
        elif isinstance(payload, (list, tuple)) and len(payload) == 2:
            corners = payload[0], payload[1]
        else:
            corners = None, None
        lower, upper = corners
        if not isinstance(lower, (list, tuple)) or not isinstance(upper, (list, tuple)):
            raise ValueError(
                f"bad box payload {payload!r}; expected [[x0, y0, ...], "
                '[x1, y1, ...]] or {"lower": [...], "upper": [...]}'
            )
        try:
            return Box(tuple(float(c) for c in lower), tuple(float(c) for c in upper))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad box payload {payload!r}: {exc}") from exc
    if structure == "skiptrie":
        if isinstance(payload, PrefixRange):
            return payload
        prefix = payload.get("prefix") if isinstance(payload, Mapping) else payload
        if not isinstance(prefix, str):
            raise ValueError(
                f"bad prefix payload {payload!r}; expected a string or "
                '{"prefix": ...}'
            )
        return PrefixRange(prefix)
    if structure == "skiptrapezoid":
        if isinstance(payload, Window):
            return payload
        if isinstance(payload, Mapping):
            bounds = [payload.get(k) for k in ("x_low", "x_high", "y_low", "y_high")]
        elif isinstance(payload, (list, tuple)) and len(payload) == 4:
            bounds = list(payload)
        else:
            bounds = [None]
        try:
            return Window(*(float(bound) for bound in bounds))
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"bad window payload {payload!r}; expected [x_low, x_high, "
                f"y_low, y_high] or the keyed equivalent: {exc}"
            ) from exc
    return payload


def decode_payload(structure: str, kind: str, payload: Any) -> Any:
    """Translate one wire payload into the structure's native payload type.

    ``structure`` is the registry name of the served family; ``kind`` is
    a canonical operation kind or one of the façade's aliases.  Scalars
    pass through untouched; JSON arrays become tuples (the points of the
    spatial and planar families); range payloads build the family's
    range object.
    """
    if kind in ("range", "range_search", "report"):
        return _decode_range(structure, payload)
    if isinstance(payload, (list, tuple)):
        return tuple(payload)
    return payload
