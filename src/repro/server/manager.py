"""Served state: named clusters, client sessions, and the serialization lock.

The service layer is a thin, honest shell around :class:`repro.api.Cluster`:

* :class:`ClusterManager` owns a name -> :class:`ServedCluster` map and a
  flat session table.  Cluster specs arrive as JSON dicts (the body of
  ``POST /clusters``) and build ordinary façade clusters — same registry,
  same knobs (``structure`` / ``topology`` / ``faults`` / ``storage`` by
  path / ``workers`` / ``round_budget``), so a served deployment is
  byte-identical to a locally constructed one.
* :class:`ServedCluster` wraps one cluster behind a **serialization
  lock**: every operation, batch, churn verb and dashboard read acquires
  it, so concurrent HTTP workers interleave at *operation* granularity —
  each request maps onto one :class:`~repro.engine.executor.BatchExecutor`
  batch, never onto a torn half-operation.  (The engine measures
  concurrency *inside* a batch, via rounds; the lock only orders whole
  batches, exactly like the façade's own single-threaded contract.)
* :class:`ServedSession` is a client-scoped measurement window: handle
  counters (messages, latency, rounds, retries, per-status counts) are
  accumulated from each operation the session runs, so per-session
  accounting is independent of how other sessions interleave — the
  property the load generator's byte-identity gate relies on.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Any, Mapping, Sequence

from repro.api.cluster import Cluster
from repro.api.results import BatchReport, OperationHandle, jsonable
from repro.net.faults import FaultPlan, faults_from_config, rule_from_config
from repro.server.codec import decode_payload
from repro.workloads import random_strings, uniform_keys, uniform_points


class UnknownResourceError(LookupError):
    """A named cluster or session does not exist (HTTP 404)."""


#: The spec keys ``POST /clusters`` accepts (anything else is a 400).
_SPEC_KEYS = frozenset(
    {
        "name",
        "structure",
        "items",
        "generate",
        "seed",
        "hosts",
        "memory_size",
        "mode",
        "workers",
        "topology",
        "faults",
        "round_budget",
        "max_retries",
        "storage",
        "snapshot_every",
        "options",
    }
)

#: Wire names of the single-operation endpoints -> façade methods.
OP_NAMES = ("get", "nearest", "insert", "delete", "range")

#: Churn verbs served under ``POST /churn/{verb}``.
CHURN_VERBS = ("join", "leave", "crash", "recover", "repair")


def _generate_items(generate: Mapping[str, Any], default_seed: int) -> list[Any]:
    """Build a ground set server-side from a seeded generator spec."""
    kind = generate.get("kind", "uniform")
    count = int(generate.get("count", 128))
    seed = int(generate.get("seed", default_seed))
    if count <= 0:
        raise ValueError(f"generate.count must be positive, got {count}")
    if kind == "uniform":
        return uniform_keys(
            count,
            seed=seed,
            low=float(generate.get("low", 0.0)),
            high=float(generate.get("high", 1_000_000.0)),
        )
    if kind == "strings":
        return random_strings(count, seed=seed)
    if kind == "points":
        return uniform_points(count, dimension=int(generate.get("dimension", 2)), seed=seed)
    raise ValueError(f"unknown generate.kind {kind!r}; expected 'uniform', 'strings' or 'points'")


def _resolve_fault_spec(faults: Any, seed: int) -> "FaultPlan | str | None":
    """Translate the wire ``faults`` field into what the façade accepts."""
    if faults is None or isinstance(faults, (str, FaultPlan)):
        return faults
    if isinstance(faults, Mapping):
        if faults.get("kind") == "plan":
            return faults_from_config(faults)
        rules = tuple(rule_from_config(rule) for rule in faults.get("rules", ()))
        if not rules:
            raise ValueError(f"fault spec {faults!r} contains no rules")
        return FaultPlan(rules, seed=int(faults.get("seed", seed)))
    raise ValueError(f"cannot interpret {faults!r} as a fault plan")


class ServedSession:
    """One client session: a measurement window over its own operations."""

    def __init__(self, session_id: str, cluster_name: str) -> None:
        self.id = session_id
        self.cluster = cluster_name
        self.open = True
        self.ops = 0
        self.batches = 0
        self.by_status: Counter[str] = Counter()
        self.messages = 0
        self.latency = 0
        self.rounds = 0
        self.retries = 0

    def record(self, handles: Sequence[OperationHandle]) -> None:
        for handle in handles:
            self.ops += 1
            self.by_status[handle.status] += 1
            self.messages += handle.messages
            self.latency += handle.latency
            self.rounds += handle.rounds
            self.retries += handle.retries

    def snapshot(self) -> dict[str, Any]:
        """Deterministic session report (no wall-clock fields)."""
        return {
            "session": self.id,
            "cluster": self.cluster,
            "open": self.open,
            "ops": self.ops,
            "batches": self.batches,
            "by_status": {status: self.by_status[status] for status in sorted(self.by_status)},
            "messages": self.messages,
            "latency": self.latency,
            "rounds": self.rounds,
            "retries": self.retries,
        }


class ServedCluster:
    """One named deployment behind its per-cluster serialization lock."""

    def __init__(self, name: str, cluster: Cluster, items_loaded: int) -> None:
        self.name = name
        self.cluster = cluster
        self.items_loaded = items_loaded
        self.lock = threading.RLock()
        self.started = time.monotonic()
        self.ops_total = 0
        self.batches_total = 0
        self.by_status: Counter[str] = Counter()
        self.messages_total = 0
        self.latency_total = 0
        self.retries_total = 0
        self.churn_events_total = 0
        self.repair_messages_total = 0
        self.repair_rounds_total = 0

    # -- operations ----------------------------------------------------- #
    def _record(self, handles: Sequence[OperationHandle]) -> None:
        for handle in handles:
            self.ops_total += 1
            self.by_status[handle.status] += 1
            self.messages_total += handle.messages
            self.latency_total += handle.latency
            self.retries_total += handle.retries

    def run_operation(
        self,
        op: str,
        payload: Any,
        origin_host: int | None = None,
        session: ServedSession | None = None,
    ) -> OperationHandle:
        """Run one wire operation under the cluster lock; record counters."""
        if op not in OP_NAMES:
            raise ValueError(f"unknown operation {op!r}; expected one of {OP_NAMES}")
        with self.lock:
            decoded = decode_payload(self.cluster.spec.name, op, payload)
            method = getattr(self.cluster, op)
            handle = method(decoded, origin_host=origin_host)
            self._record([handle])
            if session is not None:
                session.record([handle])
            return handle

    def run_batch(
        self,
        operations: Sequence[Mapping[str, Any]],
        session: ServedSession | None = None,
    ) -> BatchReport:
        """Run one wire batch as a single concurrent executor batch."""
        normalized = []
        for index, operation in enumerate(operations):
            if not isinstance(operation, Mapping) or "kind" not in operation:
                raise ValueError(
                    f"batch operation #{index} must be an object with 'kind' "
                    f"and 'payload', got {operation!r}"
                )
            kind = operation["kind"]
            payload = decode_payload(self.cluster.spec.name, kind, operation.get("payload"))
            normalized.append(
                {
                    "kind": kind,
                    "payload": payload,
                    "origin_host": operation.get("origin_host"),
                }
            )
        with self.lock:
            report = self.cluster.batch(normalized)
            self._record(report.handles)
            self.batches_total += 1
            if session is not None:
                session.record(report.handles)
                session.batches += 1
            return report

    # -- churn lifecycle ------------------------------------------------- #
    def run_churn(
        self, verb: str, host: int | None = None, hosts: Sequence[int] | None = None
    ) -> dict[str, Any]:
        """Apply one churn verb; returns a JSON-ready event/repair report."""
        if verb not in CHURN_VERBS:
            raise ValueError(f"unknown churn verb {verb!r}; expected one of {CHURN_VERBS}")
        with self.lock:
            if verb == "repair":
                if not hosts:
                    raise ValueError("repair needs a non-empty 'hosts' list")
                result = self.cluster.repair([int(h) for h in hosts])
                self.repair_messages_total += result.messages
                self.repair_rounds_total += result.rounds
                return {
                    "kind": "repair",
                    "hosts": list(hosts),
                    "records_moved": result.summary.records_moved,
                    "messages": result.messages,
                    "rounds": result.rounds,
                    "max_round_congestion": result.max_round_congestion,
                }
            if verb == "join":
                event = self.cluster.join_host()
            elif verb == "leave":
                event = self.cluster.leave_host(host)
            elif verb == "crash":
                event = self.cluster.crash_host(host)
            else:
                event = self.cluster.recover_host(host)
            self.churn_events_total += 1
            self.repair_messages_total += event.repair_messages
            self.repair_rounds_total += event.repair_rounds
            return {
                "kind": event.kind,
                "host": event.host,
                "records_moved": event.records_moved,
                "pointers_rewired": event.pointers_rewired,
                "repair_messages": event.repair_messages,
                "repair_rounds": event.repair_rounds,
            }

    # -- snapshots -------------------------------------------------------- #
    def describe(self) -> dict[str, Any]:
        """Deployment description for cluster listings (costs no messages)."""
        with self.lock:
            stats = self.cluster.stats().as_dict()
        return {
            "name": self.name,
            "structure": stats["structure"],
            "mode": self.cluster.mode,
            "workers": self.cluster.workers,
            "seed": self.cluster.seed,
            "items_loaded": self.items_loaded,
            "topology": (
                self.cluster.topology.describe()
                if self.cluster.topology is not None
                else None
            ),
            "faults": (
                self.cluster.faults.describe()
                if self.cluster.faults is not None
                else None
            ),
            "stats": stats,
        }

    def operations_snapshot(self) -> dict[str, Any]:
        """Lifetime operation counters (deterministic; no wall-clock)."""
        return {
            "total": self.ops_total,
            "batches": self.batches_total,
            "by_status": {
                status: self.by_status[status] for status in sorted(self.by_status)
            },
            "messages": self.messages_total,
            "latency": self.latency_total,
            "retries": self.retries_total,
        }

    def close(self) -> None:
        with self.lock:
            self.cluster.close()


class ClusterManager:
    """Every served cluster and session, behind one registry lock.

    The registry lock only guards the *maps* (create / lookup / remove);
    operation traffic serializes on each cluster's own lock, so requests
    against different clusters never contend.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clusters: dict[str, ServedCluster] = {}
        self._sessions: dict[str, ServedSession] = {}
        self._session_seq = 0
        self._sessions_closed = 0

    # -- clusters --------------------------------------------------------- #
    def create_cluster(self, spec: Mapping[str, Any]) -> ServedCluster:
        """Build and register one cluster from a wire spec dict."""
        unknown = set(spec) - _SPEC_KEYS
        if unknown:
            raise ValueError(
                f"unknown cluster spec key(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(_SPEC_KEYS)}"
            )
        name = str(spec.get("name", "default"))
        seed = int(spec.get("seed", 0))
        items = spec.get("items")
        if items is None and "generate" in spec:
            items = _generate_items(spec["generate"], seed)
        if items is None:
            raise ValueError(
                "cluster spec needs 'items' (a JSON array) or 'generate' "
                '(e.g. {"kind": "uniform", "count": 128})'
            )
        kwargs: dict[str, Any] = {
            "structure": spec.get("structure", "skipweb1d"),
            "items": [
                tuple(item) if isinstance(item, list) else item for item in items
            ],
            "seed": seed,
            "mode": spec.get("mode", "batched"),
            "faults": _resolve_fault_spec(spec.get("faults"), seed),
            "topology": spec.get("topology"),
            "round_budget": spec.get("round_budget"),
        }
        for key in ("hosts", "memory_size", "workers", "max_retries", "storage", "snapshot_every"):
            if spec.get(key) is not None:
                kwargs[key] = spec[key]
        kwargs.update(spec.get("options") or {})
        with self._lock:
            if name in self._clusters:
                raise ValueError(f"cluster {name!r} already exists")
            served = ServedCluster(name, Cluster(**kwargs), len(items))
            self._clusters[name] = served
            return served

    def get_cluster(self, name: str) -> ServedCluster:
        with self._lock:
            try:
                return self._clusters[name]
            except KeyError:
                raise UnknownResourceError(f"no cluster named {name!r}") from None

    def remove_cluster(self, name: str) -> dict[str, Any]:
        """Close and unregister one cluster (and its open sessions)."""
        with self._lock:
            try:
                served = self._clusters.pop(name)
            except KeyError:
                raise UnknownResourceError(f"no cluster named {name!r}") from None
            orphaned = [sid for sid, session in self._sessions.items() if session.cluster == name]
            for sid in orphaned:
                self._sessions.pop(sid).open = False
                self._sessions_closed += 1
        served.close()
        return {"closed": name, "sessions_closed": len(orphaned)}

    def clusters(self) -> list[ServedCluster]:
        with self._lock:
            return [self._clusters[name] for name in sorted(self._clusters)]

    # -- sessions --------------------------------------------------------- #
    def open_session(self, cluster_name: str) -> ServedSession:
        self.get_cluster(cluster_name)  # 404 before allocating an id
        with self._lock:
            self._session_seq += 1
            session = ServedSession(f"s{self._session_seq}", cluster_name)
            self._sessions[session.id] = session
            return session

    def get_session(self, session_id: str) -> ServedSession:
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise UnknownResourceError(f"no open session {session_id!r}") from None

    def close_session(self, session_id: str) -> dict[str, Any]:
        with self._lock:
            try:
                session = self._sessions.pop(session_id)
            except KeyError:
                raise UnknownResourceError(f"no open session {session_id!r}") from None
            self._sessions_closed += 1
        session.open = False
        return session.snapshot()

    def sessions(self, cluster_name: str | None = None) -> list[dict[str, Any]]:
        with self._lock:
            sessions = [
                session.snapshot()
                for session in self._sessions.values()
                if cluster_name is None or session.cluster == cluster_name
            ]
        return sorted(sessions, key=lambda s: int(s["session"][1:]))

    def session_counts(self, cluster_name: str | None = None) -> dict[str, int]:
        with self._lock:
            open_count = sum(
                1
                for session in self._sessions.values()
                if cluster_name is None or session.cluster == cluster_name
            )
            return {"open": open_count, "closed": self._sessions_closed}

    def close(self) -> None:
        """Close every served cluster (idempotent, like ``Cluster.close``)."""
        with self._lock:
            served = list(self._clusters.values())
            self._clusters.clear()
            self._sessions.clear()
        for cluster in served:
            cluster.close()


def describe_handle(handle: OperationHandle, **extra: Any) -> dict[str, Any]:
    """One wire-ready handle dict with endpoint context merged in."""
    data = handle.to_dict()
    data.update({key: jsonable(value) for key, value in extra.items()})
    return data
