"""Hosting: a threading ``wsgiref`` server for the service layer.

``wsgiref.simple_server`` is single-threaded by default, which would
make the per-cluster serialization lock unobservable; mixing in
:class:`socketserver.ThreadingMixIn` gives one daemon thread per request
so concurrent sessions genuinely contend on the lock, exactly like the
deployment the paper's congestion bounds describe.  Request logging is
silenced (the load generator would otherwise drown stderr); errors still
surface through the JSON error taxonomy, not the socket.
"""

from __future__ import annotations

import threading
from socketserver import ThreadingMixIn
from typing import Callable
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """One daemon thread per request; exits promptly with the process."""

    daemon_threads = True
    #: A backlog longer than the default 5 so hammer bursts never see
    #: connection-refused on platforms with small listen queues.
    request_queue_size = 64


class QuietRequestHandler(WSGIRequestHandler):
    """The stock handler minus per-request stderr logging."""

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass


def make_http_server(app: Callable, host: str = "127.0.0.1", port: int = 0) -> WSGIServer:
    """Bind the app; ``port=0`` asks the OS for a free port (see
    ``server.server_address[1]`` for the one it picked)."""
    return make_server(
        host, port, app, server_class=ThreadingWSGIServer,
        handler_class=QuietRequestHandler,
    )


def serve_background(
    app: Callable, host: str = "127.0.0.1", port: int = 0
) -> tuple[WSGIServer, threading.Thread]:
    """Start serving on a daemon thread; caller owns ``server.shutdown()``."""
    server = make_http_server(app, host, port)
    thread = threading.Thread(target=server.serve_forever, name="repro-serve", daemon=True)
    thread.start()
    return server, thread


def serve_forever(
    app: Callable,
    host: str = "127.0.0.1",
    port: int = 8642,
    ready_file: str | None = None,
) -> None:
    """Serve until interrupted; optionally announce the bound address.

    ``ready_file`` (if given) receives one line, ``host:port``, *after*
    the socket is bound — the CI gate and scripts poll it instead of
    racing the listener, and it is how a ``--port 0`` caller learns the
    OS-assigned port.
    """
    server = make_http_server(app, host, port)
    bound_port = server.server_address[1]
    if ready_file:
        with open(ready_file, "w", encoding="utf-8") as handle:
            handle.write(f"{host}:{bound_port}\n")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
