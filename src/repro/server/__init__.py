"""repro.server — the HTTP/JSON service layer over the cluster façade.

Stdlib-only (``wsgiref`` + ``threading``): :func:`create_app` builds the
WSGI application, :mod:`repro.server.runner` hosts it, and
:func:`run_hammer` is the seeded load generator the CI serve-gate runs
against it.  ``python -m repro.cli serve`` / ``hammer`` close the loop
from the command line.
"""

from repro.server.dashboard import DASHBOARD_HTML, collect_stats
from repro.server.hammer import (
    HammerReport,
    request_json,
    run_hammer,
    wait_until_ready,
)
from repro.server.manager import (
    ClusterManager,
    ServedCluster,
    ServedSession,
    UnknownResourceError,
)
from repro.server.runner import (
    ThreadingWSGIServer,
    make_http_server,
    serve_background,
    serve_forever,
)
from repro.server.taxonomy import (
    ERROR_HTTP,
    STATUS_HTTP,
    error_body,
    http_status_for,
    http_status_for_error,
)
from repro.server.wsgi import ReproApp, create_app

__all__ = [
    "DASHBOARD_HTML",
    "ERROR_HTTP",
    "STATUS_HTTP",
    "ClusterManager",
    "HammerReport",
    "ReproApp",
    "ServedCluster",
    "ServedSession",
    "ThreadingWSGIServer",
    "UnknownResourceError",
    "collect_stats",
    "create_app",
    "error_body",
    "http_status_for",
    "http_status_for_error",
    "make_http_server",
    "request_json",
    "run_hammer",
    "serve_background",
    "serve_forever",
    "wait_until_ready",
]
