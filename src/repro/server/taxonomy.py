"""The HTTP error taxonomy: operation statuses and typed errors on the wire.

Two mappings, both total by construction:

* :data:`STATUS_HTTP` maps the five :class:`~repro.api.results`
  operation statuses onto response codes — ``ok`` is 200,
  ``unsupported`` is 422 (the structure can *never* perform the
  operation, retrying is pointless), ``failed`` is 409 (this attempt
  conflicted: a dead host, a duplicate insert, an exhausted retry
  budget), and the graceful-degradation pair ``timed_out`` / ``gave_up``
  is 503 (the deployment, not the request, is unhealthy — retry later).
* :func:`http_status_for_error` maps every typed
  :mod:`repro.errors` exception (and plain client errors) onto a code,
  used for errors raised *outside* an operation handle — a malformed
  cluster spec, a churn verb on a dead deployment, storage trouble.

Either way the response body carries the typed error name, so the
client-side taxonomy (``handle.status`` plus ``repro.errors`` class
names) survives the wire byte-for-byte.
"""

from __future__ import annotations

from typing import Any

from repro.api.results import (
    STATUS_FAILED,
    STATUS_GAVE_UP,
    STATUS_OK,
    STATUS_TIMED_OUT,
    STATUS_UNSUPPORTED,
)
from repro.errors import (
    ChurnError,
    FaultInjectedError,
    HostFailedError,
    OperationTimedOutError,
    QueryError,
    ReproError,
    StorageError,
    StructureError,
    UnknownHostError,
    UnsupportedOperationError,
    UpdateError,
)

#: Operation status -> HTTP response code for single-operation endpoints.
#: (Batch endpoints always answer 200: a batch is a *report*, and its
#: per-operation statuses travel inside the handles.)
STATUS_HTTP: dict[str, int] = {
    STATUS_OK: 200,
    STATUS_UNSUPPORTED: 422,
    STATUS_FAILED: 409,
    STATUS_TIMED_OUT: 503,
    STATUS_GAVE_UP: 503,
}

#: Typed repro errors -> HTTP code, most specific class first (the lookup
#: walks this in order with isinstance, so subclasses can shadow bases).
ERROR_HTTP: tuple[tuple[type[Exception], int], ...] = (
    (UnsupportedOperationError, 422),
    (OperationTimedOutError, 503),
    (FaultInjectedError, 503),
    (HostFailedError, 503),
    (UnknownHostError, 404),
    (QueryError, 409),
    (UpdateError, 409),
    (ChurnError, 409),
    (StructureError, 409),
    (StorageError, 409),
    (ReproError, 409),
    (ValueError, 400),
    (KeyError, 400),
    (TypeError, 400),
)

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def reason_phrase(code: int) -> str:
    """The HTTP reason phrase for ``code`` (e.g. ``409 -> "Conflict"``)."""
    return _REASONS.get(code, "Unknown")


def http_status_for(status: str) -> int:
    """HTTP response code for one operation-handle status."""
    try:
        return STATUS_HTTP[status]
    except KeyError:
        raise ValueError(f"unknown operation status {status!r}") from None


def http_status_for_error(error: BaseException) -> int:
    """HTTP response code for one typed exception (500 for the unknown)."""
    for cls, code in ERROR_HTTP:
        if isinstance(error, cls):
            return code
    return 500


def error_body(error: BaseException, status: int | None = None) -> dict[str, Any]:
    """The JSON body of an error response: typed name, message, code."""
    code = status if status is not None else http_status_for_error(error)
    return {
        "error": type(error).__name__,
        "message": str(error),
        "status": code,
    }
