"""Skip graphs (Aspnes–Shah) and SkipNet (Harvey et al.) — Table 1 row 1.

Both structures place one key per host and give every key a random
*membership vector*; the keys sharing an ``i``-bit prefix of their vectors
form the level-``i`` groups, and every key keeps its predecessor and
successor within each of its groups.  A search walks from the top level
down, always moving toward the target without overshooting, for an
expected ``O(log n)`` messages with ``O(log n)`` routing entries per host.

SkipNet's presentation differs (doubly-linked *rings* keyed by a name ID,
with numeric routing layered on top) but its cost profile under the
paper's measures — ``H = n``, ``M = O(log n)``, ``C = O(log n)``,
``Q = Õ(log n)``, ``U = Õ(log n)`` — is the same, which is why Table 1
lists them on a single row.  :class:`SkipNet` is therefore implemented as
the same overlay with ring-closure pointers (the level lists wrap
around), so both rows can be measured independently.
"""

from __future__ import annotations

import math
import random
from typing import Any, Sequence

from repro.baselines.base import DistributedOrderedStructure
from repro.net.naming import HostId
from repro.net.network import Network


class SkipGraph(DistributedOrderedStructure):
    """A skip graph over numeric keys, one key per host."""

    name = "skip graph"
    #: Whether level lists wrap around (SkipNet-style rings).
    ring_topology = False

    def __init__(
        self,
        keys: Sequence[float],
        network: Network | None = None,
        seed: int = 0,
    ) -> None:
        self._vectors: dict[float, tuple[int, ...]] = {}
        self._vector_rng = random.Random(seed)
        # The vector length (number of levels) is fixed at construction so
        # that a single insert does not change every host's table merely
        # because ``⌈log₂ n⌉`` ticked over; it only grows when the key set
        # far outgrows the original capacity.
        self._fixed_vector_length = max(1, math.ceil(math.log2(max(2, len(set(keys))))))
        super().__init__(keys, network=network, seed=seed)

    # ------------------------------------------------------------------ #
    # membership vectors
    # ------------------------------------------------------------------ #
    def _vector_length(self) -> int:
        needed = max(1, math.ceil(math.log2(max(2, len(self._keys)))))
        if needed > self._fixed_vector_length + 2:
            self._fixed_vector_length = needed
        return self._fixed_vector_length

    def _vector(self, key: float) -> tuple[int, ...]:
        length = self._vector_length()
        existing = self._vectors.get(key)
        if existing is None or len(existing) < length:
            extra = tuple(
                self._vector_rng.randrange(2)
                for _ in range(length - len(existing or ()))
            )
            existing = (existing or ()) + extra
            self._vectors[key] = existing
        return existing[:length]

    def _after_ground_set_change(self) -> None:
        for key in self._keys:
            self._vector(key)

    # ------------------------------------------------------------------ #
    # routing tables
    # ------------------------------------------------------------------ #
    def _routing_tables(self) -> dict[HostId, Any]:
        length = self._vector_length()
        tables: dict[HostId, Any] = {}
        # Group keys by membership-vector prefix, level by level.
        levels: list[dict[tuple[int, ...], list[float]]] = []
        for level in range(length + 1):
            groups: dict[tuple[int, ...], list[float]] = {}
            for key in self._keys:
                groups.setdefault(self._vector(key)[:level], []).append(key)
            for members in groups.values():
                members.sort()
            levels.append(groups)
        for key in self._keys:
            neighbor_levels: list[dict[str, float | None]] = []
            for level in range(length + 1):
                members = levels[level][self._vector(key)[:level]]
                index = members.index(key)
                left: float | None = members[index - 1] if index > 0 else None
                right: float | None = (
                    members[index + 1] if index + 1 < len(members) else None
                )
                if self.ring_topology and len(members) > 1:
                    if left is None:
                        left = members[-1]
                    if right is None:
                        right = members[0]
                neighbor_levels.append({"left": left, "right": right})
            tables[self._host_of_key[key]] = {"key": key, "levels": neighbor_levels}
        return tables

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _route(self, table: Any, current_key: float, query: float) -> float | None:
        if query == current_key:
            return None
        levels = table["levels"]
        if query > current_key:
            for level in range(len(levels) - 1, -1, -1):
                right = levels[level]["right"]
                if right is not None and current_key < right <= query:
                    return right
            return None
        for level in range(len(levels) - 1, -1, -1):
            left = levels[level]["left"]
            if left is not None and query <= left < current_key:
                return left
        return None


class SkipNet(SkipGraph):
    """SkipNet: the same overlay with ring-closed level lists.

    See the module docstring: the measured Table 1 costs coincide with
    skip graphs; the ring closure only changes which pointer a host holds
    when it is the smallest or largest key of a group.
    """

    name = "SkipNet"
    ring_topology = True

    def _route(self, table: Any, current_key: float, query: float) -> float | None:
        if query == current_key:
            return None
        levels = table["levels"]
        # Ring pointers may wrap; only follow hops that make progress
        # toward the query without overshooting, as in numeric routing.
        if query > current_key:
            for level in range(len(levels) - 1, -1, -1):
                right = levels[level]["right"]
                if right is not None and current_key < right <= query:
                    return right
            return None
        for level in range(len(levels) - 1, -1, -1):
            left = levels[level]["left"]
            if left is not None and query <= left < current_key:
                return left
        return None
