"""Prior distributed structures compared against skip-webs in Table 1.

Every row of the paper's Table 1 is implemented so the comparison can be
measured rather than quoted:

* :mod:`repro.baselines.skiplist` — the classic (centralised) skip list
  of Figure 1; the conceptual ancestor of everything else.
* :mod:`repro.baselines.skipgraph` — skip graphs (Aspnes–Shah) and
  SkipNet (Harvey et al.), one key per host, ``O(log n)`` search.
* :mod:`repro.baselines.non_skipgraph` — NoN skip graphs (Manku, Naor,
  Wieder): neighbour-of-neighbour lookahead, ``O(log n / log log n)``
  search at the price of ``O(log² n)`` memory.
* :mod:`repro.baselines.family_tree` — family trees (Zatloukal–Harvey):
  ``O(1)`` pointers per host (simplified construction, see module docs).
* :mod:`repro.baselines.det_skipnet` — deterministic SkipNet
  (Harvey–Munro): deterministic promotions, ``O(log n)`` search,
  ``O(log² n)`` updates.
* :mod:`repro.baselines.bucket_skipgraph` — bucket skip graphs (Aspnes,
  Kirsch, Krishnamurthy): ``H < n`` hosts, contiguous key buckets.
* :mod:`repro.baselines.dht_chord` — a Chord DHT, included to demonstrate
  why plain DHTs cannot serve the richer queries (§1.2).
"""

from repro.baselines.base import DistributedOrderedStructure, SearchOutcome
from repro.baselines.skiplist import SkipList
from repro.baselines.skipgraph import SkipGraph, SkipNet
from repro.baselines.non_skipgraph import NoNSkipGraph
from repro.baselines.family_tree import FamilyTreeOverlay
from repro.baselines.det_skipnet import DeterministicSkipNet
from repro.baselines.bucket_skipgraph import BucketSkipGraph
from repro.baselines.dht_chord import ChordDHT

__all__ = [
    "DistributedOrderedStructure",
    "SearchOutcome",
    "SkipList",
    "SkipGraph",
    "SkipNet",
    "NoNSkipGraph",
    "FamilyTreeOverlay",
    "DeterministicSkipNet",
    "BucketSkipGraph",
    "ChordDHT",
]

from repro.api.registry import StructureSpec, register_structure


def _overlay_factories(cls):
    """Factory pair for the shared ``(keys, network=None, seed=0)`` signature."""

    def factory(items, *, network=None, seed=0, **options):
        return cls(items, network=network, seed=seed, **options)

    def bulk(items, *, network=None, seed=0, **options):
        return cls.build_from_sorted(items, network=network, seed=seed, **options)

    return factory, bulk


for _name, _cls, _description in (
    ("skipgraph", SkipGraph, "skip graph (Aspnes-Shah): one key per host, O(log n) search"),
    ("skipnet", SkipNet, "SkipNet (Harvey et al.): ring-ordered skip graph variant"),
    ("non-skipgraph", NoNSkipGraph, "NoN skip graph: neighbour-of-neighbour lookahead"),
    ("family-tree", FamilyTreeOverlay, "family tree (Zatloukal-Harvey): O(1) pointers per host"),
    ("det-skipnet", DeterministicSkipNet, "deterministic SkipNet (Harvey-Munro)"),
    ("bucket-skipgraph", BucketSkipGraph, "bucket skip graph: H < n hosts, contiguous buckets"),
):
    _factory, _bulk = _overlay_factories(_cls)
    register_structure(
        StructureSpec(
            name=_name,
            cls=_cls,
            factory=_factory,
            bulk_factory=_bulk,
            description=_description,
        )
    )


def _chord(items, *, network=None, seed=0, **options):
    # Chord's placement is pure hashing; ``seed`` is accepted for
    # interface uniformity but has nothing to influence.
    return ChordDHT(items, network=network, **options)


def _chord_bulk(items, *, network=None, seed=0, **options):
    return ChordDHT.build_from_sorted(items, network=network, **options)


register_structure(
    StructureSpec(
        name="chord",
        cls=ChordDHT,
        factory=_chord,
        bulk_factory=_chord_bulk,
        supports_range=False,
        supports_updates=False,
        description="Chord DHT: exact-match only; hashing destroys order (§1.2)",
    )
)
