"""NoN skip graphs (Manku, Naor, Wieder) — Table 1 row 2.

"Know thy neighbour's neighbour": every host stores, in addition to its
own skip-graph neighbours, the neighbour lists *of* those neighbours.
When routing, a host considers every key reachable in one or two overlay
hops and sends the query directly to the best of them — one message, two
hops' worth of progress.  This improves the expected query cost to
``O(log n / log log n)`` at the price of ``O(log² n)`` routing entries per
host (and correspondingly higher congestion and update cost), which is
exactly the trade-off Table 1 records and the skip-web avoids.
"""

from __future__ import annotations

from typing import Any

from repro.baselines.skipgraph import SkipGraph
from repro.net.naming import HostId


class NoNSkipGraph(SkipGraph):
    """A skip graph with neighbour-of-neighbour lookahead tables."""

    name = "NoN skip graph"

    def _routing_tables(self) -> dict[HostId, Any]:
        base_tables = super()._routing_tables()
        by_key: dict[float, Any] = {
            table["key"]: table for table in base_tables.values()
        }

        def neighbor_keys(key: float) -> list[float]:
            table = by_key[key]
            found: set[float] = set()
            for level in table["levels"]:
                for side in ("left", "right"):
                    neighbor = level[side]
                    if neighbor is not None and neighbor != key:
                        found.add(neighbor)
            return sorted(found)

        enriched: dict[HostId, Any] = {}
        for host_id, table in base_tables.items():
            key = table["key"]
            direct = neighbor_keys(key)
            lookahead: set[float] = set()
            for neighbor in direct:
                lookahead.update(neighbor_keys(neighbor))
            lookahead.discard(key)
            lookahead.difference_update(direct)
            enriched[host_id] = {
                "key": key,
                "levels": table["levels"],
                "direct": direct,
                "lookahead": sorted(lookahead),
            }
        return enriched

    def _route(self, table: Any, current_key: float, query: float) -> float | None:
        if query == current_key:
            return None
        candidates = [
            candidate
            for candidate in list(table["direct"]) + list(table["lookahead"])
            if (current_key < candidate <= query) or (query <= candidate < current_key)
        ]
        if not candidates:
            return None
        # Jump straight to the known key closest to the query (direct or
        # two hops away — either way it is a single message).
        return min(candidates, key=lambda candidate: abs(candidate - query))
