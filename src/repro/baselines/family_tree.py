"""Family trees (Zatloukal–Harvey) — Table 1 row 3, simplified.

The defining property of family trees is *constant degree*: every host
keeps O(1) pointers to other hosts yet searches and updates still take
expected ``O(log n)`` messages.  The full construction (a randomized
ordered tree with sibling and "family" pointers) is intricate; this
module reproduces the row of Table 1 with a simpler overlay that has the
same measured costs:

* the keys are organised as a **treap** — a binary search tree whose heap
  priorities are derived by hashing the key, so the expected depth is
  ``O(log n)`` and the shape is history-independent;
* every host stores its parent, its two children and its subtree's key
  interval — six entries, i.e. ``M = O(1)``;
* a search climbs from the origin towards the root while the query lies
  outside the current subtree interval, then descends — expected
  ``O(log n)`` messages;
* an insert or delete changes the tables of the hosts along one root-to-
  leaf path (expected ``O(log n)``), which is what the update measurement
  charges.

The simplification (treap instead of the original construction) is
recorded in DESIGN.md; the quantities Table 1 compares — ``H``, ``M``,
``C``, ``Q``, ``U`` — have the same asymptotics.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.baselines.base import DistributedOrderedStructure
from repro.net.naming import HostId


def _priority(key: float) -> int:
    """A deterministic pseudo-random heap priority for a key."""
    digest = hashlib.blake2b(repr(float(key)).encode("utf8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class FamilyTreeOverlay(DistributedOrderedStructure):
    """A constant-degree ordered overlay (treap-shaped), one key per host."""

    name = "family tree"

    # ------------------------------------------------------------------ #
    # treap shape
    # ------------------------------------------------------------------ #
    def _treap_children(self) -> dict[float, dict[str, float | None]]:
        """Compute parent/child relations of the treap over the current keys.

        ``lo``/``hi`` stored per node are the node's *responsibility
        interval* (the open key range delegated to its subtree by its
        ancestors), not the min/max of the keys actually present — routing
        must climb exactly while the query is outside the responsibility
        interval, otherwise a query falling in a gap of the subtree would
        bounce between parent and child forever.
        """
        keys = self._keys
        relations: dict[float, dict[str, float | None]] = {}
        # Iterative construction to avoid recursion limits on large sets.
        stack: list[tuple[int, int, float | None, float, float]] = [
            (0, len(keys), None, float("-inf"), float("inf"))
        ]
        while stack:
            lo, hi, parent, range_lo, range_hi = stack.pop()
            if lo >= hi:
                continue
            root_index = max(range(lo, hi), key=lambda index: _priority(keys[index]))
            root = keys[root_index]
            left_subtree = keys[lo:root_index]
            right_subtree = keys[root_index + 1 : hi]
            relations[root] = {
                "parent": parent,
                "left": max(left_subtree, key=_priority) if left_subtree else None,
                "right": max(right_subtree, key=_priority) if right_subtree else None,
                "lo": range_lo,
                "hi": range_hi,
            }
            stack.append((lo, root_index, root, range_lo, root))
            stack.append((root_index + 1, hi, root, root, range_hi))
        return relations

    def _routing_tables(self) -> dict[HostId, Any]:
        relations = self._treap_children()
        tables: dict[HostId, Any] = {}
        for key, relation in relations.items():
            tables[self._host_of_key[key]] = {"key": key, **relation}
        return tables

    def _route(self, table: Any, current_key: float, query: float) -> float | None:
        if query == current_key:
            return None
        lo, hi = table["lo"], table["hi"]
        # Climb while the query is outside this subtree's responsibility
        # interval (open, because the boundaries are ancestor keys).
        if not (lo < query < hi) and table["parent"] is not None:
            return table["parent"]
        if query < current_key:
            return table["left"]
        return table["right"]
