"""Shared machinery for the Table 1 baseline structures.

Every baseline is a *distributed ordered dictionary*: keys live on hosts,
each host keeps a routing table (its neighbours at various levels,
fingers, tree pointers, ...), and a search routes greedily from an origin
host to the host responsible for the query, one message per hop.

To keep the eight baselines small and uniform they share this pattern:

* routing tables are *computed* centrally from the global key set (the
  simulator knows everything), but *stored* on the hosts through the
  network's slot store, so per-host memory ``M`` is measured rather than
  asserted;
* searches run exclusively over the stored tables via
  :class:`repro.net.rpc.Traversal`, so query messages ``Q(n)`` are counted
  exactly;
* updates recompute the affected tables and charge one message per host
  whose stored table actually changed (plus the search that locates the
  update position), mirroring how the skip-web update protocol is
  accounted — see :mod:`repro.core.update`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from statistics import mean
from typing import Any, Iterable, Sequence

from repro.core.bulkload import charge_construction, is_strictly_increasing
from repro.core.range_query import (
    DEFAULT_FAN_OUT,
    RangeBranchReport,
    RangeQueryResult,
    assemble_range_result,
    partition_walks,
)
from repro.core.ranges import coerce_interval, interval_anchor
from repro.engine.repair import MigrationSummary
from repro.engine.steps import StepCursor, StepGenerator, local_steps, run_immediate
from repro.errors import ChurnError, QueryError, UpdateError
from repro.net.congestion import CongestionReport, congestion_report
from repro.net.message import MessageKind
from repro.net.naming import Address, HostId
from repro.net.network import Network


@dataclass(frozen=True)
class SearchOutcome:
    """Result of one search on a baseline structure."""

    query: float
    nearest: float
    predecessor: float | None
    successor: float | None
    exact: bool
    messages: int
    hosts_visited: tuple[HostId, ...]


@dataclass(frozen=True)
class BaselineUpdateOutcome:
    """Result of one insert/delete on a baseline structure."""

    key: float
    kind: str
    messages: int
    search_messages: int
    propagate_messages: int
    hosts_touched: int


class DistributedOrderedStructure(abc.ABC):
    """Base class: a set of numeric keys spread over hosts with routing tables.

    Subclasses implement :meth:`_routing_tables` (the full routing state,
    host by host) and :meth:`_route` (one greedy routing step).  Everything
    else — storage, measurement, the update accounting — is shared.
    """

    #: Row label used in Table 1 output.
    name: str = "baseline"

    def __init__(
        self,
        keys: Sequence[float],
        network: Network | None = None,
        seed: int = 0,
    ) -> None:
        converted = [float(key) for key in keys]
        if is_strictly_increasing(converted):
            self._keys = converted  # O(n) bulk-load fast path
        else:
            self._keys = sorted(set(converted))
        if not self._keys:
            raise QueryError(f"{self.name}: needs at least one key")
        self.seed = seed
        self.network = network if network is not None else Network()
        self._table_addresses: dict[HostId, Address] = {}
        self._host_of_key: dict[float, HostId] = {}
        # Lazily-built inverse of _host_of_key (host -> one resident key),
        # used to resolve batch origins in O(1); invalidated on updates.
        self._origin_index: dict[HostId, float] | None = None
        #: CONSTRUCTION messages charged by a bulk-load build (0 otherwise).
        self.construction_messages = 0
        self._setup_hosts()
        self._install_tables(charge_messages=False)

    @classmethod
    def build_from_sorted(
        cls, keys: Sequence[float], **kwargs: Any
    ) -> "DistributedOrderedStructure":
        """Bulk-load constructor over pre-sorted, deduplicated ``keys``.

        The constructor verifies sortedness in O(n) and skips its
        defensive sort; one CONSTRUCTION ledger message is then charged
        per routing table installed on a host other than the coordinator
        (the first key's home), making the bulk-load traffic measurable.
        """
        structure = cls(keys, **kwargs)
        coordinator = structure._host_of_key[structure._keys[0]]
        structure.construction_messages = charge_construction(
            structure.network, coordinator, structure._table_addresses
        )
        return structure

    # ------------------------------------------------------------------ #
    # host layout
    # ------------------------------------------------------------------ #
    def _setup_hosts(self) -> None:
        """Create one host per key (subclasses with ``H < n`` override)."""
        existing = [host.host_id for host in self.network.hosts()]
        needed = len(self._keys) - len(existing)
        if needed > 0:
            self.network.add_hosts(needed)
        host_ids = [host.host_id for host in self.network.hosts()]
        for index, key in enumerate(self._keys):
            self._host_of_key[key] = host_ids[index % len(host_ids)]

    def host_of(self, key: float) -> HostId:
        """The home host of a stored key."""
        return self._host_of_key[key]

    # ------------------------------------------------------------------ #
    # routing tables
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _routing_tables(self) -> dict[HostId, Any]:
        """Compute the complete routing table of every host.

        A table is any picklable value; its *size in stored entries* is
        what :meth:`_table_size` reports for memory accounting.
        """

    @abc.abstractmethod
    def _route(self, table: Any, current_key: float, query: float) -> float | None:
        """One greedy routing step.

        Given the routing table stored at the host responsible for
        ``current_key``, return the key whose host the search should visit
        next, or ``None`` when ``current_key``'s host is the final
        destination for ``query``.
        """

    def _table_size(self, table: Any) -> int:
        """Number of stored entries in a routing table (for ``M`` accounting)."""
        if isinstance(table, dict):
            return sum(self._table_size(value) for value in table.values())
        if isinstance(table, (list, tuple, set)):
            return sum(self._table_size(value) for value in table)
        return 1

    def _install_tables(self, charge_messages: bool) -> tuple[int, set[HostId]]:
        """(Re)store every host's routing table; returns (changed hosts, set).

        Tables that did not change keep their slots untouched; changed
        tables are replaced in place.  The caller decides whether the
        changes should be charged as update messages.
        """
        tables = self._routing_tables()
        changed: set[HostId] = set()
        for host_id, table in tables.items():
            address = self._table_addresses.get(host_id)
            if address is None:
                self._table_addresses[host_id] = self.network.store(host_id, table)
                changed.add(host_id)
                continue
            # Bookkeeping access: table repair applies atomically and must
            # not be interruptible by an injected host failure mid-update.
            if self.network.load(address, check_alive=False) != table:
                self.network.replace(address, table)
                changed.add(host_id)
        # Drop tables of hosts that no longer have one (rare: shrinking).
        for host_id in list(self._table_addresses):
            if host_id not in tables:
                self.network.free(self._table_addresses.pop(host_id))
                changed.add(host_id)
        # Memory accounting: the slot count is one per table, so expose the
        # entry count via per-host owned-item bookkeeping instead.
        for host in self.network.hosts():
            host.reset_reference_counts()
        for host_id, table in tables.items():
            self.network.host(host_id).note_owned_items(0)
        return len(changed), changed

    # ------------------------------------------------------------------ #
    # searching
    # ------------------------------------------------------------------ #
    def _origin_key_for(
        self, origin_host: HostId | None, origin_key: float | None
    ) -> float:
        """Resolve the key a search starts from (protocol passes hosts, not keys)."""
        if origin_key is not None:
            return float(origin_key)
        if origin_host is not None:
            key = self._origin_index_lookup(origin_host)
            if key is not None:
                return key
        return self._keys[0]

    def _origin_index_lookup(self, origin_host: HostId) -> float | None:
        """A key stored at ``origin_host``, via the cached inverse map.

        The cache is dropped in the same uninterrupted step as every
        ``_host_of_key`` mutation (insert/delete), so it is never stale.
        """
        if self._origin_index is None:
            index: dict[HostId, float] = {}
            for key, host in self._host_of_key.items():
                index.setdefault(host, key)
            self._origin_index = index
        return self._origin_index.get(origin_host)

    def search_steps(
        self,
        query: float,
        origin_host: HostId | None = None,
        origin_key: float | None = None,
    ) -> StepGenerator:
        """The greedy routing walk as a resumable step generator."""
        query = float(query)
        origin_key = self._origin_key_for(origin_host, origin_key)
        if origin_key not in self._host_of_key:
            raise QueryError(f"{self.name}: origin key {origin_key!r} is not stored")
        cursor = StepCursor(self._host_of_key[origin_key])
        current_key = origin_key
        safety = 4 * len(self._keys) + 16
        for _ in range(safety):
            table = self.network.load(self._table_addresses[self._host_of_key[current_key]])
            next_key = self._route(table, current_key, query)
            if next_key is None:
                return self._finish(query, current_key, cursor)
            yield from cursor.hop_to(self._host_of_key[next_key])
            current_key = next_key
        raise QueryError(f"{self.name}: routing did not converge for query {query!r}")

    def search(
        self,
        query: float,
        origin_key: float | None = None,
        kind: MessageKind = MessageKind.QUERY,
    ) -> SearchOutcome:
        """Route a nearest-neighbour search for ``query`` through the overlay."""
        resolved = self._origin_key_for(None, origin_key)
        origin = self._host_of_key.get(resolved)
        gen = self.search_steps(query, origin_key=resolved)
        return run_immediate(self.network, gen, origin, kind=kind)

    def _finish(
        self, query: float, final_key: float, traversal: StepCursor
    ) -> SearchOutcome:
        index = self._keys.index(final_key)
        predecessor = None
        successor = None
        if final_key <= query:
            predecessor = final_key
            successor = self._keys[index + 1] if index + 1 < len(self._keys) else None
        else:
            successor = final_key
            predecessor = self._keys[index - 1] if index > 0 else None
        candidates = [value for value in (predecessor, successor) if value is not None]
        nearest = min(candidates, key=lambda value: abs(value - query))
        return SearchOutcome(
            query=query,
            nearest=nearest,
            predecessor=predecessor,
            successor=successor,
            exact=(query in self._host_of_key),
            messages=traversal.hops,
            hosts_visited=traversal.path_tuple(),
        )

    # ------------------------------------------------------------------ #
    # range reporting (output-sensitive; ordered overlays support it)
    # ------------------------------------------------------------------ #
    def _range_report_walk(
        self,
        keys: Sequence[float],
        start_host: HostId,
    ) -> StepGenerator:
        """One report sub-walk: hop through the home hosts of ``keys`` in order."""
        cursor = StepCursor(start_host)
        for key in keys:
            yield from cursor.hop_to(self._host_of_key[key])
        return RangeBranchReport(
            values=tuple(keys),
            messages=cursor.hops,
            hosts_visited=cursor.path_tuple(),
        )

    def range_steps(
        self,
        query_range: Any,
        origin_host: HostId | None = None,
        origin_key: float | None = None,
        fan_out: int = DEFAULT_FAN_OUT,
    ) -> StepGenerator:
        """Output-sensitive key-range reporting over the ordered overlay.

        Orderedness is what makes this possible at all (the point §1.2
        makes against plain DHTs): the search locates the low endpoint in
        the overlay's usual O(log n) messages, then forked sub-walks hop
        successor by successor through the matched keys' home hosts —
        one message per key in these one-key-per-host designs, so
        O(log n + k) total.
        """
        interval = coerce_interval(query_range)
        anchor = interval_anchor(interval, self._keys[0])
        search = yield from self.search_steps(
            anchor, origin_host=origin_host, origin_key=origin_key
        )
        matched = [key for key in self._keys if interval.contains(key)]
        start_host = (
            search.hosts_visited[-1]
            if search.hosts_visited
            else self._host_of_key[self._origin_key_for(origin_host, origin_key)]
        )
        chunks = partition_walks(matched, fan_out)
        cursor = StepCursor(start_host)
        reports = yield from cursor.fork(
            [self._range_report_walk(chunk, start_host) for chunk in chunks]
        )
        return assemble_range_result(
            interval,
            reports,
            descent_messages=search.messages,
            descent_hosts=search.hosts_visited,
            origin_host=search.hosts_visited[0] if search.hosts_visited else start_host,
            levels_descended=0,
        )

    def range_search(
        self,
        low: float,
        high: float,
        origin_key: float | None = None,
        fan_out: int = DEFAULT_FAN_OUT,
    ) -> RangeQueryResult:
        """Immediate-mode key-range reporting; see :meth:`range_steps`."""
        resolved = self._origin_key_for(None, origin_key)
        origin = self._host_of_key.get(resolved)
        gen = self.range_steps(
            (low, high), origin_key=resolved, fan_out=fan_out
        )
        return run_immediate(self.network, gen, origin, kind=MessageKind.QUERY)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert_steps(
        self,
        key: float,
        origin_host: HostId | None = None,
        origin_key: float | None = None,
    ) -> StepGenerator:
        """Insertion as a resumable step generator (search, then table repair)."""
        key = float(key)
        if key in self._host_of_key:
            raise UpdateError(f"{self.name}: key {key!r} already stored")
        search = yield from self.search_steps(
            key, origin_host=origin_host, origin_key=origin_key
        )
        self._keys = sorted(self._keys + [key])
        self._assign_new_key(key)
        self._after_ground_set_change()
        self._origin_index = None
        changed_count, changed_hosts = self._install_tables(charge_messages=True)
        messages = yield from self._charge_update(search, changed_hosts)
        return BaselineUpdateOutcome(
            key=key,
            kind="insert",
            messages=search.messages + messages,
            search_messages=search.messages,
            propagate_messages=messages,
            hosts_touched=changed_count,
        )

    def insert(self, key: float, origin_key: float | None = None) -> BaselineUpdateOutcome:
        """Insert ``key``: search for its position, then repair routing tables."""
        resolved = self._origin_key_for(None, origin_key)
        origin = self._host_of_key.get(resolved)
        gen = self.insert_steps(key, origin_key=resolved)
        return run_immediate(self.network, gen, origin, kind=MessageKind.UPDATE)

    def delete_steps(
        self,
        key: float,
        origin_host: HostId | None = None,
        origin_key: float | None = None,
    ) -> StepGenerator:
        """Deletion as a resumable step generator (search, then table repair)."""
        key = float(key)
        if key not in self._host_of_key:
            raise UpdateError(f"{self.name}: key {key!r} is not stored")
        if len(self._keys) == 1:
            raise UpdateError(f"{self.name}: cannot delete the last key")
        origin_key = self._delete_origin_key(key, origin_key)
        search = yield from self.search_steps(
            key, origin_host=origin_host, origin_key=origin_key
        )
        self._keys = [existing for existing in self._keys if existing != key]
        self._host_of_key.pop(key)
        self._after_ground_set_change()
        self._origin_index = None
        changed_count, changed_hosts = self._install_tables(charge_messages=True)
        messages = yield from self._charge_update(search, changed_hosts)
        return BaselineUpdateOutcome(
            key=key,
            kind="delete",
            messages=search.messages + messages,
            search_messages=search.messages,
            propagate_messages=messages,
            hosts_touched=changed_count,
        )

    def _delete_origin_key(self, key: float, origin_key: float | None) -> float:
        """Origin key for a delete's search: never the key being deleted.

        Shared by :meth:`delete` (which needs the origin *host* for the
        immediate driver) and :meth:`delete_steps` (which seeds its cursor
        from the same key), so the two can never diverge.
        """
        if origin_key is None or float(origin_key) == key:
            return next(
                (existing for existing in self._keys if existing != key), self._keys[0]
            )
        return float(origin_key)

    def delete(self, key: float, origin_key: float | None = None) -> BaselineUpdateOutcome:
        """Delete ``key`` and repair routing tables."""
        key = float(key)
        effective = self._delete_origin_key(key, origin_key)
        origin = self._host_of_key.get(effective)
        gen = self.delete_steps(key, origin_key=origin_key)
        return run_immediate(self.network, gen, origin, kind=MessageKind.UPDATE)

    def _assign_new_key(self, key: float) -> None:
        """Give a newly inserted key a home host (default: a fresh host)."""
        host = self.network.add_host()
        self._host_of_key[key] = host.host_id

    def _after_ground_set_change(self) -> None:
        """Hook for subclasses that keep derived state (membership vectors, ...)."""

    def _charge_update(
        self, search: SearchOutcome, changed_hosts: set[HostId]
    ) -> StepGenerator:
        """Charge one update message per host whose routing table changed."""
        start = search.hosts_visited[-1] if search.hosts_visited else 0
        cursor = StepCursor(start)
        for host in sorted(changed_hosts):
            yield from cursor.hop_to(host)
        return cursor.hops

    # ------------------------------------------------------------------ #
    # churn: migration and self-repair (see repro.engine.repair)
    # ------------------------------------------------------------------ #
    def _churn_pool(self, exclude: set[HostId]) -> list[HostId]:
        """Live hosts that can take over keys, excluding departing ones."""
        pool = [
            host_id
            for host_id in self.network.alive_host_ids()
            if host_id not in exclude
        ]
        if not pool:
            raise ChurnError(f"{self.name}: no live hosts left to hold keys")
        return pool

    def _rehome_keys(
        self, cursor: StepCursor, keys: list[float], pool: list[HostId], origin: HostId
    ) -> StepGenerator:
        """Hand each key over to a vacant host (≥ 1 message per hand-off).

        These overlays are one-key-per-host designs: a host's stored
        routing table belongs to *its* key, so re-homing preserves the
        invariant by preferring vacant pool hosts and otherwise
        registering a fresh host — exactly what :meth:`_assign_new_key`
        does for inserts.
        """
        moving = set(keys)
        occupied = {
            host for key, host in self._host_of_key.items() if key not in moving
        }
        for key in keys:
            destination = next(
                (candidate for candidate in pool if candidate not in occupied), None
            )
            if destination is None:
                destination = self.network.add_host().host_id
            occupied.add(destination)
            yield from cursor.hand_off(destination, origin)
            self._host_of_key[key] = destination
        return None

    def _finish_churn(
        self,
        cursor: StepCursor,
        kind: str,
        hosts: tuple[HostId, ...],
        moved: int,
    ) -> StepGenerator:
        """Repair the routing tables and assemble the churn summary."""
        self._origin_index = None
        self._after_ground_set_change()
        changed_count, changed_hosts = self._install_tables(charge_messages=True)
        # Dropping a dead (or departed) host's table is pure bookkeeping —
        # there is nobody left to message — so only live hosts are billed.
        failed = self.network.failed_hosts
        for host in sorted(changed_hosts):
            if host in failed or host not in self.network:
                continue
            yield from cursor.hop_to(host)
        return MigrationSummary(
            kind=kind,
            hosts=hosts,
            records_moved=moved,
            pointers_rewired=changed_count,
            hosts_touched=cursor.distinct_hosts(),
        )

    def migrate_host(
        self,
        host_id: HostId,
        targets: Sequence[HostId] | None = None,
        fraction: float = 1.0,
    ) -> StepGenerator:
        """Hand keys off ``host_id``, then repair every changed routing table.

        A full evacuation prepares a graceful leave; a partial migration
        toward explicit ``targets`` rebalances keys onto a newly joined
        host.  One message is charged per key hand-off and per host whose
        stored routing table changed.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.network.host(host_id)  # validate early
        if targets is not None:
            pool = [target for target in targets if target != host_id]
        else:
            pool = self._churn_pool({host_id})
        if not pool:
            raise ChurnError(f"{self.name}: no live hosts to migrate keys to")
        resident = [key for key in self._keys if self._host_of_key[key] == host_id]
        moving = resident[: math.ceil(fraction * len(resident))]
        cursor = StepCursor(host_id)
        yield from cursor.hop_to(host_id)  # announce the coordinator (free)
        yield from self._rehome_keys(cursor, moving, pool, host_id)
        summary = yield from self._finish_churn(
            cursor, "migrate", (host_id,), len(moving)
        )
        return summary

    def repair(self, host_ids: Sequence[HostId]) -> StepGenerator:
        """Re-home the keys orphaned by crashed ``host_ids``; repair tables.

        The keys themselves are reconstructed from the global key registry
        (the stand-in for the replicated metadata a real deployment would
        keep); placements and changed routing tables are charged one
        message each.
        """
        dead = set(host_ids)
        if not dead:
            raise ChurnError(f"{self.name}: repair needs at least one crashed host")
        pool = self._churn_pool(dead)
        coordinator = pool[0]
        orphaned = [key for key in self._keys if self._host_of_key[key] in dead]
        cursor = StepCursor(coordinator)
        yield from cursor.hop_to(coordinator)  # announce the coordinator (free)
        yield from self._rehome_keys(cursor, orphaned, pool, coordinator)
        summary = yield from self._finish_churn(
            cursor, "repair", tuple(sorted(dead)), len(orphaned)
        )
        return summary

    # ------------------------------------------------------------------ #
    # DistributedStructure protocol (batched execution; see repro.engine)
    # ------------------------------------------------------------------ #
    def origin_hosts(self) -> list[HostId]:
        """Hosts that store at least one key (every search starts at a key)."""
        return sorted(set(self._host_of_key.values()))

    def seed_roots(self, origin_host: HostId) -> StepGenerator:
        """Step generator returning ``origin_host``'s locally stored routing table."""
        address = self._table_addresses.get(origin_host)
        return local_steps(self.network.load(address) if address is not None else None)

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #
    @property
    def keys(self) -> list[float]:
        return list(self._keys)

    @property
    def ground_set_size(self) -> int:
        return len(self._keys)

    @property
    def host_count(self) -> int:
        return self.network.host_count

    def max_memory_per_host(self) -> int:
        """Largest routing-table size (in entries) on any host."""
        profile = self.memory_profile()
        return max(profile.values()) if profile else 0

    def memory_profile(self) -> dict[HostId, int]:
        """Routing-table entries per host, plus one per stored key."""
        profile: dict[HostId, int] = {host.host_id: 0 for host in self.network.hosts()}
        for host_id, address in self._table_addresses.items():
            profile[host_id] = profile.get(host_id, 0) + self._table_size(
                self.network.load(address)
            )
        for key, host_id in self._host_of_key.items():
            profile[host_id] = profile.get(host_id, 0) + 1
        return profile

    def congestion(self) -> CongestionReport:
        """Congestion per §1.1 based on cross-host routing-table references."""
        for host in self.network.hosts():
            host.reset_reference_counts()
        for key, host_id in self._host_of_key.items():
            self.network.host(host_id).note_owned_items(1)
        for host_id, address in self._table_addresses.items():
            table = self.network.load(address)
            for referenced_key in self._referenced_keys(table):
                target = self._host_of_key.get(referenced_key)
                if target is not None and target != host_id:
                    self.network.host(host_id).note_out_reference(1)
                    self.network.host(target).note_in_reference(1)
        return congestion_report(self.network, self.ground_set_size)

    def _referenced_keys(self, table: Any) -> Iterable[float]:
        """Keys a routing table points at (for congestion accounting)."""
        if isinstance(table, dict):
            for value in table.values():
                yield from self._referenced_keys(value)
        elif isinstance(table, (list, tuple, set)):
            for value in table:
                yield from self._referenced_keys(value)
        elif isinstance(table, float):
            yield table

    def mean_search_messages(self, queries: Sequence[float]) -> float:
        """Convenience: average ``Q(n)`` over a query workload."""
        return mean(self.search(query).messages for query in queries)
