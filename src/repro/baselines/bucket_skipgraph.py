"""Bucket skip graphs (Aspnes, Kirsch, Krishnamurthy) — Table 1 row 5.

When fewer hosts than keys are available (``H < n``), keys are grouped
into contiguous buckets — one bucket per host — and a skip graph is built
over the buckets rather than over the individual keys.  Each host then
stores its bucket's ``n/H`` keys plus ``O(log H)`` routing entries, and a
search costs ``Õ(log H)`` messages: route to the responsible bucket, then
answer locally.  The paper's bucket skip-web improves the query cost
further to ``Õ(log_M H)``; the Table 1 benchmark measures both.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Any, Sequence

from repro.baselines.base import DistributedOrderedStructure, SearchOutcome
from repro.engine.steps import StepCursor, StepGenerator
from repro.errors import QueryError
from repro.net.naming import HostId
from repro.net.network import Network


class BucketSkipGraph(DistributedOrderedStructure):
    """A skip graph over contiguous key buckets, one bucket per host."""

    name = "bucket skip graph"

    def __init__(
        self,
        keys: Sequence[float],
        host_count: int | None = None,
        network: Network | None = None,
        seed: int = 0,
    ) -> None:
        self._requested_hosts = host_count
        self._vectors: dict[int, tuple[int, ...]] = {}
        self._vector_rng = random.Random(seed)
        self._bucket_bounds: list[float] = []
        super().__init__(keys, network=network, seed=seed)

    # ------------------------------------------------------------------ #
    # host layout: H buckets of contiguous keys
    # ------------------------------------------------------------------ #
    def _target_host_count(self) -> int:
        if self._requested_hosts is not None:
            return max(1, self._requested_hosts)
        n = len(self._keys)
        return max(1, n // max(1, math.ceil(math.log2(max(2, n)))))

    def _setup_hosts(self) -> None:
        host_count = self._target_host_count()
        existing = [host.host_id for host in self.network.hosts()]
        needed = host_count - len(existing)
        if needed > 0:
            self.network.add_hosts(needed)
        self._assign_buckets()

    def _assign_buckets(self) -> None:
        host_ids = [host.host_id for host in self.network.hosts()]
        host_count = len(host_ids)
        self._host_of_key.clear()
        self._bucket_bounds = []
        bucket_size = max(1, math.ceil(len(self._keys) / host_count))
        for bucket_index in range(host_count):
            bucket_keys = self._keys[
                bucket_index * bucket_size : (bucket_index + 1) * bucket_size
            ]
            if not bucket_keys:
                continue
            self._bucket_bounds.append(bucket_keys[0])
            for key in bucket_keys:
                self._host_of_key[key] = host_ids[bucket_index]

    def _assign_new_key(self, key: float) -> None:
        # The new key joins the bucket responsible for its position; no new
        # host is created (bucket sizes grow by one, as in the original
        # structure between rebalancing rounds).
        index = max(0, bisect.bisect_right(self._bucket_bounds, key) - 1)
        host_ids = [host.host_id for host in self.network.hosts()]
        bucket_host = host_ids[min(index, len(host_ids) - 1)]
        self._host_of_key[key] = bucket_host

    def _after_ground_set_change(self) -> None:
        # Keep existing bucket assignment; only ensure every key has a host.
        for key in self._keys:
            if key not in self._host_of_key:
                self._assign_new_key(key)

    # ------------------------------------------------------------------ #
    # routing tables: skip graph over bucket representatives
    # ------------------------------------------------------------------ #
    def _buckets(self) -> dict[HostId, list[float]]:
        buckets: dict[HostId, list[float]] = {}
        for key in self._keys:
            buckets.setdefault(self._host_of_key[key], []).append(key)
        for members in buckets.values():
            members.sort()
        return buckets

    def _vector(self, bucket_index: int, length: int) -> tuple[int, ...]:
        existing = self._vectors.get(bucket_index, ())
        while len(existing) < length:
            existing = existing + (self._vector_rng.randrange(2),)
        self._vectors[bucket_index] = existing
        return existing[:length]

    def _routing_tables(self) -> dict[HostId, Any]:
        buckets = self._buckets()
        ordered_hosts = sorted(buckets, key=lambda host_id: buckets[host_id][0])
        representatives = [buckets[host_id][0] for host_id in ordered_hosts]
        length = max(1, math.ceil(math.log2(max(2, len(ordered_hosts)))))
        levels: list[dict[tuple[int, ...], list[int]]] = []
        for level in range(length + 1):
            groups: dict[tuple[int, ...], list[int]] = {}
            for bucket_index in range(len(ordered_hosts)):
                groups.setdefault(self._vector(bucket_index, length)[:level], []).append(
                    bucket_index
                )
            levels.append(groups)
        tables: dict[HostId, Any] = {}
        for bucket_index, host_id in enumerate(ordered_hosts):
            neighbor_levels: list[dict[str, float | None]] = []
            for level in range(length + 1):
                members = levels[level][self._vector(bucket_index, length)[:level]]
                position = members.index(bucket_index)
                left = (
                    representatives[members[position - 1]] if position > 0 else None
                )
                right = (
                    representatives[members[position + 1]]
                    if position + 1 < len(members)
                    else None
                )
                neighbor_levels.append({"left": left, "right": right})
            tables[host_id] = {
                "key": representatives[bucket_index],
                "bucket": buckets[host_id],
                "levels": neighbor_levels,
            }
        return tables

    # ------------------------------------------------------------------ #
    # routing: to the responsible bucket, then answer locally
    # ------------------------------------------------------------------ #
    def _route(self, table: Any, current_key: float, query: float) -> float | None:
        bucket: list[float] = table["bucket"]
        levels = table["levels"]
        # Done when the query falls inside this bucket's responsibility:
        # at or after the bucket's first key and before the next bucket.
        right_rep = None
        for level in levels:
            if level["right"] is not None:
                right_rep = (
                    level["right"] if right_rep is None else min(right_rep, level["right"])
                )
        if (query >= bucket[0] or all(level["left"] is None for level in levels)) and (
            right_rep is None or query < right_rep
        ):
            return None
        if query > table["key"]:
            for level in range(len(levels) - 1, -1, -1):
                right = levels[level]["right"]
                if right is not None and table["key"] < right <= query:
                    return right
            return None
        for level in range(len(levels) - 1, -1, -1):
            left = levels[level]["left"]
            if left is not None and query <= left < table["key"]:
                return left
        # The query lies below this bucket's first key but above the
        # previous bucket's representative: that previous bucket (the
        # largest left neighbour, which is the level-0 left) is the
        # responsible one, so take the final one-bucket hop.
        lefts = [level["left"] for level in levels if level["left"] is not None]
        if lefts:
            return max(lefts)
        return None

    def search_steps(
        self,
        query: float,
        origin_host: HostId | None = None,
        origin_key: float | None = None,
    ) -> StepGenerator:
        """Route to the responsible bucket, then answer from its local keys.

        Overrides the base generator so that *every* execution path — the
        eager :meth:`search` below, the batched executor, and the searches
        inside inherited ``insert_steps`` / ``delete_steps`` — finishes
        with the bucket-local bisection rather than the per-key finish of
        the base class.
        """
        query = float(query)
        origin_key = self._origin_key_for(origin_host, origin_key)
        if origin_key not in self._host_of_key:
            raise QueryError(f"{self.name}: origin key {origin_key!r} is not stored")
        cursor = StepCursor(self._host_of_key[origin_key])
        current_key = origin_key
        safety = 4 * self.network.host_count + 16
        for _ in range(safety):
            table = self.network.load(self._table_addresses[self._host_of_key[current_key]])
            next_key = self._route(table, current_key, query)
            if next_key is None:
                bucket: list[float] = table["bucket"]
                index = bisect.bisect_left(bucket, query)
                predecessor = bucket[index - 1] if index > 0 else self._global_predecessor(query)
                exact = index < len(bucket) and bucket[index] == query
                successor = (
                    bucket[index]
                    if index < len(bucket)
                    else self._global_successor(query)
                )
                candidates = [value for value in (predecessor, successor) if value is not None]
                nearest = min(candidates, key=lambda value: abs(value - query))
                return SearchOutcome(
                    query=query,
                    nearest=nearest,
                    predecessor=predecessor,
                    successor=successor,
                    exact=exact,
                    messages=cursor.hops,
                    hosts_visited=cursor.path_tuple(),
                )
            yield from cursor.hop_to(self._host_of_key[next_key])
            current_key = next_key
        raise QueryError(f"{self.name}: routing did not converge for query {query!r}")

    def _global_predecessor(self, query: float) -> float | None:
        index = bisect.bisect_right(self._keys, query)
        return self._keys[index - 1] if index > 0 else None

    def _global_successor(self, query: float) -> float | None:
        index = bisect.bisect_left(self._keys, query)
        return self._keys[index] if index < len(self._keys) else None
