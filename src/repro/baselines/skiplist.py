"""The classic skip list (Figure 1 of the paper).

Pugh's randomized skip list is the conceptual ancestor of skip graphs,
SkipNet and skip-webs.  It is a *centralised* structure — one machine
holds every node — so it is not a row of Table 1, but Figure 1 uses it to
set up the intuition (expected ``O(log n)`` search, ``O(n)`` space) and
the ``bench_fig1_skiplist`` benchmark reproduces exactly those two
curves.  The implementation counts comparisons/hops per search so the
benchmark can report the search-path length distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import QueryError


@dataclass
class _SkipNode:
    key: float
    forward: list["._SkipNode | None"]


@dataclass(frozen=True)
class SkipListSearch:
    """Result of a skip-list search, with the traversal cost."""

    query: float
    predecessor: float | None
    successor: float | None
    exact: bool
    hops: int
    levels_used: int

    @property
    def nearest(self) -> float:
        candidates = [value for value in (self.predecessor, self.successor) if value is not None]
        if not candidates:
            raise QueryError("empty skip list")
        return min(candidates, key=lambda value: abs(value - self.query))


class SkipList:
    """A randomized skip list over numeric keys.

    Parameters
    ----------
    keys:
        Initial keys (can be empty; use :meth:`insert`).
    probability:
        Promotion probability (1/2 in Figure 1).
    seed:
        Seed for the promotion coin flips.
    """

    def __init__(
        self,
        keys: Sequence[float] = (),
        probability: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0 < probability < 1:
            raise ValueError(f"probability must be in (0, 1), got {probability}")
        self.probability = probability
        self._rng = random.Random(seed)
        self._head = _SkipNode(key=float("-inf"), forward=[None])
        self._size = 0
        for key in keys:
            self.insert(float(key))

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """Number of levels currently in use."""
        return len(self._head.forward)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: float) -> bool:
        return self.search(float(key)).exact

    def keys(self) -> Iterator[float]:
        """Iterate over stored keys in ascending order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key
            node = node.forward[0]

    def node_count(self) -> int:
        """Total number of node copies across all levels (the O(n) space of Figure 1)."""
        total = 0
        node = self._head.forward[0]
        while node is not None:
            total += len(node.forward)
            node = node.forward[0]
        return total

    def _random_height(self) -> int:
        height = 1
        while self._rng.random() < self.probability:
            height += 1
        return height

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def insert(self, key: float) -> None:
        """Insert ``key`` (duplicates are ignored)."""
        key = float(key)
        update: list[_SkipNode] = []
        node = self._head
        for level in range(self.height - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
            update.append(node)
        update.reverse()
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            return
        height = self._random_height()
        while self.height < height:
            self._head.forward.append(None)
            update.append(self._head)
        new_node = _SkipNode(key=key, forward=[None] * height)
        for level in range(height):
            new_node.forward[level] = update[level].forward[level]
            update[level].forward[level] = new_node
        self._size += 1

    def delete(self, key: float) -> bool:
        """Remove ``key``; returns whether it was present."""
        key = float(key)
        node = self._head
        update: list[_SkipNode] = []
        for level in range(self.height - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
            update.append(node)
        update.reverse()
        target = update[0].forward[0]
        if target is None or target.key != key:
            return False
        for level in range(len(target.forward)):
            if update[level].forward[level] is target:
                update[level].forward[level] = target.forward[level]
        while self.height > 1 and self._head.forward[-1] is None:
            self._head.forward.pop()
        self._size -= 1
        return True

    def search(self, query: float) -> SkipListSearch:
        """Search for ``query``, counting the hops of the Figure 1 walk."""
        if self._size == 0:
            raise QueryError("search on an empty skip list")
        query = float(query)
        node = self._head
        hops = 0
        for level in range(self.height - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key <= query:
                node = node.forward[level]
                hops += 1
        predecessor = node.key if node is not self._head else None
        successor_node = node.forward[0]
        successor = successor_node.key if successor_node is not None else None
        return SkipListSearch(
            query=query,
            predecessor=predecessor,
            successor=successor,
            exact=(predecessor == query),
            hops=hops,
            levels_used=self.height,
        )

    def validate(self) -> None:
        """Check ordering and level-nesting invariants."""
        for level in range(self.height):
            previous = float("-inf")
            node = self._head.forward[level]
            while node is not None:
                if node.key <= previous:
                    raise QueryError(f"level {level} is not strictly increasing")
                previous = node.key
                node = node.forward[level]
        lower = set(self.keys())
        for level in range(1, self.height):
            node = self._head.forward[level]
            while node is not None:
                if node.key not in lower:
                    raise QueryError("higher-level node missing from level 0")
                node = node.forward[level]
