"""Deterministic SkipNet (Harvey–Munro) — Table 1 row 4.

Harvey and Munro derandomize SkipNet by maintaining a deterministic
skip-list-like hierarchy (in the spirit of 1-2-3 skip lists): between two
consecutive level-``i+1`` elements there are always between one and three
level-``i`` elements.  Searches are then worst-case ``O(log n)`` messages
with ``O(log n)`` entries per host, but keeping the invariant makes
updates more expensive — ``O(log² n)`` — and congestion higher, which is
the trade-off Table 1 records.

This implementation maintains the 1-3 gap invariant explicitly: inserts
promote a middle element whenever a gap grows to four, deletes demote or
re-promote around the removed element.  Promotion decisions are
deterministic (no randomness anywhere in this module).
"""

from __future__ import annotations

import bisect
from typing import Any, Sequence

from repro.baselines.base import DistributedOrderedStructure
from repro.net.naming import HostId
from repro.net.network import Network


class DeterministicSkipNet(DistributedOrderedStructure):
    """A deterministic 1-2-3 skip hierarchy, one key per host."""

    name = "deterministic SkipNet"

    def __init__(
        self,
        keys: Sequence[float],
        network: Network | None = None,
        seed: int = 0,
    ) -> None:
        # levels[0] is the sorted key list; levels[i] ⊆ levels[i-1].
        self._levels: list[list[float]] = []
        super().__init__(keys, network=network, seed=seed)

    # ------------------------------------------------------------------ #
    # deterministic hierarchy maintenance
    # ------------------------------------------------------------------ #
    def _rebuild_levels_from_scratch(self) -> None:
        """Initial construction: promote every other element, level by level."""
        self._levels = [list(self._keys)]
        while len(self._levels[-1]) > 2:
            below = self._levels[-1]
            # Deterministic promotion: every second element, keeping gaps of
            # one or two — within the 1-3 invariant.
            self._levels.append(below[1::2])

    def _gap_elements(self, level: int, low: float | None, high: float | None) -> list[float]:
        """Level-``level`` elements strictly between two level-``level+1`` elements."""
        below = self._levels[level]
        start = 0 if low is None else bisect.bisect_right(below, low)
        end = len(below) if high is None else bisect.bisect_left(below, high)
        return below[start:end]

    def _repair_invariant(self) -> None:
        """Re-establish the 1-3 gap invariant bottom-up after an update."""
        level = 0
        while level + 1 < len(self._levels) or (
            level < len(self._levels) and len(self._levels[level]) > 3
        ):
            if level + 1 >= len(self._levels):
                self._levels.append([])
            upper = self._levels[level + 1]
            # Drop promoted elements that no longer exist below.
            below_set = set(self._levels[level])
            upper[:] = [element for element in upper if element in below_set]
            boundaries: list[float | None] = [None] + list(upper) + [None]
            rebuilt: list[float] = []
            for low, high in zip(boundaries, boundaries[1:]):
                gap = self._gap_elements(level, low, high)
                while len(gap) > 3:
                    # Promote the middle element of an over-full gap.
                    promoted = gap[len(gap) // 2]
                    rebuilt.append(promoted)
                    gap = [element for element in gap if element > promoted]
                if high is not None:
                    rebuilt.append(high)
            upper[:] = sorted(set(rebuilt))
            if not upper:
                self._levels.pop()
                break
            if len(upper) <= 3 and level + 2 >= len(self._levels):
                break
            level += 1
        # Trim empty top levels.
        while len(self._levels) > 1 and len(self._levels[-1]) == 0:
            self._levels.pop()

    def _after_ground_set_change(self) -> None:
        if not self._levels:
            self._rebuild_levels_from_scratch()
            return
        self._levels[0] = list(self._keys)
        self._repair_invariant()

    # ------------------------------------------------------------------ #
    # routing tables
    # ------------------------------------------------------------------ #
    def _routing_tables(self) -> dict[HostId, Any]:
        if not self._levels:
            self._rebuild_levels_from_scratch()
        tables: dict[HostId, Any] = {}
        for key in self._keys:
            neighbor_levels: list[dict[str, float | None]] = []
            for level_keys in self._levels:
                index = bisect.bisect_left(level_keys, key)
                present = index < len(level_keys) and level_keys[index] == key
                if not present:
                    break
                left = level_keys[index - 1] if index > 0 else None
                right = level_keys[index + 1] if index + 1 < len(level_keys) else None
                neighbor_levels.append({"left": left, "right": right})
            tables[self._host_of_key[key]] = {"key": key, "levels": neighbor_levels}
        return tables

    def _route(self, table: Any, current_key: float, query: float) -> float | None:
        if query == current_key:
            return None
        levels = table["levels"]
        if query > current_key:
            for level in range(len(levels) - 1, -1, -1):
                right = levels[level]["right"]
                if right is not None and current_key < right <= query:
                    return right
            return None
        for level in range(len(levels) - 1, -1, -1):
            left = levels[level]["left"]
            if left is not None and query <= left < current_key:
                return left
        return None

    # ------------------------------------------------------------------ #
    # invariant check for tests
    # ------------------------------------------------------------------ #
    def validate_invariant(self) -> None:
        """Every gap between consecutive promoted elements holds 1-3 elements."""
        for level in range(len(self._levels) - 1):
            upper = self._levels[level + 1]
            boundaries: list[float | None] = [None] + list(upper) + [None]
            for low, high in zip(boundaries, boundaries[1:]):
                gap = self._gap_elements(level, low, high)
                if len(gap) > 3:
                    raise AssertionError(
                        f"gap invariant violated at level {level}: {len(gap)} elements"
                    )
            if any(element not in set(self._levels[level]) for element in upper):
                raise AssertionError("promoted element missing from the level below")
