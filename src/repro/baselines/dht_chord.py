"""A Chord distributed hash table.

Chord is the archetypal DHT the paper contrasts against in §1.2: exact-key
lookups route in ``O(log n)`` messages over finger tables, but because
keys are *hashed* onto the identifier ring, order is destroyed — Chord
cannot answer nearest-neighbour, range or prefix queries without flooding.
The ``bench_table1_comparison`` benchmark includes Chord for the
exact-match column only, to make that limitation measurable rather than
asserted.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Sequence

from repro.engine.steps import StepCursor, StepGenerator, local_steps, run_immediate
from repro.errors import QueryError, UpdateError
from repro.net.message import MessageKind
from repro.net.naming import Address, HostId
from repro.net.network import Network


def chord_id(value: object, bits: int) -> int:
    """Hash an arbitrary value onto the ``2^bits`` identifier ring."""
    digest = hashlib.blake2b(repr(value).encode("utf8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % (1 << bits)


@dataclass(frozen=True)
class ChordLookup:
    """Result of one Chord lookup."""

    key: float
    found: bool
    responsible_host: HostId
    messages: int
    hosts_visited: tuple[HostId, ...]


class ChordDHT:
    """A Chord ring storing numeric keys by hash.

    Parameters
    ----------
    keys:
        The stored keys; each key is hashed to a ring position and stored
        at its successor node.
    bits:
        Identifier-space size (``2^bits`` positions) and finger count.
    """

    name = "Chord DHT"

    def __init__(
        self,
        keys: Sequence[float],
        network: Network | None = None,
        bits: int = 32,
    ) -> None:
        self._keys = sorted(set(float(key) for key in keys))
        if not self._keys:
            raise QueryError("Chord needs at least one key")
        self.bits = bits
        self.network = network if network is not None else Network()
        needed = len(self._keys) - self.network.host_count
        if needed > 0:
            self.network.add_hosts(needed)
        self._host_ids = [host.host_id for host in self.network.hosts()]
        # Node ids: one ring position per host.
        self._node_ids = sorted(
            (chord_id(("node", host_id), bits), host_id) for host_id in self._host_ids
        )
        self._ring = [node_id for node_id, _host in self._node_ids]
        # Key placement: each key lives at the successor of its hash.
        self._key_home: dict[float, HostId] = {}
        self._stored_keys: dict[HostId, list[float]] = {}
        for key in self._keys:
            host = self._successor_host(chord_id(("key", key), bits))
            self._key_home[key] = host
            self._stored_keys.setdefault(host, []).append(key)
        # Finger tables, stored on the hosts for memory accounting.
        self._table_addresses: dict[HostId, Address] = {}
        for node_id, host_id in self._node_ids:
            fingers = []
            for exponent in range(bits):
                target = (node_id + (1 << exponent)) % (1 << bits)
                fingers.append(self._successor_entry(target))
            table = {
                "node_id": node_id,
                "fingers": fingers,
                "keys": sorted(self._stored_keys.get(host_id, [])),
            }
            self._table_addresses[host_id] = self.network.store(host_id, table)

    # ------------------------------------------------------------------ #
    # ring helpers
    # ------------------------------------------------------------------ #
    def _successor_entry(self, ring_position: int) -> tuple[int, HostId]:
        index = bisect_left(self._ring, ring_position)
        if index == len(self._ring):
            index = 0
        return self._node_ids[index]

    def _successor_host(self, ring_position: int) -> HostId:
        return self._successor_entry(ring_position)[1]

    @staticmethod
    def _in_arc(value: int, start: int, end: int, modulus: int) -> bool:
        """Whether ``value`` lies in the half-open arc ``(start, end]`` on the ring."""
        if start < end:
            return start < value <= end
        return value > start or value <= end

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def search_steps(
        self, key: float, origin_host: HostId | None = None
    ) -> StepGenerator:
        """Greedy finger routing as a resumable step generator."""
        key = float(key)
        target = chord_id(("key", key), self.bits)
        if origin_host is None:
            origin_host = self._host_ids[0]
        cursor = StepCursor(origin_host)
        current_host = origin_host
        modulus = 1 << self.bits
        safety = 4 * len(self._host_ids) + 16
        for _ in range(safety):
            table = self.network.load(self._table_addresses[current_host])
            node_id = table["node_id"]
            successor_id, successor_host = table["fingers"][0]
            if self._in_arc(target, node_id, successor_id, modulus):
                # The successor is responsible for the key.
                yield from cursor.hop_to(successor_host)
                final_table = self.network.load(self._table_addresses[successor_host])
                return ChordLookup(
                    key=key,
                    found=key in final_table["keys"],
                    responsible_host=successor_host,
                    messages=cursor.hops,
                    hosts_visited=tuple(cursor.path),
                )
            # Closest preceding finger.
            next_host = successor_host
            for finger_id, finger_host in reversed(table["fingers"]):
                if self._in_arc(finger_id, node_id, target, modulus) and finger_id != target:
                    next_host = finger_host
                    break
            if next_host == current_host:
                next_host = successor_host
            yield from cursor.hop_to(next_host)
            current_host = next_host
        raise QueryError("Chord routing did not converge")

    def lookup(self, key: float, origin_host: HostId | None = None) -> ChordLookup:
        """Exact-match lookup of ``key`` via greedy finger routing."""
        if origin_host is None:
            origin_host = self._host_ids[0]
        gen = self.search_steps(key, origin_host=origin_host)
        return run_immediate(self.network, gen, origin_host, kind=MessageKind.QUERY)

    # ------------------------------------------------------------------ #
    # DistributedStructure protocol (batched execution; see repro.engine)
    # ------------------------------------------------------------------ #
    def origin_hosts(self) -> list[HostId]:
        """Any ring node may originate lookups."""
        return list(self._host_ids)

    def seed_roots(self, origin_host: HostId) -> StepGenerator:
        """Step generator returning ``origin_host``'s finger table (local)."""
        return local_steps(self.network.load(self._table_addresses[origin_host]))

    def insert_steps(self, item: Any, origin_host: HostId | None = None) -> StepGenerator:
        """Chord is measured as a static ring here; updates are unsupported."""
        raise UpdateError("Chord DHT baseline is static: updates are not supported")

    def delete_steps(self, item: Any, origin_host: HostId | None = None) -> StepGenerator:
        """Chord is measured as a static ring here; updates are unsupported."""
        raise UpdateError("Chord DHT baseline is static: updates are not supported")

    # ------------------------------------------------------------------ #
    # the limitation the paper highlights
    # ------------------------------------------------------------------ #
    def nearest_neighbor(self, query: float) -> None:
        """Chord cannot answer nearest-neighbour queries; see §1.2 of the paper."""
        raise NotImplementedError(
            "Chord hashes keys onto the ring, destroying order: nearest-neighbour, "
            "range and prefix queries are not supported (this is the motivation "
            "for skip graphs and skip-webs)."
        )

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #
    @property
    def keys(self) -> list[float]:
        return list(self._keys)

    @property
    def host_count(self) -> int:
        return self.network.host_count

    def max_memory_per_host(self) -> int:
        best = 0
        for address in self._table_addresses.values():
            table = self.network.load(address)
            best = max(best, len(table["fingers"]) + len(table["keys"]))
        return best
