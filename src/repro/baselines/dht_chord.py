"""A Chord distributed hash table.

Chord is the archetypal DHT the paper contrasts against in §1.2: exact-key
lookups route in ``O(log n)`` messages over finger tables, but because
keys are *hashed* onto the identifier ring, order is destroyed — Chord
cannot answer nearest-neighbour, range or prefix queries without flooding.
The ``bench_table1_comparison`` benchmark includes Chord for the
exact-match column only, to make that limitation measurable rather than
asserted.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.bulkload import charge_construction, is_strictly_increasing
from repro.engine.repair import MigrationSummary
from repro.engine.steps import StepCursor, StepGenerator, local_steps, run_immediate
from repro.errors import ChurnError, QueryError, UnsupportedOperationError, UpdateError
from repro.net.message import MessageKind
from repro.net.naming import Address, HostId
from repro.net.network import Network


def chord_id(value: object, bits: int) -> int:
    """Hash an arbitrary value onto the ``2^bits`` identifier ring."""
    digest = hashlib.blake2b(repr(value).encode("utf8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % (1 << bits)


@dataclass(frozen=True)
class ChordLookup:
    """Result of one Chord lookup."""

    key: float
    found: bool
    responsible_host: HostId
    messages: int
    hosts_visited: tuple[HostId, ...]


class ChordDHT:
    """A Chord ring storing numeric keys by hash.

    Parameters
    ----------
    keys:
        The stored keys; each key is hashed to a ring position and stored
        at its successor node.
    bits:
        Identifier-space size (``2^bits`` positions) and finger count.
    """

    name = "Chord DHT"

    def __init__(
        self,
        keys: Sequence[float],
        network: Network | None = None,
        bits: int = 32,
    ) -> None:
        converted = [float(key) for key in keys]
        if is_strictly_increasing(converted):
            self._keys = converted  # O(n) bulk-load fast path
        else:
            self._keys = sorted(set(converted))
        if not self._keys:
            raise QueryError("Chord needs at least one key")
        #: CONSTRUCTION messages charged by a bulk-load build (0 otherwise).
        self.construction_messages = 0
        self.bits = bits
        self.network = network if network is not None else Network()
        needed = len(self._keys) - self.network.host_count
        if needed > 0:
            self.network.add_hosts(needed)
        self._host_ids = [host.host_id for host in self.network.hosts()]
        # Node ids: one ring position per host.
        self._node_ids = sorted(
            (chord_id(("node", host_id), bits), host_id) for host_id in self._host_ids
        )
        self._ring = [node_id for node_id, _host in self._node_ids]
        # Key placement: each key lives at the successor of its hash.
        self._key_home: dict[float, HostId] = {}
        self._stored_keys: dict[HostId, list[float]] = {}
        for key in self._keys:
            host = self._successor_host(chord_id(("key", key), bits))
            self._key_home[key] = host
            self._stored_keys.setdefault(host, []).append(key)
        # Finger tables, stored on the hosts for memory accounting.
        self._table_addresses: dict[HostId, Address] = {}
        for node_id, host_id in self._node_ids:
            self._table_addresses[host_id] = self.network.store(
                host_id, self._table_for(node_id, host_id)
            )

    @classmethod
    def build_from_sorted(cls, keys: Sequence[float], **kwargs: Any) -> "ChordDHT":
        """Bulk-load constructor over pre-sorted, deduplicated ``keys``.

        Skips the defensive sort (verified in O(n)) and charges one
        CONSTRUCTION ledger message per finger table installed on a host
        other than the coordinator (the first ring node's host).
        """
        ring = cls(keys, **kwargs)
        coordinator = ring._node_ids[0][1]
        ring.construction_messages = charge_construction(
            ring.network, coordinator, ring._table_addresses
        )
        return ring

    def _table_for(self, node_id: int, host_id: HostId) -> dict[str, Any]:
        """The finger table host ``host_id`` should currently store."""
        fingers = []
        for exponent in range(self.bits):
            target = (node_id + (1 << exponent)) % (1 << self.bits)
            fingers.append(self._successor_entry(target))
        return {
            "node_id": node_id,
            "fingers": fingers,
            "keys": sorted(self._stored_keys.get(host_id, [])),
        }

    # ------------------------------------------------------------------ #
    # ring helpers
    # ------------------------------------------------------------------ #
    def _successor_entry(self, ring_position: int) -> tuple[int, HostId]:
        index = bisect_left(self._ring, ring_position)
        if index == len(self._ring):
            index = 0
        return self._node_ids[index]

    def _successor_host(self, ring_position: int) -> HostId:
        return self._successor_entry(ring_position)[1]

    @staticmethod
    def _in_arc(value: int, start: int, end: int, modulus: int) -> bool:
        """Whether ``value`` lies in the half-open arc ``(start, end]`` on the ring."""
        if start < end:
            return start < value <= end
        return value > start or value <= end

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def search_steps(
        self, key: float, origin_host: HostId | None = None
    ) -> StepGenerator:
        """Greedy finger routing as a resumable step generator."""
        key = float(key)
        target = chord_id(("key", key), self.bits)
        if origin_host is None:
            origin_host = self._host_ids[0]
        cursor = StepCursor(origin_host)
        current_host = origin_host
        modulus = 1 << self.bits
        safety = 4 * len(self._host_ids) + 16
        for _ in range(safety):
            table = self.network.load(self._table_addresses[current_host])
            node_id = table["node_id"]
            successor_id, successor_host = table["fingers"][0]
            if self._in_arc(target, node_id, successor_id, modulus):
                # The successor is responsible for the key.
                yield from cursor.hop_to(successor_host)
                final_table = self.network.load(self._table_addresses[successor_host])
                return ChordLookup(
                    key=key,
                    found=key in final_table["keys"],
                    responsible_host=successor_host,
                    messages=cursor.hops,
                    hosts_visited=cursor.path_tuple(),
                )
            # Closest preceding finger.
            next_host = successor_host
            for finger_id, finger_host in reversed(table["fingers"]):
                if self._in_arc(finger_id, node_id, target, modulus) and finger_id != target:
                    next_host = finger_host
                    break
            if next_host == current_host:
                next_host = successor_host
            yield from cursor.hop_to(next_host)
            current_host = next_host
        raise QueryError("Chord routing did not converge")

    def lookup(self, key: float, origin_host: HostId | None = None) -> ChordLookup:
        """Exact-match lookup of ``key`` via greedy finger routing."""
        if origin_host is None:
            origin_host = self._host_ids[0]
        gen = self.search_steps(key, origin_host=origin_host)
        return run_immediate(self.network, gen, origin_host, kind=MessageKind.QUERY)

    # ------------------------------------------------------------------ #
    # DistributedStructure protocol (batched execution; see repro.engine)
    # ------------------------------------------------------------------ #
    def origin_hosts(self) -> list[HostId]:
        """Any ring node may originate lookups."""
        return list(self._host_ids)

    def seed_roots(self, origin_host: HostId) -> StepGenerator:
        """Step generator returning ``origin_host``'s finger table (local)."""
        return local_steps(self.network.load(self._table_addresses[origin_host]))

    def range_steps(
        self, query_range: Any, origin_host: HostId | None = None
    ) -> StepGenerator:
        """Chord cannot answer range queries — the paper's point about hashing.

        Consistent hashing destroys key locality: the keys of any value
        range are scattered uniformly around the ring, so reporting them
        would require contacting every node (Θ(H) messages), not
        O(log n + k).  The ordered structures (skip-webs and the Table 1
        overlays) support ranges precisely because they keep keys in
        order; this baseline raises instead of pretending otherwise.
        """
        raise UnsupportedOperationError(
            "Chord DHT cannot answer range queries: consistent hashing "
            "destroys key locality (§1.2)"
        )

    def insert_steps(self, item: Any, origin_host: HostId | None = None) -> StepGenerator:
        """Chord is measured as a static ring here; updates are unsupported."""
        raise UpdateError("Chord DHT baseline is static: updates are not supported")

    def delete_steps(self, item: Any, origin_host: HostId | None = None) -> StepGenerator:
        """Chord is measured as a static ring here; updates are unsupported."""
        raise UpdateError("Chord DHT baseline is static: updates are not supported")

    # ------------------------------------------------------------------ #
    # churn: ring membership and finger-table repair (see repro.engine.repair)
    # ------------------------------------------------------------------ #
    def _drop_from_ring(self, host_ids: set[HostId]) -> None:
        remaining = [
            (node_id, host_id)
            for node_id, host_id in self._node_ids
            if host_id not in host_ids
        ]
        if not remaining:
            # Validate before mutating: a refused drop must leave the
            # ring state untouched for callers that catch the error.
            raise ChurnError("Chord ring cannot lose its last node")
        self._node_ids = remaining
        self._ring = [node_id for node_id, _host in self._node_ids]
        self._host_ids = [
            host_id for host_id in self._host_ids if host_id not in host_ids
        ]

    def _join_ring(self, host_id: HostId) -> None:
        node_id = chord_id(("node", host_id), self.bits)
        self._node_ids = sorted(self._node_ids + [(node_id, host_id)])
        self._ring = [ring_id for ring_id, _host in self._node_ids]
        self._host_ids.append(host_id)
        self._stored_keys.setdefault(host_id, [])

    def _rehome_keys_by_hash(
        self, cursor: StepCursor, coordinator: HostId, lost_hosts: set[HostId]
    ) -> StepGenerator:
        """Move every key whose ring successor changed to its new home.

        One message per key hand-off.  Keys coming from a live host travel
        from that host (pull-style: a request leg is charged when the
        token is already at the destination); keys whose old home is in
        ``lost_hosts`` are reconstructed via the coordinator — the
        stand-in for the successor-list replication a production Chord
        deployment keeps.
        """
        moved = 0
        for key in self._keys:
            new_home = self._successor_host(chord_id(("key", key), self.bits))
            old_home = self._key_home.get(key)
            if new_home == old_home:
                continue
            source = coordinator if old_home in lost_hosts else old_home
            yield from cursor.hand_off(new_home, source)
            if old_home is not None and key in self._stored_keys.get(old_home, []):
                self._stored_keys[old_home].remove(key)
            self._stored_keys.setdefault(new_home, []).append(key)
            self._key_home[key] = new_home
            moved += 1
        return moved

    def _repair_finger_tables(self, cursor: StepCursor) -> StepGenerator:
        """Reinstall every finger table that changed; one message per host."""
        changed: list[HostId] = []
        wanted = {host_id: node_id for node_id, host_id in self._node_ids}
        for host_id in list(self._table_addresses):
            if host_id not in wanted:
                # The host left the ring: its table is gone with it.
                self.network.free(self._table_addresses.pop(host_id))
        for node_id, host_id in self._node_ids:
            table = self._table_for(node_id, host_id)
            address = self._table_addresses.get(host_id)
            if address is None:
                self._table_addresses[host_id] = self.network.store(host_id, table)
                changed.append(host_id)
            elif self.network.load(address, check_alive=False) != table:
                self.network.replace(address, table)
                changed.append(host_id)
        for host_id in changed:
            yield from cursor.hop_to(host_id)
        return len(changed)

    def migrate_host(
        self,
        host_id: HostId,
        targets: Sequence[HostId] | None = None,
        fraction: float = 1.0,
    ) -> StepGenerator:
        """Ring membership change as a resumable step generator.

        Hosts in ``targets`` that are not yet ring nodes *join* first:
        each is inserted at its hashed ring position and takes over the
        keys in its arc from their old successor (this is Chord's own
        rebalancing rule, so the ``host_id``/``fraction`` rebalance hints
        used by other structures are advisory here).  A full evacuation
        (``fraction == 1.0``) then retires ``host_id`` from the ring,
        handing its keys to their new successors.  Every finger table
        that changed is repaired at one message per host.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.network.host(host_id)  # validate early
        ring_hosts = {ring_host for _node_id, ring_host in self._node_ids}
        joining = [
            target
            for target in (targets or [])
            if target not in ring_hosts and target in self.network
        ]
        for newcomer in joining:
            self._join_ring(newcomer)
        evacuating = fraction >= 1.0
        if evacuating:
            self._drop_from_ring({host_id})
        elif not joining:
            raise ChurnError(
                "Chord rebalances only through ring membership: pass a joining "
                "target or a full evacuation"
            )
        cursor = StepCursor(host_id)
        yield from cursor.hop_to(host_id)  # announce the coordinator (free)
        moved = yield from self._rehome_keys_by_hash(cursor, host_id, set())
        rewired = yield from self._repair_finger_tables(cursor)
        return MigrationSummary(
            kind="migrate",
            hosts=(host_id,),
            records_moved=moved,
            pointers_rewired=rewired,
            hosts_touched=cursor.distinct_hosts(),
        )

    def repair(self, host_ids: Sequence[HostId]) -> StepGenerator:
        """Crash repair: drop dead nodes, re-home their keys, fix fingers."""
        dead = set(host_ids)
        if not dead:
            raise ChurnError("Chord repair needs at least one crashed host")
        self._drop_from_ring(dead)
        for host_id in dead:
            self._stored_keys.pop(host_id, None)
            address = self._table_addresses.pop(host_id, None)
            if address is not None:
                # Bookkeeping: the dead host's finger table is lost with it.
                self.network.free(address)
        coordinator = self._node_ids[0][1]
        cursor = StepCursor(coordinator)
        yield from cursor.hop_to(coordinator)  # announce the coordinator (free)
        moved = yield from self._rehome_keys_by_hash(cursor, coordinator, dead)
        rewired = yield from self._repair_finger_tables(cursor)
        return MigrationSummary(
            kind="repair",
            hosts=tuple(sorted(dead)),
            records_moved=moved,
            pointers_rewired=rewired,
            hosts_touched=cursor.distinct_hosts(),
        )

    # ------------------------------------------------------------------ #
    # the limitation the paper highlights
    # ------------------------------------------------------------------ #
    def nearest_neighbor(self, query: float) -> None:
        """Chord cannot answer nearest-neighbour queries; see §1.2 of the paper."""
        raise NotImplementedError(
            "Chord hashes keys onto the ring, destroying order: nearest-neighbour, "
            "range and prefix queries are not supported (this is the motivation "
            "for skip graphs and skip-webs)."
        )

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #
    @property
    def keys(self) -> list[float]:
        return list(self._keys)

    @property
    def host_count(self) -> int:
        return self.network.host_count

    def max_memory_per_host(self) -> int:
        best = 0
        for address in self._table_addresses.values():
            table = self.network.load(address)
            best = max(best, len(table["fingers"]) + len(table["keys"]))
        return best
