"""Empirical verification of set-halving lemmas (§2.2, Lemmas 1, 3, 4, 5).

The paper's efficiency results all rest on set-halving lemmas: when a
random half ``T`` of the ground set ``S`` is taken, the maximal range of
``D(T)`` containing any fixed query conflicts with only O(1) ranges of
``D(S)`` in expectation.  The lemmas are proved analytically in the
paper; this module measures the same expectations empirically, which is
what the Figure 3 / Figure 4 / Lemma 1 / Lemma 4 benchmarks report.

:func:`verify_halving` works for *any* range-determined link structure:
it repeatedly samples ``T`` (each item kept independently with
probability 1/2, exactly as in Lemmas 3–5), builds ``D(T)`` and ``D(S)``,
locates each query in ``D(T)`` and counts the conflicting ranges in
``D(S)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean
from typing import Any, Sequence, Type

from repro.core.link_structure import RangeDeterminedLinkStructure


@dataclass(frozen=True)
class HalvingReport:
    """Conflict-list statistics gathered by :func:`verify_halving`.

    ``samples`` holds one conflict-list size per (trial, query) pair; the
    aggregate properties are what benchmarks print next to the paper's
    claimed constants (e.g. Lemma 1's bound of 7).
    """

    structure_name: str
    ground_set_size: int
    trials: int
    query_count: int
    samples: tuple[int, ...]

    @property
    def mean_conflicts(self) -> float:
        """The empirical estimate of ``E[|C(Q, S)|]``."""
        if not self.samples:
            return 0.0
        return mean(self.samples)

    @property
    def max_conflicts(self) -> int:
        """Worst conflict-list size observed (tail behaviour)."""
        return max(self.samples) if self.samples else 0

    @property
    def p99_conflicts(self) -> float:
        """99th percentile of conflict-list sizes."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(0.99 * (len(ordered) - 1))))
        return float(ordered[index])

    def as_dict(self) -> dict[str, float]:
        """Summary row for benchmark tables."""
        return {
            "n": float(self.ground_set_size),
            "trials": float(self.trials),
            "queries": float(self.query_count),
            "mean_conflicts": self.mean_conflicts,
            "p99_conflicts": self.p99_conflicts,
            "max_conflicts": float(self.max_conflicts),
        }


def sample_half(
    items: Sequence[Any], rng: random.Random, exact: bool = False
) -> list[Any]:
    """Draw the random half ``T`` of ``S``.

    ``exact=False`` keeps each item independently with probability 1/2
    (the sampling used by Lemmas 3–5); ``exact=True`` draws a uniformly
    random subset of exactly ``⌊n/2⌋`` items (the phrasing of the template
    lemma and Lemma 1).  Both satisfy the same asymptotics; the verifier
    exposes the choice so either phrasing can be checked.
    """
    if exact:
        half = len(items) // 2
        return rng.sample(list(items), half)
    return [item for item in items if rng.randrange(2) == 1]


def verify_halving(
    structure_cls: Type[RangeDeterminedLinkStructure],
    items: Sequence[Any],
    queries: Sequence[Any],
    trials: int = 20,
    rng: random.Random | None = None,
    exact_half: bool = False,
    **build_params: Any,
) -> HalvingReport:
    """Measure ``E[|C(Q, S)|]`` for a structure class on a concrete ground set.

    Parameters
    ----------
    structure_cls:
        The range-determined link structure to test.
    items:
        The ground set ``S``.
    queries:
        Universe points ``q``; for each, the maximal range of ``D(T)``
        containing ``q`` is found with the structure's own ``locate``.
    trials:
        Number of independent halvings ``T``.
    exact_half:
        See :func:`sample_half`.
    build_params:
        Structure-specific construction parameters (bounding box,
        alphabet, ...), shared by ``D(S)`` and every ``D(T)``.
    """
    rng = rng or random.Random(0)
    full_structure = structure_cls.build(list(items), **build_params)
    samples: list[int] = []
    for _ in range(trials):
        half_items = sample_half(items, rng, exact=exact_half)
        if not half_items:
            # An empty half can occur for tiny ground sets; the lemma is
            # about large n, so simply skip the degenerate draw.
            continue
        half_structure = structure_cls.build(half_items, **build_params)
        for query in queries:
            target = half_structure.locate_or_none(query)
            if target is None:
                continue
            conflict_list = full_structure.conflicts(target.range)
            samples.append(len(conflict_list))
    return HalvingReport(
        structure_name=getattr(structure_cls, "name", structure_cls.__name__),
        ground_set_size=len(items),
        trials=trials,
        query_count=len(queries),
        samples=tuple(samples),
    )
