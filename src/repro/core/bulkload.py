"""Bulk-load construction helpers (pre-sorted input + construction billing).

Every structure in this package can be built from an arbitrary item
sequence — constructors sort and deduplicate defensively.  For benchmark
setup that cost is pure overhead: workload generators can hand over
pre-sorted, pre-deduplicated data, and the ``build_from_sorted``
constructors let them say so.  Two shared helpers implement the pattern:

* :func:`is_strictly_increasing` — the O(n) verification that lets a
  constructor trust (or reject) a "pre-sorted" claim without paying the
  O(n log n) sort;
* :func:`charge_construction` — one :attr:`MessageKind.CONSTRUCTION`
  ledger message per remote placement, so bulk-loading is visible in the
  traffic ledger instead of silently free.  Construction traffic is
  excluded from the paper's ``Q``/``U`` measures by kind, so billing it
  never shifts a benchmark metric.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.net.message import MessageKind
from repro.net.naming import HostId


def is_strictly_increasing(values: Sequence[Any]) -> bool:
    """Whether ``values`` is sorted ascending with no duplicates (O(n))."""
    return all(first < second for first, second in zip(values, values[1:]))


def charge_construction(network, origin: HostId, destinations: Iterable[HostId]) -> int:
    """Charge one CONSTRUCTION message per remote placement; returns the count.

    ``origin`` plays the bulk-load coordinator: every stored record (or
    routing table, or copy) placed on another host costs one message, the
    same one-crossing-per-placement accounting the churn hand-off paths
    use.  Placements on the coordinator itself are local and free.
    """
    send = network.send
    charged = 0
    for destination in destinations:
        if destination != origin:
            send(origin, destination, kind=MessageKind.CONSTRUCTION)
            charged += 1
    return charged
