"""Output-sensitive range reporting over distributed skip-webs.

The paper's point queries answer "where does this value land?"; the
reporting queries here answer "which stored items lie inside this
range?" — 1-d key ranges, axis-aligned boxes, prefix sets, planar
windows — in O(log n + k) expected messages, where ``k`` is the output
size.  The protocol is the textbook two-phase shape, expressed once for
every skip-web instantiation:

1. **Locate** (O(log n)): descend the skip-web toward a representative
   point of the range (:meth:`~repro.core.link_structure
   .RangeDeterminedLinkStructure.range_to_query`), exactly as a point
   query would, reusing :func:`repro.core.query.descend_steps`.
2. **Report** (O(k)): enumerate the level-0 node units matching the
   range (:meth:`~repro.core.link_structure
   .RangeDeterminedLinkStructure.report_units`), split them into
   ``fan_out`` contiguous sub-walks and *fork* the operation
   (:class:`~repro.engine.steps.Fork`): each sub-walk visits its
   records in order, paying one message per host crossing and decoding
   matches locally (:meth:`report_values`).

Both phases run through the step-generator machinery, so the same
:func:`range_steps` generator is honest under immediate execution
(:func:`repro.engine.steps.run_immediate`) and under the round-based
:class:`~repro.engine.executor.BatchExecutor`, where each sub-walk
advances one host crossing per round — the fan-out is what keeps the
round count at O(log n + k / fan_out) while total messages stay
O(log n + k).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.query import descend_steps
from repro.engine.steps import StepCursor, StepGenerator, run_immediate
from repro.net.message import MessageKind
from repro.net.naming import Address, HostId

#: Default number of parallel report sub-walks a range query forks into.
DEFAULT_FAN_OUT = 2


@dataclass(frozen=True)
class RangeBranchReport:
    """What one report sub-walk brings back to its forking operation."""

    values: tuple[Any, ...]
    messages: int
    hosts_visited: tuple[HostId, ...]


@dataclass(frozen=True)
class RangeQueryResult:
    """Outcome of one output-sensitive range/reporting query.

    ``messages`` is the measured total (descent plus report);
    ``descent_messages`` / ``report_messages`` split it by phase so
    benchmarks can fit the O(log n) and O(k) terms separately.
    """

    query: Any
    matches: tuple[Any, ...]
    messages: int
    descent_messages: int
    report_messages: int
    origin_host: HostId
    hosts_visited: tuple[HostId, ...]
    levels_descended: int
    branches: int

    @property
    def count(self) -> int:
        """The output size ``k``."""
        return len(self.matches)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RangeQueryResult(query={self.query!r}, k={self.count}, "
            f"messages={self.messages})"
        )


def assemble_range_result(
    query: Any,
    reports: Sequence[RangeBranchReport],
    descent_messages: int,
    descent_hosts: Sequence[HostId],
    origin_host: HostId,
    levels_descended: int,
) -> RangeQueryResult:
    """Fold forked branch reports and the descent into one result.

    Shared by every ``range_steps`` implementation (generic skip-web,
    bucket layout, ordered baselines) so the result shape can only
    change in one place.
    """
    matches: list[Any] = []
    hosts: list[HostId] = list(descent_hosts)
    report_messages = 0
    for report in reports:
        matches.extend(report.values)
        report_messages += report.messages
        hosts.extend(host for host in report.hosts_visited[1:])
    return RangeQueryResult(
        query=query,
        matches=tuple(matches),
        messages=descent_messages + report_messages,
        descent_messages=descent_messages,
        report_messages=report_messages,
        origin_host=origin_host,
        hosts_visited=tuple(hosts),
        levels_descended=levels_descended,
        branches=len(reports),
    )


def partition_walks(items: Sequence[Any], fan_out: int) -> list[list[Any]]:
    """Split ``items`` into at most ``fan_out`` contiguous, non-empty chunks."""
    if not items:
        return []
    fan_out = max(1, min(fan_out, len(items)))
    size, remainder = divmod(len(items), fan_out)
    chunks: list[list[Any]] = []
    start = 0
    for index in range(fan_out):
        end = start + size + (1 if index < remainder else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


def report_walk(
    structure,
    query_range: Any,
    entries: Sequence[tuple[Any, Address]],
    start_host: HostId,
) -> StepGenerator:
    """One report sub-walk: visit each record, decode its matches locally.

    ``entries`` are (unit, address) pairs in walk order; co-located
    consecutive records are free (the cursor only charges host
    crossings), which is what makes the report phase output-sensitive
    rather than paying ``k`` messages unconditionally.
    """
    cursor = StepCursor(start_host)
    values: list[Any] = []
    for _unit, address in entries:
        record = yield from cursor.visit(address)
        values.extend(structure.report_values(query_range, record.unit))
    return RangeBranchReport(
        values=tuple(values),
        messages=cursor.hops,
        hosts_visited=cursor.path_tuple(),
    )


def range_steps(
    skipweb,
    query_range: Any,
    origin_host: HostId,
    fan_out: int = DEFAULT_FAN_OUT,
) -> StepGenerator:
    """The generic skip-web range query as a resumable step generator.

    Works for any :class:`~repro.core.skipweb.SkipWeb` whose link
    structure implements the range-reporting hooks (``range_to_query`` /
    ``report_units`` / ``report_values``); the four instantiations
    specialise only those hooks, never this routing.
    """
    cursor = StepCursor(origin_host)
    anchor = skipweb.structure_cls.range_to_query(query_range)
    _record, levels_descended, _per_level = yield from descend_steps(
        skipweb, anchor, cursor
    )
    descent_messages = cursor.hops

    level0 = skipweb.level_structure(0, ())
    matched_units = level0.report_units(query_range)
    entries = [
        (unit, skipweb.address_of(0, (), unit.key)) for unit in matched_units
    ]
    chunks = partition_walks(entries, fan_out)
    reports = yield from cursor.fork(
        [
            report_walk(level0, query_range, chunk, cursor.current_host)
            for chunk in chunks
        ]
    )
    return assemble_range_result(
        query_range,
        reports,
        descent_messages=descent_messages,
        descent_hosts=cursor.path,
        origin_host=origin_host,
        levels_descended=levels_descended,
    )


def execute_range_query(
    skipweb,
    query_range: Any,
    origin_host: HostId,
    fan_out: int = DEFAULT_FAN_OUT,
    kind: MessageKind = MessageKind.QUERY,
) -> RangeQueryResult:
    """Drive a range query to completion immediately (the classic path)."""
    return run_immediate(
        skipweb.network,
        range_steps(skipweb, query_range, origin_host, fan_out=fan_out),
        origin_host,
        kind=kind,
    )
