"""Skip-web level construction (§2.3 of the paper).

Every item of the ground set receives a random *membership word* — an
independent sequence of fair coin flips.  The level-``ℓ`` subsets are the
groups of items sharing the same ``ℓ``-bit prefix:

* level 0 is the whole ground set (empty prefix),
* each level-``ℓ`` set ``S_b`` splits into ``S_{b0}`` and ``S_{b1}`` at
  level ``ℓ+1`` according to the next bit,
* the process stops after ``⌈log₂ n⌉`` levels, where the expected size of
  each surviving set is O(1).

The membership word of an item plays the same role as the membership
vector of a skip graph: the sequence of structures a search descends
through is exactly the chain of prefixes of the *origin* item's word.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Sequence

BitPrefix = tuple[int, ...]
"""A level index: the tuple of membership bits shared by a level set."""


def required_height(item_count: int) -> int:
    """Number of halving levels for ``item_count`` items: ``⌈log₂ n⌉`` (≥ 1)."""
    if item_count <= 1:
        return 1
    return max(1, math.ceil(math.log2(item_count)))


class MembershipAssignment:
    """Random membership words for a set of items.

    Parameters
    ----------
    items:
        The ground set.  Items must be hashable (they key the word table).
    height:
        Word length; defaults to ``⌈log₂ n⌉`` as in the paper.
    rng:
        Seeded random source; the whole skip-web is reproducible given the
        seed.
    """

    def __init__(
        self,
        items: Sequence[Any],
        height: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self._rng = rng or random.Random(0)
        self._height = height if height is not None else required_height(len(items))
        if self._height < 1:
            raise ValueError(f"height must be at least 1, got {self._height}")
        self._words: dict[Hashable, BitPrefix] = {}
        for item in items:
            self._words[item] = self._fresh_word()

    def _fresh_word(self) -> BitPrefix:
        return tuple(self._rng.randrange(2) for _ in range(self._height))

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """The number of levels above level 0."""
        return self._height

    def word(self, item: Any) -> BitPrefix:
        """The membership word assigned to ``item``."""
        return self._words[item]

    def prefix(self, item: Any, level: int) -> BitPrefix:
        """The first ``level`` bits of the item's word (its level-``level`` set index)."""
        if not 0 <= level <= self._height:
            raise ValueError(f"level must be in [0, {self._height}], got {level}")
        return self._words[item][:level]

    def items(self) -> Iterator[Any]:
        """Iterate over the items that have words."""
        return iter(self._words)

    def __contains__(self, item: Any) -> bool:
        return item in self._words

    def __len__(self) -> int:
        return len(self._words)

    # ------------------------------------------------------------------ #
    # dynamic membership (used by inserts/deletes, §4)
    # ------------------------------------------------------------------ #
    def assign(self, item: Any) -> BitPrefix:
        """Draw and record a fresh word for a newly inserted item."""
        if item in self._words:
            raise ValueError(f"item {item!r} already has a membership word")
        word = self._fresh_word()
        self._words[item] = word
        return word

    def forget(self, item: Any) -> BitPrefix:
        """Remove and return the word of a deleted item."""
        try:
            return self._words.pop(item)
        except KeyError as exc:
            raise KeyError(f"item {item!r} has no membership word") from exc

    # ------------------------------------------------------------------ #
    # level sets
    # ------------------------------------------------------------------ #
    def level_sets(self, level: int) -> dict[BitPrefix, list[Any]]:
        """Group items by their ``level``-bit prefix.

        Only non-empty groups are returned; insertion order of the
        original ground set is preserved within each group so that
        structure construction is deterministic given the words.
        """
        if not 0 <= level <= self._height:
            raise ValueError(f"level must be in [0, {self._height}], got {level}")
        groups: dict[BitPrefix, list[Any]] = {}
        for item, word in self._words.items():
            groups.setdefault(word[:level], []).append(item)
        return groups

    def all_level_sets(self) -> "LevelSets":
        """Materialise every level's grouping at once."""
        return LevelSets(
            by_level=[self.level_sets(level) for level in range(self._height + 1)]
        )


@dataclass(frozen=True)
class LevelSets:
    """The groups of items at every level, level 0 (everything) first."""

    by_level: list[dict[BitPrefix, list[Any]]]

    @property
    def height(self) -> int:
        """Highest level index."""
        return len(self.by_level) - 1

    def sets_at(self, level: int) -> dict[BitPrefix, list[Any]]:
        """The non-empty sets at one level, keyed by bit prefix."""
        return self.by_level[level]

    def set_count(self) -> int:
        """Total number of non-empty level sets across all levels."""
        return sum(len(groups) for groups in self.by_level)

    def total_copies(self) -> int:
        """Total number of (item, level) copies stored — O(n log n) expected.

        This is the quantity §2.4 describes as "the O(n log n) possible"
        nodes and links to distribute among hosts.
        """
        return sum(
            len(members) for groups in self.by_level for members in groups.values()
        )

    def prefixes_of(self, word: BitPrefix) -> Iterator[BitPrefix]:
        """The chain of prefixes of ``word``, longest (top level) first.

        A search originating at the item owning ``word`` descends through
        exactly these level sets.
        """
        for level in range(self.height, -1, -1):
            yield word[:level]

    def max_set_size(self, level: int) -> int:
        """Size of the largest set at ``level`` (top levels should be O(1))."""
        groups = self.by_level[level]
        if not groups:
            return 0
        return max(len(members) for members in groups.values())
