"""Range-determined link structures (§2.1 of the paper).

A range-determined link structure ``D(S)`` is a deterministic data
structure built from a ground set ``S``: a collection of *nodes* and
*links*, each carrying a range of universe values, with a node and a link
incident exactly when their ranges intersect.

The skip-web framework never manipulates domain data structures
directly; it talks to them through the abstract interface defined here:

* :class:`RangeUnit` — one node or link together with its range and a
  hashable key.
* :class:`RangeDeterminedLinkStructure` — the abstract structure: it can
  enumerate its units, report incidences, compute conflict lists against
  an arbitrary range, locate a query locally, pick the best unit among a
  candidate set and take a single navigation step.

Concrete subclasses live next to their domains:
:class:`repro.onedim.linked_list.SortedListStructure`,
:class:`repro.spatial.skip_quadtree.QuadtreeStructure`,
:class:`repro.strings.skip_trie.TrieStructure` and
:class:`repro.planar.skip_trapezoid.TrapezoidalMapStructure`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

from repro.core.ranges import (
    Interval,
    Range,
    Singleton,
    interval_anchor,
    ranges_conflict,
)
from repro.errors import QueryError, StructureError


class UnitKind(enum.Enum):
    """Whether a unit of the structure is a node or a link."""

    NODE = "node"
    LINK = "link"


@dataclass(frozen=True, slots=True)
class RangeUnit:
    """One node or link of a range-determined link structure.

    Attributes
    ----------
    key:
        A hashable identifier, unique within its structure, stable across
        rebuilds of the same element set (so that diffs after an update
        are meaningful).
    kind:
        Node or link.
    range:
        The unit's range (a :class:`repro.core.ranges.Range`).
    payload:
        Arbitrary structure-specific data (the stored item for a node,
        the endpoints for a link, the trapezoid geometry, ...).
    """

    key: Hashable
    kind: UnitKind
    range: Range
    payload: Any = None

    @property
    def is_node(self) -> bool:
        return self.kind is UnitKind.NODE

    @property
    def is_link(self) -> bool:
        return self.kind is UnitKind.LINK

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RangeUnit({self.kind.value}, key={self.key!r}, range={self.range!r})"


class RangeDeterminedLinkStructure(abc.ABC):
    """Abstract base class for the structures the skip-web framework uses.

    Subclasses must be *deterministic in the ground set*: building the
    structure twice from the same items must yield the same units with
    the same keys (§2.1 calls this a "unique link structure").
    """

    #: Human-readable name used in benchmark tables and reports.
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    @abc.abstractmethod
    def build(cls, items: Sequence[Any], **params: Any) -> "RangeDeterminedLinkStructure":
        """Build ``D(items)``.

        ``params`` carries structure-specific configuration shared across
        every level of a skip-web (e.g. the bounding box of a quadtree or
        the alphabet of a trie) so that levels are mutually compatible.
        """

    @property
    @abc.abstractmethod
    def items(self) -> Sequence[Any]:
        """The ground set this structure was built from."""

    # ------------------------------------------------------------------ #
    # units and incidences
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def units(self) -> list[RangeUnit]:
        """Every node and link of the structure."""

    @abc.abstractmethod
    def neighbors(self, key: Hashable) -> list[RangeUnit]:
        """Units incident to the unit identified by ``key``.

        Incidence follows §2.1: a node and a link are incident exactly
        when their ranges intersect.  Subclasses normally return the
        structural adjacency directly (a link's two endpoint nodes, a
        node's incident links) which coincides with the range definition.
        """

    def unit(self, key: Hashable) -> RangeUnit:
        """Return the unit with the given key (default: linear scan)."""
        for candidate in self.units():
            if candidate.key == key:
                return candidate
        raise StructureError(f"{self.name}: no unit with key {key!r}")

    def unit_map(self) -> Mapping[Hashable, RangeUnit]:
        """The key → unit mapping (default: built fresh from :meth:`units`).

        Subclasses that already index their units return the index
        directly, so diff-heavy callers (the §4 update protocol) do not
        rebuild a dictionary per level per operation.  Callers must not
        mutate the returned mapping.
        """
        return {unit.key: unit for unit in self.units()}

    def __len__(self) -> int:
        """Number of units (nodes plus links)."""
        return len(self.units())

    # ------------------------------------------------------------------ #
    # conflicts (§2.2)
    # ------------------------------------------------------------------ #
    def overlapping(self, query_range: Range) -> list[RangeUnit]:
        """All units of this structure whose range intersects ``query_range``.

        This is the literal conflict list ``C(Q, S)`` of §2.2 (non-empty
        range intersection).  The default implementation scans every unit;
        subclasses override it with a structure-aware search (bisection
        for lists, pruned tree walks for quadtrees and tries) because the
        update protocol calls it to discover which records an update may
        touch.
        """
        return [unit for unit in self.units() if ranges_conflict(query_range, unit.range)]

    def conflicts(self, query_range: Range) -> list[RangeUnit]:
        """The units an external range's hyperlinks should point at.

        By default this is exactly :meth:`overlapping` — the paper's
        conflict list.  Structures whose overlap sets contain a long
        containment chain (compressed quadtrees: every ancestor of a cell
        intersects it) override this with the *search-relevant* subset
        (e.g. the smallest enclosing cell), which is what keeps hyperlink
        fan-out and update costs at the O(1)-per-level expectation the
        paper's analysis relies on.  Query correctness only requires that
        the level-below target be reachable from the returned units by
        :meth:`advance` steps.
        """
        return self.overlapping(query_range)

    # ------------------------------------------------------------------ #
    # range reporting (output-sensitive queries)
    # ------------------------------------------------------------------ #
    @classmethod
    def range_to_query(cls, query_range: Range) -> Any:
        """A representative query point of ``query_range``, anchoring the descent.

        A distributed range query first *locates* one point of the range
        in O(log n) expected messages, then fans out sub-walks over the
        matching records.  This hook supplies the point the locate phase
        descends toward.  The default understands the generic
        one-dimensional ranges; multi-dimensional structures override it
        for their own range types.
        """
        if isinstance(query_range, Singleton):
            return query_range.value
        if isinstance(query_range, Interval):
            return interval_anchor(query_range, 0.0)
        raise QueryError(
            f"{cls.name}: no descent anchor for range {query_range!r}"
        )

    def report_units(self, query_range: Range) -> list[RangeUnit]:
        """The node units a reporting query for ``query_range`` must visit.

        Returned in walk order (the order the report sub-walks traverse
        them), so contiguous chunks of the list make host-coherent
        sub-walks.  The default filters :meth:`overlapping` to nodes,
        which is correct for every structure whose items live on node
        units; structures with a cheaper structure-aware enumeration
        (pruned tree walks, prefix subtrees) override it.
        """
        return [unit for unit in self.overlapping(query_range) if unit.is_node]

    def report_values(self, query_range: Range, unit: RangeUnit) -> list[Any]:
        """The matched items stored at ``unit`` for a reporting query.

        Called on each record a report sub-walk visits; the returned
        values are concatenated into the query's match list.  The default
        reports the unit's payload when it lies inside the range (the
        sorted-list convention: a node's payload is its key).
        """
        payload = unit.payload
        if payload is not None and query_range.contains(payload):
            return [payload]
        return []

    # ------------------------------------------------------------------ #
    # searching
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def locate(self, query: Any) -> RangeUnit:
        """Full local search: the target unit for ``query`` in this structure.

        The *target* is the structure-specific answer location: the node
        or link whose range contains the query key for a sorted list, the
        smallest quadtree cell containing the query point, the deepest
        trie position matching the query string, the trapezoid containing
        the query point.  Used for the top level of a skip-web (whose
        expected size is O(1)), for the set-halving verifier, and as the
        reference answer in tests.
        """

    @classmethod
    @abc.abstractmethod
    def select(cls, query: Any, candidates: Sequence[RangeUnit]) -> RangeUnit:
        """Choose the best starting unit for ``query`` among ``candidates``.

        Called while descending a skip-web: ``candidates`` is the conflict
        list (hyperlinks) of the unit found one level above.  The returned
        unit is either already the target at this level or a good starting
        point for :meth:`advance`.
        """

    @classmethod
    @abc.abstractmethod
    def advance(
        cls,
        query: Any,
        current: RangeUnit,
        neighbors: Mapping[Hashable, Range],
    ) -> Hashable | None:
        """One navigation step within a level.

        Given the unit the search currently occupies and the ranges of its
        incident units (keyed by unit key), return the key of the unit to
        move to next, or ``None`` when ``current`` is already the target
        for ``query``.  The skip-web query engine charges one message
        whenever the returned unit lives on a different host.
        """

    @classmethod
    def item_to_query(cls, item: Any) -> Any:
        """The query point used to locate an *item* during updates (§4).

        For most structures the item is itself a valid query (a key, a
        point, a string).  Structures whose items are not points of the
        query universe — e.g. trapezoidal maps, whose items are segments
        but whose queries are planar points — override this to return a
        representative query point for the item.
        """
        return item

    @abc.abstractmethod
    def answer(self, query: Any, unit: RangeUnit) -> Any:
        """Decode the domain-specific answer once the level-0 target is found.

        For example, the one-dimensional structure returns the nearest
        stored key, the trie returns the longest matching prefix and the
        matching stored strings, the trapezoidal map returns the trapezoid.
        """

    # ------------------------------------------------------------------ #
    # updates (§4)
    # ------------------------------------------------------------------ #
    def with_item(self, item: Any) -> "RangeDeterminedLinkStructure":
        """Return ``D(S ∪ {item})``.

        The default rebuilds from scratch, which is always correct because
        the structure is determined by its ground set; subclasses may
        override with an incremental version.  The skip-web update
        protocol charges messages according to the *diff* between the old
        and new unit sets, not according to how the new structure was
        computed, so rebuilding does not distort the measured ``U(n)``.
        """
        if item in self.items:
            raise StructureError(f"{self.name}: item {item!r} already present")
        return type(self).build(list(self.items) + [item], **self.build_params())

    def without_item(self, item: Any) -> "RangeDeterminedLinkStructure":
        """Return ``D(S \\ {item})`` (default: rebuild)."""
        remaining = [existing for existing in self.items if existing != item]
        if len(remaining) == len(self.items):
            raise StructureError(f"{self.name}: item {item!r} not present")
        return type(self).build(remaining, **self.build_params())

    def build_params(self) -> dict[str, Any]:
        """The ``params`` needed to rebuild a compatible structure.

        Subclasses with configuration (bounding boxes, alphabets) override
        this so that :meth:`with_item` / :meth:`without_item` and the
        level builder construct compatible structures.
        """
        return {}

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #
    def node_units(self) -> list[RangeUnit]:
        """Only the node units."""
        return [unit for unit in self.units() if unit.is_node]

    def link_units(self) -> list[RangeUnit]:
        """Only the link units."""
        return [unit for unit in self.units() if unit.is_link]

    def keys(self) -> set[Hashable]:
        """The set of unit keys (used to diff structures across updates)."""
        return {unit.key for unit in self.units()}

    def validate(self) -> None:
        """Check basic invariants; raises :class:`StructureError` on violation.

        The default checks that keys are unique and that declared
        neighbours really do have intersecting ranges (the §2.1 incidence
        condition).  Tests call this after construction and after updates.
        """
        seen: set[Hashable] = set()
        for unit in self.units():
            if unit.key in seen:
                raise StructureError(f"{self.name}: duplicate unit key {unit.key!r}")
            seen.add(unit.key)
        for unit in self.units():
            for neighbor in self.neighbors(unit.key):
                if not ranges_conflict(unit.range, neighbor.range):
                    raise StructureError(
                        f"{self.name}: units {unit.key!r} and {neighbor.key!r} are "
                        "declared incident but their ranges do not intersect"
                    )

    def locate_or_none(self, query: Any) -> RangeUnit | None:
        """:meth:`locate` that returns ``None`` instead of raising."""
        try:
            return self.locate(query)
        except QueryError:
            return None
