"""The skip-web framework (the paper's primary contribution).

The framework follows §2 of the paper:

1.  A *range-determined link structure* (§2.1) is a deterministic data
    structure ``D(S)`` built from a ground set ``S``, whose nodes and
    links carry *ranges* (sets of universe values), with incidence
    defined by range intersection.  See
    :mod:`repro.core.link_structure` and :mod:`repro.core.ranges`.

2.  A *set-halving lemma* (§2.2) bounds the expected number of ranges of
    ``D(S)`` that conflict with the maximal range of ``D(T)`` containing
    a query, when ``T`` is a random half of ``S``.  The empirical
    verifier lives in :mod:`repro.core.halving`.

3.  *Skip-web levels* (§2.3) are built by repeatedly halving the ground
    set at random; :mod:`repro.core.levels` assigns each item a random
    membership word and groups items by prefix.

4.  *Distributed blocking* (§2.4) assigns the nodes and links of every
    level to hosts; :mod:`repro.core.blocking` provides the arbitrary
    assignment of §2.4 (round-robin, hash and owner-based variants) and
    the contiguous-block strategy of §2.4.1 used by the one-dimensional
    bucket skip-web.

5.  *Queries* (§2.5) and *updates* (§4) route through the distributed
    records; :mod:`repro.core.skipweb`, :mod:`repro.core.query` and
    :mod:`repro.core.update` implement the protocols, and
    :mod:`repro.core.stats` measures the resulting costs.
"""

from repro.core.ranges import Range, Interval, Singleton, EverythingRange
from repro.core.link_structure import RangeUnit, UnitKind, RangeDeterminedLinkStructure
from repro.core.levels import MembershipAssignment, LevelSets
from repro.core.blocking import (
    BlockingPolicy,
    RoundRobinBlocking,
    HashBlocking,
    OwnerBlocking,
)
from repro.core.halving import HalvingReport, verify_halving
from repro.core.skipweb import SkipWeb, SkipWebConfig
from repro.core.query import QueryResult
from repro.core.range_query import RangeQueryResult
from repro.core.update import UpdateResult
from repro.core.stats import StructureCosts, measure_costs

__all__ = [
    "Range",
    "Interval",
    "Singleton",
    "EverythingRange",
    "RangeUnit",
    "UnitKind",
    "RangeDeterminedLinkStructure",
    "MembershipAssignment",
    "LevelSets",
    "BlockingPolicy",
    "RoundRobinBlocking",
    "HashBlocking",
    "OwnerBlocking",
    "HalvingReport",
    "verify_halving",
    "SkipWeb",
    "SkipWebConfig",
    "QueryResult",
    "RangeQueryResult",
    "UpdateResult",
    "StructureCosts",
    "measure_costs",
]
