"""The distributed skip-web structure (§2.3–§2.5 of the paper).

:class:`SkipWeb` ties the framework together for an arbitrary
range-determined link structure:

* it assigns every ground-set item a random membership word
  (:mod:`repro.core.levels`),
* builds one link structure per non-empty level set,
* turns every node and link of every level into a *record* stored on a
  host chosen by the blocking policy (:mod:`repro.core.blocking`),
* wires hyperlinks (conflict lists) from each level down to the level
  below, and neighbour pointers within each level,
* and answers queries (:mod:`repro.core.query`) and updates
  (:mod:`repro.core.update`) by routing messages over the simulated
  network.

The records stored on hosts are self-contained: a record knows its unit,
the ranges and addresses of its in-structure neighbours, and the
addresses of the conflicting records one level down.  Query routing only
ever reads records through resumable step generators
(:func:`repro.core.query.query_steps`), so every host crossing is charged
exactly one message — this is what the Table 1 and Theorem 2 benchmarks
measure.

Operations run in two execution modes.  The default *immediate* mode
(:meth:`SkipWeb.query` / :meth:`SkipWeb.insert` / :meth:`SkipWeb.delete`)
drives each operation synchronously, one at a time.  The *batched,
round-based* mode runs many operations concurrently: ``SkipWeb``
implements the :class:`repro.engine.protocol.DistributedStructure`
protocol (``search_steps`` / ``insert_steps`` / ``delete_steps`` /
``seed_roots``), so a :class:`repro.engine.executor.BatchExecutor` can
interleave whole workloads round by round over the network's queued
delivery mode and measure throughput and per-host per-round congestion
directly — see :mod:`repro.engine`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Sequence, Type

from repro.core.blocking import (
    BlockingPolicy,
    HashBlocking,
    OwnerBlocking,
    RoundRobinBlocking,
    evenly_owned_items,
)
from repro.core.bulkload import charge_construction
from repro.core.levels import BitPrefix, MembershipAssignment
from repro.core.link_structure import RangeDeterminedLinkStructure, RangeUnit
from repro.core.query import QueryResult, execute_query, query_steps
from repro.core.range_query import (
    DEFAULT_FAN_OUT,
    RangeQueryResult,
    execute_range_query,
    range_steps as range_query_steps,
)
from repro.engine.repair import MigrationSummary
from repro.engine.steps import StepCursor, StepGenerator, local_steps
from repro.core.ranges import Range
from repro.errors import ChurnError, QueryError, StructureError
from repro.net.congestion import CongestionReport, congestion_report
from repro.net.naming import Address, HostId
from repro.net.network import Network


@dataclass
class SkipWebRecord:
    """One node or link of one level structure, as stored on a host.

    ``down_links`` are the hyperlinks of §2.3: for every unit of the
    parent level structure that conflicts with this unit's range, the
    record keeps a *copy of the unit* (so the next hop can be chosen
    locally) together with the address of its record.  ``neighbors`` are
    the incident units within the same level structure, likewise stored
    as (range, address) pairs.
    """

    level: int
    prefix: BitPrefix
    unit: RangeUnit
    down_links: list[tuple[RangeUnit, Address]] = field(default_factory=list)
    neighbors: dict[Hashable, tuple[Range, Address]] = field(default_factory=dict)
    # Derived key -> range view of ``neighbors``, built lazily by the
    # query walk and dropped whenever ``neighbors`` is rewired.
    neighbor_ranges: dict[Hashable, Range] | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SkipWebRecord(level={self.level}, prefix={self.prefix}, "
            f"key={self.unit.key!r}, down={len(self.down_links)}, "
            f"neighbors={len(self.neighbors)})"
        )


@dataclass
class SkipWebConfig:
    """Construction parameters for a :class:`SkipWeb`.

    Attributes
    ----------
    host_count:
        Number of hosts to create when the caller does not pass a
        pre-populated network.  Defaults to one host per item — the
        deployment assumed by Theorem 2.
    blocking:
        ``"owner"`` (default), ``"round_robin"``, ``"hash"`` or a
        ready-made :class:`BlockingPolicy`.
    height:
        Number of halving levels; defaults to ``⌈log₂ n⌉``.
    seed:
        Seed for the membership-word coin flips.
    structure_params:
        Extra keyword arguments passed to every ``structure_cls.build``
        call (bounding boxes, alphabets, ...).
    """

    host_count: int | None = None
    blocking: str | BlockingPolicy = "owner"
    height: int | None = None
    seed: int = 0
    structure_params: dict[str, Any] = field(default_factory=dict)


class SkipWeb:
    """A distributed skip-web over an arbitrary range-determined link structure.

    Parameters
    ----------
    structure_cls:
        The :class:`RangeDeterminedLinkStructure` subclass to build at
        every level.
    items:
        The ground set ``S``.  Items must be hashable.
    network:
        An existing :class:`Network` to build into; a fresh one is created
        when omitted.
    config:
        See :class:`SkipWebConfig`.
    """

    def __init__(
        self,
        structure_cls: Type[RangeDeterminedLinkStructure],
        items: Sequence[Any],
        network: Network | None = None,
        config: SkipWebConfig | None = None,
    ) -> None:
        if not items:
            raise StructureError("cannot build a skip-web over an empty ground set")
        self.structure_cls = structure_cls
        self.config = config or SkipWebConfig()
        self._rng = random.Random(self.config.seed)

        self.network = network if network is not None else Network()
        if self.network.host_count == 0:
            host_count = self.config.host_count or len(items)
            self.network.add_hosts(host_count)
        self._host_ids = [host.host_id for host in self.network.hosts()]

        # Home hosts for items: queries about an item start at its owner.
        self._owners: dict[Any, HostId] = evenly_owned_items(list(items), self._host_ids)

        self._membership = MembershipAssignment(
            list(items), height=self.config.height, rng=self._rng
        )
        self._blocking = self._make_blocking_policy()

        # (level, prefix) -> structure instance
        self._structures: dict[tuple[int, BitPrefix], RangeDeterminedLinkStructure] = {}
        # (level, prefix, unit key) -> address of the record
        self._address_of: dict[tuple[int, BitPrefix, Hashable], Address] = {}
        # Same addresses, nested per level set: the rewiring hot path does
        # many lookups within one level, and hashing the short unit key
        # beats re-hashing the composite triple every time.
        self._level_addresses: dict[tuple[int, BitPrefix], dict[Hashable, Address]] = {}
        # host -> membership word of the item whose top-level structure is
        # that host's root
        self._root_word_of_host: dict[HostId, BitPrefix] = {}
        # root_entries() memo, invalidated whenever the record layout moves
        # (record creation/removal, churn re-homing) via ``_layout_epoch``.
        self._layout_epoch = 0
        self._root_cache: dict[HostId, list[tuple[RangeUnit, Address]]] = {}
        self._root_cache_epoch = -1

        #: CONSTRUCTION messages charged by a bulk-load build (0 otherwise).
        self.construction_messages = 0

        self._build()

    @classmethod
    def build_from_sorted(
        cls,
        structure_cls: Type[RangeDeterminedLinkStructure],
        items: Sequence[Any],
        network: Network | None = None,
        config: SkipWebConfig | None = None,
    ) -> "SkipWeb":
        """Bulk-load constructor over pre-sorted, deduplicated ``items``.

        Semantically identical to the ordinary constructor — membership
        words are drawn in item order either way, so queries and updates
        cost exactly the same afterwards — but built for benchmark setup:
        the level structures detect the pre-sorted input and skip their
        defensive O(n log n) sorts, and every record placed on a host
        other than the coordinator is charged one
        :attr:`~repro.net.message.MessageKind.CONSTRUCTION` ledger
        message (``construction_messages`` records the total), so
        bulk-load traffic is measurable instead of silently free.
        """
        web = cls(structure_cls, items, network=network, config=config)
        web.construction_messages = web._charge_construction()
        return web

    def _charge_construction(self) -> int:
        """Bill one CONSTRUCTION message per remotely placed record."""
        coordinator = self._host_ids[0]
        return charge_construction(
            self.network,
            coordinator,
            (address.host for address in self._address_of.values()),
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _make_blocking_policy(self) -> BlockingPolicy:
        blocking = self.config.blocking
        if isinstance(blocking, BlockingPolicy):
            return blocking
        if blocking == "round_robin":
            return RoundRobinBlocking(self._host_ids)
        if blocking == "hash":
            return HashBlocking(self._host_ids)
        if blocking == "owner":
            return OwnerBlocking(self._owners, fallback=self._host_ids[0])
        raise ValueError(f"unknown blocking policy {blocking!r}")

    def _build(self) -> None:
        level_sets = self._membership.all_level_sets()
        # 1. build every level structure
        for level in range(level_sets.height + 1):
            for prefix, members in level_sets.sets_at(level).items():
                self._structures[(level, prefix)] = self.structure_cls.build(
                    list(members), **self.config.structure_params
                )
        # 2. create record shells so every unit has an address
        for (level, prefix), structure in self._structures.items():
            for unit in structure.units():
                self._create_record(level, prefix, unit)
        # 3. wire neighbours and hyperlinks.  Records are fresh (their
        #    ``unit`` is the very object stored in step 2 and their
        #    pointer fields are empty), so wiring writes directly instead
        #    of going through :meth:`_rewire_record`'s changed-comparison.
        for (level, prefix), structure in self._structures.items():
            self._wire_fresh_level(level, prefix, structure)
        # 4. roots: each host starts searches at the top-level structure of
        #    one of the items it owns (or of an arbitrary item if it owns
        #    none), mirroring the paper's per-host root pointer.
        fallback_word = self._membership.word(next(self._membership.items()))
        owned_by_host: dict[HostId, Any] = {}
        for item, owner in self._owners.items():
            owned_by_host.setdefault(owner, item)
        for host_id in self._host_ids:
            item = owned_by_host.get(host_id)
            word = self._membership.word(item) if item is not None else fallback_word
            self._root_word_of_host[host_id] = word
        # 5. congestion bookkeeping
        self.recompute_reference_counts()

    def _create_record(self, level: int, prefix: BitPrefix, unit: RangeUnit) -> Address:
        """Store a fresh (unwired) record on the host the blocking policy picks."""
        host_id = self._blocking.assign(level, prefix, unit)
        record = SkipWebRecord(level=level, prefix=prefix, unit=unit)
        address = self.network.store(host_id, record)
        self._address_of[(level, prefix, unit.key)] = address
        self._level_addresses.setdefault((level, prefix), {})[unit.key] = address
        self._layout_epoch += 1
        return address

    def _remove_record(self, level: int, prefix: BitPrefix, key: Hashable) -> Address:
        """Free a record's slot and forget its address."""
        address = self._address_of.pop((level, prefix, key))
        self._level_addresses[(level, prefix)].pop(key, None)
        self.network.free(address)
        self._layout_epoch += 1
        return address

    def _wire_fresh_level(self, level: int, prefix: BitPrefix, structure: Any) -> None:
        """Wire every record of a freshly created level structure.

        Bulk-construction fast path for :meth:`_build` step 3: the
        per-level lookups are hoisted out of the per-unit loop and the
        changed-detection of :meth:`_rewire_record` is skipped (fresh
        records have nothing to compare against).
        """
        addresses = self._level_addresses[(level, prefix)]
        load = self.network.load
        neighbors_of = structure.neighbors
        if level > 0:
            parent_prefix = prefix[:-1]
            parent_structure = self._structures.get((level - 1, parent_prefix))
            if parent_structure is None:
                raise StructureError(
                    f"missing parent structure for level {level} prefix {prefix}"
                )
            parent_addresses = self._level_addresses[(level - 1, parent_prefix)]
            conflicts = parent_structure.conflicts
            for unit in structure.units():
                key = unit.key
                record: SkipWebRecord = load(addresses[key], check_alive=False)
                record.neighbors = {
                    neighbor.key: (neighbor.range, addresses[neighbor.key])
                    for neighbor in neighbors_of(key)
                }
                record.down_links = [
                    (conflicting, parent_addresses[conflicting.key])
                    for conflicting in conflicts(unit.range)
                ]
        else:
            for unit in structure.units():
                key = unit.key
                record = load(addresses[key], check_alive=False)
                record.neighbors = {
                    neighbor.key: (neighbor.range, addresses[neighbor.key])
                    for neighbor in neighbors_of(key)
                }

    def _record_at(self, level: int, prefix: BitPrefix, key: Hashable) -> SkipWebRecord:
        # Bookkeeping access (rewiring during updates): must not be
        # interruptible by an injected host failure mid-mutation.
        return self.network.load(self._address_of[(level, prefix, key)], check_alive=False)

    def _rewire_record(self, level: int, prefix: BitPrefix, key: Hashable) -> bool:
        """Recompute a record's neighbour pointers and hyperlinks in place.

        Neighbours are the unit's incident units within the same level
        structure; hyperlinks are the conflict list in the parent
        structure (one level down in the descent direction, i.e. the
        structure for ``prefix[:-1]``), per §2.3.

        Returns ``True`` when any stored content actually changed — the
        update protocol uses this to charge messages only for records a
        real deployment would have had to touch.
        """
        structure = self._structures[(level, prefix)]
        addresses = self._level_addresses[(level, prefix)]
        record: SkipWebRecord = self.network.load(addresses[key], check_alive=False)
        unit = structure.unit(key)

        neighbors: dict[Hashable, tuple[Range, Address]] = {
            neighbor.key: (neighbor.range, addresses[neighbor.key])
            for neighbor in structure.neighbors(key)
        }

        down_links: list[tuple[RangeUnit, Address]] = []
        if level > 0:
            parent_prefix = prefix[:-1]
            parent_structure = self._structures.get((level - 1, parent_prefix))
            if parent_structure is None:
                raise StructureError(
                    f"missing parent structure for level {level} prefix {prefix}"
                )
            parent_addresses = self._level_addresses[(level - 1, parent_prefix)]
            down_links = [
                (conflicting, parent_addresses[conflicting.key])
                for conflicting in parent_structure.conflicts(unit.range)
            ]

        changed = (
            (record.unit is not unit and record.unit != unit)
            or record.neighbors != neighbors
            or record.down_links != down_links
        )
        if changed:
            record.unit = unit
            record.neighbors = neighbors
            record.neighbor_ranges = None
            record.down_links = down_links
        return changed

    # ------------------------------------------------------------------ #
    # public inspection API
    # ------------------------------------------------------------------ #
    @property
    def items(self) -> list[Any]:
        """The current ground set."""
        return list(self._membership.items())

    @property
    def ground_set_size(self) -> int:
        """The paper's ``n``."""
        return len(self._membership)

    @property
    def height(self) -> int:
        """Number of halving levels above level 0."""
        return self._membership.height

    @property
    def host_count(self) -> int:
        """The paper's ``H``."""
        return self.network.host_count

    def level_structure(
        self, level: int, prefix: BitPrefix
    ) -> RangeDeterminedLinkStructure:
        """The link structure of one level set (raises if the set is empty)."""
        try:
            return self._structures[(level, prefix)]
        except KeyError as exc:
            raise StructureError(f"no structure at level {level} prefix {prefix}") from exc

    def level_prefixes(self, level: int) -> list[BitPrefix]:
        """The non-empty set indices at one level."""
        return [prefix for (lvl, prefix) in self._structures if lvl == level]

    def record_count(self) -> int:
        """Total number of records stored across all hosts."""
        return len(self._address_of)

    def owner_of(self, item: Any) -> HostId:
        """The home host of an item."""
        return self._owners[item]

    def address_of(self, level: int, prefix: BitPrefix, key: Hashable) -> Address:
        """The address of one unit's record (range reporting walks use it)."""
        try:
            return self._address_of[(level, prefix, key)]
        except KeyError as exc:
            raise StructureError(
                f"no record for unit {key!r} at level {level} prefix {prefix}"
            ) from exc

    def membership_word(self, item: Any) -> BitPrefix:
        """The random membership word assigned to ``item``."""
        return self._membership.word(item)

    def root_entries(self, host_id: HostId) -> list[tuple[RangeUnit, Address]]:
        """The root entries from which ``host_id`` starts its searches.

        A host's root is its local copy of the (expected O(1)) units of
        the top-level structure along the membership word of one of the
        items it owns, each paired with the address of the unit's record.
        """
        if self._root_cache_epoch != self._layout_epoch:
            self._root_cache = {}
            self._root_cache_epoch = self._layout_epoch
        cached = self._root_cache.get(host_id)
        if cached is not None:
            return list(cached)
        word = self._root_word_of_host.get(host_id)
        if word is None:
            # Host joined after construction; fall back to any item's word.
            word = self._membership.word(next(self._membership.items()))
            self._root_word_of_host[host_id] = word
        # Descend to the highest non-empty structure along the word.
        for level in range(self.height, -1, -1):
            prefix = word[:level]
            structure = self._structures.get((level, prefix))
            if structure is not None:
                entries = [
                    (unit, self._address_of[(level, prefix, unit.key)])
                    for unit in structure.units()
                ]
                self._root_cache[host_id] = entries
                # Hand out a copy so a caller mutating its list cannot
                # poison the memo for later descents from this host.
                return list(entries)
        raise QueryError("skip-web has no level structures")

    # ------------------------------------------------------------------ #
    # queries and updates
    # ------------------------------------------------------------------ #
    def query(self, query: Any, origin_host: HostId | None = None) -> QueryResult:
        """Answer ``query``, counting messages; see :mod:`repro.core.query`."""
        if origin_host is None:
            origin_host = self._host_ids[0]
        return execute_query(self, query, origin_host)

    def query_from_item(self, query: Any, origin_item: Any) -> QueryResult:
        """Answer ``query`` starting from the host that owns ``origin_item``."""
        return self.query(query, origin_host=self._owners[origin_item])

    def range_query(
        self,
        query_range: Any,
        origin_host: HostId | None = None,
        fan_out: int = DEFAULT_FAN_OUT,
    ) -> RangeQueryResult:
        """Output-sensitive range reporting; see :mod:`repro.core.range_query`."""
        if origin_host is None:
            origin_host = self._host_ids[0]
        return execute_range_query(self, query_range, origin_host, fan_out=fan_out)

    def insert(self, item: Any, origin_host: HostId | None = None):
        """Insert a new ground-set item (§4); returns an ``UpdateResult``."""
        from repro.core.update import execute_insert

        if origin_host is None:
            origin_host = self._host_ids[0]
        return execute_insert(self, item, origin_host)

    def delete(self, item: Any, origin_host: HostId | None = None):
        """Delete a ground-set item (§4); returns an ``UpdateResult``."""
        from repro.core.update import execute_delete

        if origin_host is None:
            origin_host = self._host_ids[0]
        return execute_delete(self, item, origin_host)

    # ------------------------------------------------------------------ #
    # DistributedStructure protocol (batched execution; see repro.engine)
    # ------------------------------------------------------------------ #
    def origin_hosts(self) -> list[HostId]:
        """Hosts from which operations may originate (every host has a root)."""
        return list(self._host_ids)

    def seed_roots(self, origin_host: HostId):
        """Step generator returning ``origin_host``'s root entries.

        A skip-web root is a *local* copy of the top-level units along one
        membership word, so no messages are charged.
        """
        return local_steps(self.root_entries(origin_host))

    def search_steps(self, query: Any, origin_host: HostId | None = None):
        """The query descent as a resumable step generator."""
        if origin_host is None:
            origin_host = self._host_ids[0]
        return query_steps(self, query, origin_host)

    def range_steps(
        self,
        query_range: Any,
        origin_host: HostId | None = None,
        fan_out: int = DEFAULT_FAN_OUT,
    ):
        """The range query (locate, then forked report) as a step generator."""
        if origin_host is None:
            origin_host = self._host_ids[0]
        return range_query_steps(self, query_range, origin_host, fan_out=fan_out)

    def insert_steps(self, item: Any, origin_host: HostId | None = None):
        """Insertion as a resumable step generator (§4)."""
        from repro.core.update import insert_steps

        if origin_host is None:
            origin_host = self._host_ids[0]
        return insert_steps(self, item, origin_host)

    def delete_steps(self, item: Any, origin_host: HostId | None = None):
        """Deletion as a resumable step generator (§4)."""
        from repro.core.update import delete_steps

        if origin_host is None:
            origin_host = self._host_ids[0]
        return delete_steps(self, item, origin_host)

    # ------------------------------------------------------------------ #
    # churn: migration and self-repair (see repro.engine.repair)
    # ------------------------------------------------------------------ #
    def _refresh_membership(self, exclude: Iterable[HostId] = ()) -> list[HostId]:
        """Re-sync host list and blocking policy with the network's membership.

        ``exclude`` removes hosts that are about to depart (graceful
        leavers mid-hand-off are still registered and alive).  Returns the
        refreshed live host list.
        """
        excluded = set(exclude)
        self._host_ids = [
            host_id
            for host_id in self.network.alive_host_ids()
            if host_id not in excluded
        ]
        if not self._host_ids:
            raise ChurnError("skip-web cannot lose its last live host")
        self._blocking = self._make_blocking_policy()
        self._layout_epoch += 1
        return self._host_ids

    def _reassign_owned_items(self, host_ids: set[HostId], pool: list[HostId]) -> int:
        """Re-home the items owned by departing ``host_ids`` onto ``pool``."""
        moved = 0
        for item, owner in self._owners.items():
            if owner in host_ids:
                self._owners[item] = pool[moved % len(pool)]
                moved += 1
        for host_id in host_ids:
            self._root_word_of_host.pop(host_id, None)
        return moved

    def _rewire_referencers(
        self, stale_addresses: set[Address], cursor: StepCursor
    ) -> StepGenerator:
        """Refresh every record whose stored pointers hit ``stale_addresses``.

        Charges one message per rewired record on a host other than the
        cursor's current position (the same per-changed-record billing the
        update protocol uses).  Returns the number of records rewired.
        """
        rewired = 0
        for (level, prefix, key), address in list(self._address_of.items()):
            record: SkipWebRecord = self.network.load(address, check_alive=False)
            stale = any(
                down_address in stale_addresses for _unit, down_address in record.down_links
            ) or any(
                neighbor_address in stale_addresses
                for _range, neighbor_address in record.neighbors.values()
            )
            if not stale:
                continue
            if self._rewire_record(level, prefix, key):
                rewired += 1
                yield from cursor.hop_to(address.host)
        return rewired

    def migrate_host(
        self,
        host_id: HostId,
        targets: Sequence[HostId] | None = None,
        fraction: float = 1.0,
    ) -> StepGenerator:
        """Hand records off ``host_id`` as a resumable step generator.

        With ``fraction == 1.0`` and no targets this is the graceful-leave
        hand-off: every record moves to the remaining live hosts
        (round-robin), ownership and root pointers are re-homed, and every
        record elsewhere that pointed at a moved record is rewired.  With
        a partial ``fraction`` toward explicit ``targets`` it rebalances
        load onto a newly joined host.  One message is charged per record
        hand-off and per remote pointer rewrite.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.network.host(host_id)  # validate early
        evacuating = fraction >= 1.0
        # Refresh runs for its side effects (host list + blocking policy);
        # the pool of hand-off destinations is derived from its result
        # only when no explicit targets are given.
        live = self._refresh_membership(exclude=(host_id,) if evacuating else ())
        if targets is not None:
            pool = [target for target in targets if target != host_id]
        else:
            pool = [candidate for candidate in live if candidate != host_id]
        if not pool:
            raise ChurnError(f"no live hosts to migrate host {host_id}'s records to")

        resident = [
            entry for entry, address in self._address_of.items() if address.host == host_id
        ]
        moving = resident[: math.ceil(fraction * len(resident))]

        cursor = StepCursor(host_id)
        yield from cursor.hop_to(host_id)  # announce the coordinator (free)
        stale_addresses: set[Address] = set()
        for index, (level, prefix, key) in enumerate(moving):
            destination = pool[index % len(pool)]
            old_address = self._address_of[(level, prefix, key)]
            record = self.network.load(old_address, check_alive=False)
            yield from cursor.hand_off(destination, host_id)
            new_address = self.network.store(destination, record)
            self._address_of[(level, prefix, key)] = new_address
            self._level_addresses.setdefault((level, prefix), {})[key] = new_address
            self._layout_epoch += 1
            self.network.free(old_address)
            stale_addresses.add(old_address)

        if evacuating:
            self._reassign_owned_items({host_id}, pool)
        rewired = yield from self._rewire_referencers(stale_addresses, cursor)
        return MigrationSummary(
            kind="migrate",
            hosts=(host_id,),
            records_moved=len(moving),
            pointers_rewired=rewired,
            hosts_touched=cursor.distinct_hosts(),
        )

    def repair(self, host_ids: Sequence[HostId]) -> StepGenerator:
        """Re-home the records orphaned by crashed ``host_ids`` (self-repair).

        Each orphaned record is reconstructed from the level structures on
        a live host chosen round-robin (one message per placement; the
        record's own pointers are recomputed on receipt, which is local
        work, and a record the coordinator reconstructs for itself is
        entirely local and therefore free — see
        :meth:`repro.engine.steps.StepCursor.hand_off`), then every
        surviving record that pointed into the dead hosts is rewired (one
        message per remote rewrite).
        """
        dead = set(host_ids)
        if not dead:
            raise ChurnError("repair needs at least one crashed host")
        pool = self._refresh_membership(exclude=dead)
        coordinator = pool[0]

        orphaned = [
            (entry, address)
            for entry, address in self._address_of.items()
            if address.host in dead
        ]
        cursor = StepCursor(coordinator)
        yield from cursor.hop_to(coordinator)  # announce the coordinator (free)
        stale_addresses: set[Address] = set()
        for index, ((level, prefix, key), old_address) in enumerate(orphaned):
            destination = pool[index % len(pool)]
            yield from cursor.hand_off(destination, coordinator)
            unit = self._structures[(level, prefix)].unit(key)
            record = SkipWebRecord(level=level, prefix=prefix, unit=unit)
            new_address = self.network.store(destination, record)
            self._address_of[(level, prefix, key)] = new_address
            self._level_addresses.setdefault((level, prefix), {})[key] = new_address
            self._layout_epoch += 1
            # The dead host's slot is gone with it; freeing keeps the
            # simulator's memory profile honest should the host recover.
            self.network.free(old_address)
            stale_addresses.add(old_address)
        for (level, prefix, key), _old_address in orphaned:
            # Recompute the reconstructed record's own pointers: local
            # work at its new home, already covered by the placement
            # message.
            self._rewire_record(level, prefix, key)

        self._reassign_owned_items(dead, pool)
        rewired = yield from self._rewire_referencers(stale_addresses, cursor)
        return MigrationSummary(
            kind="repair",
            hosts=tuple(sorted(dead)),
            records_moved=len(orphaned),
            pointers_rewired=rewired,
            hosts_touched=cursor.distinct_hosts(),
        )

    # ------------------------------------------------------------------ #
    # cost accounting
    # ------------------------------------------------------------------ #
    def memory_profile(self) -> dict[HostId, int]:
        """Records stored per host — the measured per-host memory."""
        return self.network.memory_profile()

    def max_memory_per_host(self) -> int:
        """The measured ``M``: the largest number of records on any host."""
        return self.network.max_memory_used()

    def recompute_reference_counts(self) -> None:
        """Refresh the per-host reference counters used by the congestion report.

        Cross-host pointer counts are aggregated into plain dictionaries
        first and applied to the hosts once, instead of two host lookups
        per stored pointer.
        """
        for host in self.network.hosts():
            host.reset_reference_counts()
        for item, owner in self._owners.items():
            if item in self._membership:
                self.network.host(owner).note_owned_items(1)
        out_refs: dict[HostId, int] = {}
        in_refs: dict[HostId, int] = {}
        load = self.network.load
        for address in self._address_of.values():
            record: SkipWebRecord = load(address)
            home = address.host
            for _range, neighbor_address in record.neighbors.values():
                other = neighbor_address.host
                if other != home:
                    out_refs[home] = out_refs.get(home, 0) + 1
                    in_refs[other] = in_refs.get(other, 0) + 1
            for _unit, down_address in record.down_links:
                other = down_address.host
                if other != home:
                    out_refs[home] = out_refs.get(home, 0) + 1
                    in_refs[other] = in_refs.get(other, 0) + 1
        for host_id, count in out_refs.items():
            self.network.host(host_id).note_out_reference(count)
        for host_id, count in in_refs.items():
            self.network.host(host_id).note_in_reference(count)

    def congestion(self) -> CongestionReport:
        """The congestion measure ``C(n)`` of §1.1 for the current structure."""
        self.recompute_reference_counts()
        return congestion_report(self.network, self.ground_set_size)

    def validate(self) -> None:
        """Check structural invariants of every level (used by tests).

        Verifies that every level structure passes its own validation,
        that every unit has a record, and that every record's hyperlinks
        and neighbour pointers resolve to live records of the expected
        level.
        """
        for (level, prefix), structure in self._structures.items():
            structure.validate()
            for unit in structure.units():
                if (level, prefix, unit.key) not in self._address_of:
                    raise StructureError(
                        f"unit {unit.key!r} of level {level} prefix {prefix} has no record"
                    )
        for (level, prefix, key), address in self._address_of.items():
            record: SkipWebRecord = self.network.load(address)
            if record.unit.key != key or record.level != level or record.prefix != prefix:
                raise StructureError(f"record at {address} is mislabelled")
            for down_unit, down_address in record.down_links:
                down_record: SkipWebRecord = self.network.load(down_address)
                if down_record.level != level - 1:
                    raise StructureError(
                        f"hyperlink from level {level} record {key!r} points to "
                        f"level {down_record.level}"
                    )
                if down_record.unit.key != down_unit.key:
                    raise StructureError(
                        f"hyperlink copy of {key!r} is stale: labelled "
                        f"{down_unit.key!r} but points to {down_record.unit.key!r}"
                    )
            for neighbor_key, (_range, neighbor_address) in record.neighbors.items():
                neighbor_record: SkipWebRecord = self.network.load(neighbor_address)
                if neighbor_record.unit.key != neighbor_key:
                    raise StructureError(
                        f"neighbour pointer of {key!r} labelled {neighbor_key!r} "
                        f"points to {neighbor_record.unit.key!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SkipWeb(structure={self.structure_cls.name}, n={self.ground_set_size}, "
            f"hosts={self.host_count}, levels={self.height + 1}, "
            f"records={self.record_count()})"
        )


class SkipWebStructureAdapter:
    """Mixin giving a domain wrapper the ``DistributedStructure`` protocol.

    The four instantiations (``SkipWeb1D``, ``SkipQuadtreeWeb``,
    ``SkipTrieWeb``, ``SkipTrapezoidWeb``) each hold a generic
    :class:`SkipWeb` in ``self.web`` and merely coerce domain values
    (floats, points, strings, planar points) before delegating.  This
    mixin forwards the step-generator protocol the same way, so every
    wrapper runs under :class:`repro.engine.executor.BatchExecutor`
    without further code.
    """

    web: SkipWeb

    @classmethod
    def build_from_sorted(cls, items: Sequence[Any], **kwargs: Any):
        """Bulk-load constructor: ``items`` pre-sorted and deduplicated.

        Builds the wrapper normally (the level structures detect sorted
        input and skip their defensive sorts), then charges one
        CONSTRUCTION ledger message per remotely placed record — see
        :meth:`SkipWeb.build_from_sorted`.  ``kwargs`` pass through to
        the wrapper's constructor.
        """
        structure = cls(items, **kwargs)
        structure.web.construction_messages = structure.web._charge_construction()
        return structure

    @property
    def construction_messages(self) -> int:
        """CONSTRUCTION messages charged by a bulk-load build (0 otherwise)."""
        return self.web.construction_messages

    def _coerce_query(self, query: Any) -> Any:
        """Normalise a domain query before handing it to the skip-web."""
        return query

    def _coerce_item(self, item: Any) -> Any:
        """Normalise a domain item before handing it to the skip-web."""
        return item

    def _coerce_range(self, query_range: Any) -> Any:
        """Normalise a domain range before handing it to the skip-web."""
        return query_range

    def origin_hosts(self) -> list[HostId]:
        return self.web.origin_hosts()

    def seed_roots(self, origin_host: HostId):
        return self.web.seed_roots(origin_host)

    def search_steps(self, query: Any, origin_host: HostId | None = None):
        return self.web.search_steps(self._coerce_query(query), origin_host)

    def range_steps(
        self,
        query_range: Any,
        origin_host: HostId | None = None,
        fan_out: int = DEFAULT_FAN_OUT,
    ):
        return self.web.range_steps(
            self._coerce_range(query_range), origin_host, fan_out=fan_out
        )

    def range_report(
        self,
        query_range: Any,
        origin_host: HostId | None = None,
        fan_out: int = DEFAULT_FAN_OUT,
    ) -> RangeQueryResult:
        """Immediate-mode range reporting with the domain's range coercion."""
        return self.web.range_query(
            self._coerce_range(query_range), origin_host=origin_host, fan_out=fan_out
        )

    def insert_steps(self, item: Any, origin_host: HostId | None = None):
        return self.web.insert_steps(self._coerce_item(item), origin_host)

    def delete_steps(self, item: Any, origin_host: HostId | None = None):
        return self.web.delete_steps(self._coerce_item(item), origin_host)

    def migrate_host(
        self,
        host_id: HostId,
        targets: Sequence[HostId] | None = None,
        fraction: float = 1.0,
    ):
        return self.web.migrate_host(host_id, targets=targets, fraction=fraction)

    def repair(self, host_ids: Sequence[HostId]):
        return self.web.repair(host_ids)
