"""Range abstractions.

Section 2.1 of the paper associates each node and link of a
range-determined link structure with a *range* — a set of values from the
universe ``U`` — and defines incidence (and, across structures, conflict)
as non-empty intersection of ranges.

This module defines the small protocol every range must follow
(:class:`Range`) and the generic one-dimensional ranges used by sorted
linked lists and skip lists (:class:`Singleton`, :class:`Interval`).
Multi-dimensional ranges (hypercubes, trie string sets, trapezoids) are
defined next to their structures in :mod:`repro.spatial`,
:mod:`repro.strings` and :mod:`repro.planar`, and follow the same
protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class Range(Protocol):
    """The protocol all ranges satisfy.

    ``contains`` answers point membership (used to route queries) and
    ``intersects`` answers range overlap (used to build conflict lists,
    i.e. the hyperlinks between consecutive skip-web levels).
    """

    def contains(self, point: Any) -> bool:
        """Return ``True`` when ``point`` belongs to this range."""
        ...

    def intersects(self, other: "Range") -> bool:
        """Return ``True`` when this range and ``other`` share a value."""
        ...


@dataclass(frozen=True, slots=True)
class Singleton:
    """A one-element range ``{value}`` — the range of a linked-list node."""

    value: Any

    def contains(self, point: Any) -> bool:
        return point == self.value

    def intersects(self, other: Range) -> bool:
        return other.contains(self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{{{self.value!r}}}"


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed one-dimensional interval ``[low, high]``.

    ``low`` may be ``-inf`` and ``high`` may be ``+inf``; the sentinel
    links of a sorted linked list use these to make every query point
    fall inside exactly one maximal range.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"empty interval: low={self.low} > high={self.high}")

    def contains(self, point: Any) -> bool:
        return self.low <= point <= self.high

    def intersects(self, other: Range) -> bool:
        if isinstance(other, Interval):
            return self.low <= other.high and other.low <= self.high
        if isinstance(other, Singleton):
            return self.contains(other.value)
        # Fall back to the other range's own intersection test; every
        # range type knows how to test against points and intervals of
        # its own universe.
        return other.intersects(self)

    @property
    def is_degenerate(self) -> bool:
        """``True`` when the interval is a single point."""
        return self.low == self.high

    @property
    def length(self) -> float:
        """Width of the interval (``inf`` for unbounded intervals)."""
        return self.high - self.low

    @staticmethod
    def unbounded() -> "Interval":
        """The whole real line ``(-inf, +inf)``."""
        return Interval(-math.inf, math.inf)

    @staticmethod
    def below(value: float) -> "Interval":
        """The interval ``(-inf, value]`` (left sentinel link)."""
        return Interval(-math.inf, value)

    @staticmethod
    def above(value: float) -> "Interval":
        """The interval ``[value, +inf)`` (right sentinel link)."""
        return Interval(value, math.inf)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.low!r}, {self.high!r}]"


@dataclass(frozen=True, slots=True)
class EverythingRange:
    """A range containing every point — useful for degenerate structures.

    A structure built from a single item (e.g. a quadtree level with one
    point, or an empty trapezoidal map whose only cell is the whole
    plane) uses this as the range of its unique unit so that queries
    always have somewhere to land.
    """

    def contains(self, point: Any) -> bool:
        return True

    def intersects(self, other: Range) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<everything>"


def coerce_interval(query_range: Any) -> Interval:
    """Normalise a 1-d range spec: an :class:`Interval` or a (low, high) pair."""
    if isinstance(query_range, Interval):
        return query_range
    low, high = query_range
    return Interval(float(low), float(high))


def interval_anchor(interval: Interval, fallback: float) -> float:
    """The finite endpoint a 1-d range query's locate phase descends toward."""
    if math.isfinite(interval.low):
        return interval.low
    if math.isfinite(interval.high):
        return interval.high
    return fallback


def ranges_conflict(first: Range, second: Range) -> bool:
    """Symmetric conflict test between two ranges.

    The paper counts ``Q = R`` as a conflict; intersection handles that
    case naturally.  The helper tries both orientations so that
    heterogeneous range types only need to understand each other in one
    direction.
    """
    try:
        if first.intersects(second):
            return True
    except (TypeError, NotImplementedError):
        pass
    try:
        return second.intersects(first)
    except (TypeError, NotImplementedError):
        return False
