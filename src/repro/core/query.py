"""Query routing over a distributed skip-web (§2.5 of the paper).

A query starts from the "root" of the originating host: copies of the
(expected O(1)) units forming the top-level structure along the
membership-word prefix chain of one of the host's items, together with
the addresses of their records.  The engine then repeats, once per level:

1. choose, locally, the best hyperlink out of the current record's
   conflict list (each hyperlink carries a copy of the target unit, so no
   message is needed to decide),
2. follow the chosen hyperlink — one message when it crosses hosts,
3. walk within the level with the structure's ``advance`` until the
   level's target for the query is reached (each step is one more
   message when it crosses hosts),
4. descend through the target's hyperlinks to the next level.

At level 0 the structure's ``answer`` decodes the domain-specific result
(nearest key, matching prefix, containing trapezoid, smallest quadtree
cell).  The number of messages charged to the traversal is the measured
``Q(n)``.

The routing logic is written once, as the resumable step generator
:func:`query_steps` (see :mod:`repro.engine.steps`).  :func:`execute_query`
drives it to completion immediately — the classic one-operation-at-a-time
path — while :class:`repro.engine.executor.BatchExecutor` interleaves many
such generators round by round over the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.engine.steps import StepCursor, StepGenerator, run_immediate
from repro.errors import QueryError
from repro.net.message import MessageKind
from repro.net.naming import Address, HostId


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one skip-web query."""

    query: Any
    answer: Any
    messages: int
    origin_host: HostId
    hosts_visited: tuple[HostId, ...]
    levels_descended: int
    target_key: Hashable
    per_level_messages: tuple[int, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryResult(query={self.query!r}, answer={self.answer!r}, "
            f"messages={self.messages})"
        )


# Safety bound on intra-level navigation; a correct structure never needs
# anywhere near this many steps, so hitting the bound indicates a bug and
# is reported as a QueryError rather than an infinite loop.
_MAX_LEVEL_STEPS = 10_000


def _choose_entry(structure_cls, query: Any, entries: list[tuple[Any, Address]]) -> Address:
    """Pick the hyperlink to follow: ``entries`` are (unit copy, address) pairs.

    The unit copies are stored alongside the pointers (the same O(1)
    per-pointer bookkeeping a skip graph keeps for its neighbours' keys),
    so the choice is made locally without spending messages.
    """
    if not entries:
        raise QueryError("query descended through a record with no hyperlinks")
    units = [unit for unit, _address in entries]
    chosen = structure_cls.select(query, units)
    for unit, address in entries:
        if unit is chosen or unit.key == chosen.key:
            return address
    raise QueryError("select returned a unit that is not among the candidates")


def _settle_within_level(
    structure_cls,
    cursor: StepCursor,
    query: Any,
    record,
) -> StepGenerator:
    """Walk within one level structure until the target unit for ``query``.

    ``record`` is the record reached by following a hyperlink; the walk
    follows the structure's own links (each record stores its neighbours'
    ranges and addresses), charging a message per host crossing.
    """
    current = record
    advance = structure_cls.advance
    for _ in range(_MAX_LEVEL_STEPS):
        neighbor_ranges = current.neighbor_ranges
        if neighbor_ranges is None:
            neighbor_ranges = current.neighbor_ranges = {
                key: rng for key, (rng, _addr) in current.neighbors.items()
            }
        next_key = advance(query, current.unit, neighbor_ranges)
        if next_key is None:
            return current
        try:
            _range, address = current.neighbors[next_key]
        except KeyError as exc:
            raise QueryError(
                f"advance returned unknown neighbour key {next_key!r} "
                f"from unit {current.unit.key!r}"
            ) from exc
        current = yield from cursor.visit(address)
    raise QueryError("intra-level navigation did not terminate (structure bug)")


def descend_steps(skipweb, query: Any, cursor: StepCursor) -> StepGenerator:
    """The shared descent: from the cursor's host down to its level-0 target.

    Starts at the root entries of the cursor's current host, descends one
    level at a time (hyperlink choice, then intra-level settling) and
    returns ``(record, levels_descended, per_level_messages)`` where
    ``record`` is the level-0 record the search stopped at.  Both the
    point queries (:func:`query_steps`) and the locate phase of the range
    queries (:mod:`repro.core.range_query`) are built on it, so the two
    charge the descent identically.
    """
    root_entries = skipweb.root_entries(cursor.current_host)
    if not root_entries:
        raise QueryError("skip-web has no records (empty structure)")

    per_level_messages: list[int] = []
    hops_before = cursor.hops
    entry_address = _choose_entry(skipweb.structure_cls, query, root_entries)
    record = yield from cursor.visit(entry_address)
    current = yield from _settle_within_level(skipweb.structure_cls, cursor, query, record)
    per_level_messages.append(cursor.hops - hops_before)
    levels_descended = 0

    while current.level > 0:
        hops_before = cursor.hops
        entry_address = _choose_entry(skipweb.structure_cls, query, current.down_links)
        record = yield from cursor.visit(entry_address)
        current = yield from _settle_within_level(
            skipweb.structure_cls, cursor, query, record
        )
        per_level_messages.append(cursor.hops - hops_before)
        levels_descended += 1

    return current, levels_descended, per_level_messages


def query_steps(skipweb, query: Any, origin_host: HostId) -> StepGenerator:
    """The query descent as a resumable step generator.

    Yields one :class:`~repro.engine.steps.Visit` effect per pointer
    dereference and returns the final :class:`QueryResult`; drive it with
    :func:`execute_query` for the immediate path or hand it to a
    :class:`~repro.engine.executor.BatchExecutor` for round-based
    execution.
    """
    cursor = StepCursor(origin_host)
    current, levels_descended, per_level_messages = yield from descend_steps(
        skipweb, query, cursor
    )

    level0_structure = skipweb.level_structure(0, ())
    answer = level0_structure.answer(query, current.unit)
    return QueryResult(
        query=query,
        answer=answer,
        messages=cursor.hops,
        origin_host=origin_host,
        hosts_visited=cursor.path_tuple(),
        levels_descended=levels_descended,
        target_key=current.unit.key,
        per_level_messages=tuple(per_level_messages),
    )


def execute_query(
    skipweb,
    query: Any,
    origin_host: HostId,
    kind: MessageKind = MessageKind.QUERY,
) -> QueryResult:
    """Route ``query`` through ``skipweb`` starting at ``origin_host``."""
    return run_immediate(
        skipweb.network, query_steps(skipweb, query, origin_host), origin_host, kind=kind
    )
