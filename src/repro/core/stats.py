"""Cost measurement: the quantities reported in Table 1.

The paper compares structures along five measures (§1.1): number of
hosts ``H``, memory per host ``M``, congestion ``C(n)``, query messages
``Q(n)`` and update messages ``U(n)``.  :func:`measure_costs` runs a
query workload (and optionally an update workload) against any
distributed structure and collects all five, producing a
:class:`StructureCosts` row that the Table 1 benchmark prints directly.

The function is deliberately structure-agnostic: it only needs callables
returning per-operation message counts, so skip-webs and every baseline
of :mod:`repro.baselines` can be measured identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Any, Callable, Iterable, Sequence

from repro.net.congestion import CongestionReport
from repro.net.network import Network


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty sequence)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return float(ordered[index])


@dataclass(frozen=True)
class StructureCosts:
    """One row of the Table 1 reproduction."""

    name: str
    ground_set_size: int
    host_count: int
    max_memory: int
    mean_memory: float
    max_congestion: float
    mean_congestion: float
    query_messages_mean: float
    query_messages_p95: float
    query_messages_max: float
    update_messages_mean: float
    update_messages_p95: float
    update_messages_max: float
    query_count: int
    update_count: int

    def as_dict(self) -> dict[str, Any]:
        """Flat dictionary used by the reporting helpers."""
        return {
            "method": self.name,
            "n": self.ground_set_size,
            "H": self.host_count,
            "M_max": self.max_memory,
            "M_mean": round(self.mean_memory, 2),
            "C_max": round(self.max_congestion, 2),
            "C_mean": round(self.mean_congestion, 2),
            "Q_mean": round(self.query_messages_mean, 2),
            "Q_p95": round(self.query_messages_p95, 2),
            "Q_max": round(self.query_messages_max, 2),
            "U_mean": round(self.update_messages_mean, 2),
            "U_p95": round(self.update_messages_p95, 2),
            "U_max": round(self.update_messages_max, 2),
        }


def measure_costs(
    name: str,
    network: Network,
    ground_set_size: int,
    query_fn: Callable[[Any], int],
    queries: Iterable[Any],
    update_fn: Callable[[Any], int] | None = None,
    updates: Iterable[Any] | None = None,
    congestion: CongestionReport | Callable[[], CongestionReport] | None = None,
) -> StructureCosts:
    """Run workloads against a distributed structure and collect Table 1 costs.

    Parameters
    ----------
    name:
        Row label (e.g. ``"skip graph"``, ``"skip-web"``).
    network:
        The simulated network the structure lives on; provides ``H`` and
        the per-host memory profile.
    ground_set_size:
        ``n``.
    query_fn / queries:
        ``query_fn(q)`` must perform one query and return the number of
        messages it cost.
    update_fn / updates:
        Optional; ``update_fn(u)`` must perform one update and return its
        message cost.
    congestion:
        A congestion report, or a callable producing one; omitted columns
        are reported as zero.
    """
    query_costs = [float(query_fn(query)) for query in queries]
    update_costs: list[float] = []
    if update_fn is not None and updates is not None:
        update_costs = [float(update_fn(update)) for update in updates]

    memory_profile = network.memory_profile()
    memory_values = list(memory_profile.values()) or [0]

    if callable(congestion):
        congestion = congestion()
    max_congestion = congestion.max_congestion if congestion is not None else 0.0
    mean_congestion = congestion.mean_congestion if congestion is not None else 0.0

    return StructureCosts(
        name=name,
        ground_set_size=ground_set_size,
        host_count=network.host_count,
        max_memory=max(memory_values),
        mean_memory=mean(memory_values),
        max_congestion=max_congestion,
        mean_congestion=mean_congestion,
        query_messages_mean=mean(query_costs) if query_costs else 0.0,
        query_messages_p95=_percentile(query_costs, 0.95),
        query_messages_max=max(query_costs) if query_costs else 0.0,
        update_messages_mean=mean(update_costs) if update_costs else 0.0,
        update_messages_p95=_percentile(update_costs, 0.95),
        update_messages_max=max(update_costs) if update_costs else 0.0,
        query_count=len(query_costs),
        update_count=len(update_costs),
    )
