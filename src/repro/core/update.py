"""Insertions and deletions in a skip-web (§4 of the paper).

The paper's protocol for inserting an item ``x``:

1. locate ``x`` in the level-0 structure (a normal query descent),
2. update the level-0 structure to ``D(S ∪ {x})`` — O(1) new nodes and
   links for lists, quadtrees, octrees and tries,
3. draw ``⌈log n⌉`` random bits for ``x`` and add it to the higher-level
   structures bottom-up, starting each level's local update from the
   nodes and links that conflict with the O(1) units replaced at the
   level below.

Deletion is symmetric.  The expected number of affected units per level
is O(1) by the set-halving lemma, so the expected message cost is
O(log n).

Implementation note.  Each level structure is *recomputed* from its new
element set and then diffed against the old structure; the records
created, removed or rewired are exactly the units in the diff plus the
units adjacent to them.  Messages are charged per distinct host whose
records change at each level, which is what a real distributed
implementation would pay; how the new structure is computed locally does
not affect the measured ``U(n)``.

Like queries, updates are written as resumable step generators
(:func:`insert_steps` / :func:`delete_steps`) so that
:class:`repro.engine.executor.BatchExecutor` can interleave them with
other in-flight operations round by round; :func:`execute_insert` /
:func:`execute_delete` drive them immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.core.levels import BitPrefix
from repro.core.link_structure import RangeDeterminedLinkStructure
from repro.core.query import query_steps
from repro.core.ranges import Range
from repro.engine.steps import StepCursor, StepGenerator, run_immediate
from repro.errors import UpdateError
from repro.net.message import MessageKind
from repro.net.naming import HostId


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one insert or delete."""

    item: Any
    kind: str
    messages: int
    search_messages: int
    propagate_messages: int
    levels_touched: int
    records_added: int
    records_removed: int
    hosts_touched: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UpdateResult({self.kind} {self.item!r}, messages={self.messages}, "
            f"+{self.records_added}/-{self.records_removed} records)"
        )


def _level_diff(
    old_structure: RangeDeterminedLinkStructure | None,
    new_structure: RangeDeterminedLinkStructure | None,
) -> tuple[set[Hashable], set[Hashable], list[Range]]:
    """Keys added, keys removed and the ranges of every changed unit."""
    # Key *views* of the unit maps, not fresh sets: the diff only needs
    # the two set differences, and both structures' unit maps are
    # snapshots that outlive this call.
    old_keys = old_structure.unit_map().keys() if old_structure is not None else set()
    new_keys = new_structure.unit_map().keys() if new_structure is not None else set()
    added = new_keys - old_keys
    removed = old_keys - new_keys
    changed_ranges: list[Range] = []
    if old_structure is not None and removed:
        old_units = old_structure.unit_map()
        changed_ranges.extend(old_units[key].range for key in removed)
    if new_structure is not None and added:
        new_units = new_structure.unit_map()
        changed_ranges.extend(new_units[key].range for key in added)
    return added, removed, changed_ranges


def _apply_level_change(
    skipweb,
    level: int,
    prefix: BitPrefix,
    new_structure: RangeDeterminedLinkStructure | None,
) -> tuple[set[HostId], int, int]:
    """Replace one level structure, updating records and pointers.

    Returns the set of hosts whose records changed, the number of records
    added and the number removed.  The caller charges one message per
    distinct affected host.
    """
    old_structure = skipweb._structures.get((level, prefix))
    added, removed, changed_ranges = _level_diff(old_structure, new_structure)

    affected_hosts: set[HostId] = set()

    # 1. drop stale records
    for key in removed:
        address = skipweb._remove_record(level, prefix, key)
        affected_hosts.add(address.host)

    # 2. install / retire the structure itself
    if new_structure is None:
        del skipweb._structures[(level, prefix)]
        return affected_hosts, 0, len(removed)
    skipweb._structures[(level, prefix)] = new_structure

    # 3. create records for new units
    for key in added:
        unit = new_structure.unit(key)
        address = skipweb._create_record(level, prefix, unit)
        affected_hosts.add(address.host)

    # 4. rewire this level: new units, their neighbours, and every unit
    #    whose range overlaps a changed range (their neighbour sets or
    #    hyperlinks may reference removed units).  Records are recomputed
    #    generously (that is local CPU work a host would do on receipt of
    #    one message) but a message is charged only when the stored
    #    content actually changed.
    keys_to_rewire: set[Hashable] = set(added)
    for key in added:
        for neighbor in new_structure.neighbors(key):
            keys_to_rewire.add(neighbor.key)
    for changed_range in changed_ranges:
        for unit in new_structure.overlapping(changed_range):
            keys_to_rewire.add(unit.key)
    for key in keys_to_rewire:
        changed = skipweb._rewire_record(level, prefix, key)
        if changed or key in added:
            affected_hosts.add(skipweb._address_of[(level, prefix, key)].host)

    # 5. fix hyperlinks of the two child structures (level above in the
    #    descent order): their records point down into this structure.
    #    A full rewire, not just the down-links: a child record's stored
    #    unit can be stale (its level's own earlier update only rewires
    #    keys whose *ranges* changed, not surviving units whose payload
    #    representative changed), and the charge for refreshing it lands
    #    here, exactly as the recorded baseline counts it.
    if level < skipweb.height:
        for next_bit in (0, 1):
            child_prefix = prefix + (next_bit,)
            child_structure = skipweb._structures.get((level + 1, child_prefix))
            if child_structure is None:
                continue
            child_keys: set[Hashable] = set()
            for changed_range in changed_ranges:
                for unit in child_structure.overlapping(changed_range):
                    child_keys.add(unit.key)
            for key in child_keys:
                changed = skipweb._rewire_record(level + 1, child_prefix, key)
                if changed:
                    affected_hosts.add(
                        skipweb._address_of[(level + 1, child_prefix, key)].host
                    )

    return affected_hosts, len(added), len(removed)


def insert_steps(skipweb, item: Any, origin_host: HostId) -> StepGenerator:
    """Insertion of ``item`` as a resumable step generator (messages per §4).

    The search descent interleaves with other in-flight operations under
    round-based execution.  The structural change itself is applied
    *atomically* between two effects (local work is free and
    instantaneous in the paper's cost model) and only then charged one
    message per affected remote host, level by level — so an operation
    interrupted mid-charge (e.g. by a host failure in a batch) leaves
    the skip-web fully updated and consistent; only its billing is
    incomplete.
    """
    if item in skipweb._membership:
        raise UpdateError(f"item {item!r} is already stored in the skip-web")

    # Step 1: locate the insertion position (a query descent).
    search = yield from query_steps(
        skipweb, skipweb.structure_cls.item_to_query(item), origin_host
    )
    search_messages = search.messages
    start_host = search.hosts_visited[-1] if search.hosts_visited else origin_host

    # Step 2: draw the membership word and register ownership.
    word = skipweb._membership.assign(item)
    skipweb._owners[item] = origin_host
    skipweb._root_word_of_host.setdefault(origin_host, word)

    # Step 3: update every level bottom-up, atomically.
    per_level_affected: list[set[HostId]] = []
    total_added = 0
    total_removed = 0
    hosts_touched: set[HostId] = set()
    for level in range(skipweb.height + 1):
        prefix = word[:level]
        old_structure = skipweb._structures.get((level, prefix))
        if old_structure is None:
            new_structure = skipweb.structure_cls.build(
                [item], **skipweb.config.structure_params
            )
        else:
            new_structure = old_structure.with_item(item)
        affected, added, removed = _apply_level_change(
            skipweb, level, prefix, new_structure
        )
        per_level_affected.append(affected)
        hosts_touched |= affected
        total_added += added
        total_removed += removed

    # Step 4: charge the propagation messages (same per-level order the
    # interleaved protocol would pay, so immediate-mode counts are
    # unchanged).
    cursor = StepCursor(start_host)
    for affected in per_level_affected:
        for host in sorted(affected):
            yield from cursor.hop_to(host)

    return UpdateResult(
        item=item,
        kind="insert",
        messages=search_messages + cursor.hops,
        search_messages=search_messages,
        propagate_messages=cursor.hops,
        levels_touched=skipweb.height + 1,
        records_added=total_added,
        records_removed=total_removed,
        hosts_touched=len(hosts_touched),
    )


def delete_steps(skipweb, item: Any, origin_host: HostId) -> StepGenerator:
    """Deletion of ``item`` as a resumable step generator (messages per §4)."""
    if item not in skipweb._membership:
        raise UpdateError(f"item {item!r} is not stored in the skip-web")
    if skipweb.ground_set_size == 1:
        raise UpdateError("cannot delete the last item of a skip-web")

    # Step 1: locate the item (a query descent).
    search = yield from query_steps(
        skipweb, skipweb.structure_cls.item_to_query(item), origin_host
    )
    search_messages = search.messages
    start_host = search.hosts_visited[-1] if search.hosts_visited else origin_host

    word = skipweb._membership.forget(item)
    skipweb._owners.pop(item, None)

    # Reassign the root of any host whose root pointed at the deleted
    # item's top-level structure chain.
    surviving_item = next(skipweb._membership.items())
    surviving_word = skipweb._membership.word(surviving_item)
    for host_id, root_word in list(skipweb._root_word_of_host.items()):
        if root_word == word:
            replacement = None
            for candidate, owner in skipweb._owners.items():
                if owner == host_id:
                    replacement = skipweb._membership.word(candidate)
                    break
            skipweb._root_word_of_host[host_id] = replacement or surviving_word

    # Apply every level change atomically, then charge (see insert_steps).
    per_level_affected: list[set[HostId]] = []
    total_added = 0
    total_removed = 0
    hosts_touched: set[HostId] = set()
    for level in range(skipweb.height + 1):
        prefix = word[:level]
        old_structure = skipweb._structures.get((level, prefix))
        if old_structure is None:
            continue
        remaining = [existing for existing in old_structure.items if existing != item]
        if remaining:
            new_structure = skipweb.structure_cls.build(
                remaining, **skipweb.config.structure_params
            )
        else:
            new_structure = None
        affected, added, removed = _apply_level_change(
            skipweb, level, prefix, new_structure
        )
        per_level_affected.append(affected)
        hosts_touched |= affected
        total_added += added
        total_removed += removed

    cursor = StepCursor(start_host)
    for affected in per_level_affected:
        for host in sorted(affected):
            yield from cursor.hop_to(host)

    return UpdateResult(
        item=item,
        kind="delete",
        messages=search_messages + cursor.hops,
        search_messages=search_messages,
        propagate_messages=cursor.hops,
        levels_touched=skipweb.height + 1,
        records_added=total_added,
        records_removed=total_removed,
        hosts_touched=len(hosts_touched),
    )


def execute_insert(skipweb, item: Any, origin_host: HostId) -> UpdateResult:
    """Insert ``item`` into ``skipweb`` immediately, charging messages per §4."""
    return run_immediate(
        skipweb.network,
        insert_steps(skipweb, item, origin_host),
        origin_host,
        kind=MessageKind.UPDATE,
    )


def execute_delete(skipweb, item: Any, origin_host: HostId) -> UpdateResult:
    """Delete ``item`` from ``skipweb`` immediately, charging messages per §4."""
    return run_immediate(
        skipweb.network,
        delete_steps(skipweb, item, origin_host),
        origin_host,
        kind=MessageKind.UPDATE,
    )
