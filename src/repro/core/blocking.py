"""Distributed blocking: assigning structure units to hosts (§2.4).

The paper's general framework only requires an *arbitrary* assignment in
which every host receives O(M) of the O(n log n) nodes and links.  Three
such policies are provided:

* :class:`RoundRobinBlocking` — deal units out cyclically; gives the most
  even item counts.
* :class:`HashBlocking` — place each unit by hashing its identity; what a
  real deployment without global coordination would do.
* :class:`OwnerBlocking` — place each unit on the host that owns one of
  the ground-set items it involves; mirrors how skip graphs store a key's
  whole tower at the key's home host, and is the policy under which the
  congestion measure of §1.1 is most meaningful.

The *bucketed* strategy of §2.4.1 (contiguous blocks of the linked list,
with the conflicting ranges of the non-basic levels above stored on the
same host) is specific to one-dimensional data and lives with the
one-dimensional skip-web in :mod:`repro.onedim.skipweb1d`.
"""

from __future__ import annotations

import abc
import hashlib
import itertools
from typing import Any, Callable, Sequence

from repro.core.levels import BitPrefix
from repro.core.link_structure import RangeUnit
from repro.net.naming import HostId


class BlockingPolicy(abc.ABC):
    """Maps every unit of every level structure to a host."""

    @abc.abstractmethod
    def assign(self, level: int, prefix: BitPrefix, unit: RangeUnit) -> HostId:
        """Return the host that should store ``unit`` of level set ``prefix``."""

    def describe(self) -> str:
        """Short name used in benchmark output."""
        return type(self).__name__


class RoundRobinBlocking(BlockingPolicy):
    """Deal units to hosts cyclically, in assignment order.

    Produces the most even per-host unit counts, which makes it the
    natural choice when measuring the per-host memory bound ``M = O(log n)``
    of Theorem 2.
    """

    def __init__(self, host_ids: Sequence[HostId]) -> None:
        if not host_ids:
            raise ValueError("RoundRobinBlocking needs at least one host")
        self._host_ids = list(host_ids)
        self._cycle = itertools.cycle(self._host_ids)

    def assign(self, level: int, prefix: BitPrefix, unit: RangeUnit) -> HostId:
        return next(self._cycle)


class HashBlocking(BlockingPolicy):
    """Place each unit on ``hash(level, prefix, key) mod H``.

    Deterministic given the unit identity (so rebuilding a level after an
    update keeps unchanged units on the same hosts), and requires no
    global coordination — the closest analogue of consistent hashing in a
    real deployment.
    """

    def __init__(self, host_ids: Sequence[HostId]) -> None:
        if not host_ids:
            raise ValueError("HashBlocking needs at least one host")
        self._host_ids = list(host_ids)

    def assign(self, level: int, prefix: BitPrefix, unit: RangeUnit) -> HostId:
        digest = hashlib.blake2b(
            repr((level, prefix, unit.key)).encode("utf8"), digest_size=8
        ).digest()
        index = int.from_bytes(digest, "big") % len(self._host_ids)
        return self._host_ids[index]


class OwnerBlocking(BlockingPolicy):
    """Place each unit on the home host of one of its ground-set items.

    Parameters
    ----------
    item_owner:
        Mapping from ground-set item to its home host (the host that
        "owns" the item, i.e. inserted it and starts queries about it).
    anchor:
        Function extracting a representative item from a unit.  The
        default understands the conventions used by the structures in
        this package: a node's payload is its item, a link's payload is a
        tuple of the items it connects.
    fallback:
        Host used when no anchor item can be determined (e.g. sentinel
        links of a sorted list).
    """

    def __init__(
        self,
        item_owner: dict[Any, HostId],
        fallback: HostId,
        anchor: Callable[[RangeUnit], Any] | None = None,
    ) -> None:
        if not item_owner:
            raise ValueError("OwnerBlocking needs a non-empty item_owner mapping")
        # Deliberately keep a reference (not a copy): the skip-web update
        # protocol registers newly inserted items in the same mapping so
        # that their records are placed on the inserting host.
        self._item_owner = item_owner
        self._fallback = fallback
        self._anchor = anchor or self._default_anchor

    def _default_anchor(self, unit: RangeUnit) -> Any:
        payload = unit.payload
        if payload is None:
            return None
        # The payload itself may be a ground-set item (note that items can
        # be tuples, e.g. points in R^d, so this check comes first).
        try:
            if payload in self._item_owner:
                return payload
        except TypeError:
            pass
        if isinstance(payload, tuple):
            for candidate in payload:
                try:
                    if candidate in self._item_owner:
                        return candidate
                except TypeError:
                    continue
        return None

    def assign(self, level: int, prefix: BitPrefix, unit: RangeUnit) -> HostId:
        anchor_item = self._anchor(unit)
        if anchor_item is None:
            return self._fallback
        return self._item_owner.get(anchor_item, self._fallback)


def evenly_owned_items(items: Sequence[Any], host_ids: Sequence[HostId]) -> dict[Any, HostId]:
    """Assign items to home hosts round-robin (one item per host when H == n).

    A convenience used by builders and benchmarks: with ``H == n`` this
    reproduces the paper's "one item per host" deployment; with fewer
    hosts it spreads ownership evenly.
    """
    if not host_ids:
        raise ValueError("need at least one host id")
    owners: dict[Any, HostId] = {}
    for index, item in enumerate(items):
        owners[item] = host_ids[index % len(host_ids)]
    return owners
