"""Non-crossing segment workloads for trapezoidal maps.

Trapezoidal maps require non-crossing segments in general position
(pairwise distinct endpoint x-coordinates, no vertical segments).  The
generators below produce such inputs deterministically:

* :func:`x_disjoint_segments` — segments with pairwise disjoint x-ranges;
  trivially non-crossing, cheap at any size.
* :func:`non_crossing_segments` — rejection sampling of random segments;
  a richer map with stacked segments and long vertical visibility
  relations.
* :func:`city_map_segments` — jittered street-grid layout approximating
  the "campus or city map" GIS scenario of the paper's introduction.
"""

from __future__ import annotations

import random

from repro.planar.segments import Segment


def _rng(seed_or_rng: int | random.Random) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def _distinct_xs(rng: random.Random, count: int, low: float, high: float) -> list[float]:
    xs: set[float] = set()
    while len(xs) < count:
        xs.add(round(rng.uniform(low, high), 6))
    return sorted(xs)


def x_disjoint_segments(
    count: int,
    seed: int | random.Random = 0,
    low: float = 0.0,
    high: float = 100.0,
) -> list[Segment]:
    """Segments whose x-ranges are pairwise disjoint (never cross)."""
    rng = _rng(seed)
    xs = _distinct_xs(rng, 2 * count, low, high)
    segments = []
    for index in range(count):
        x1, x2 = xs[2 * index], xs[2 * index + 1]
        y1, y2 = rng.uniform(low, high), rng.uniform(low, high)
        segments.append(Segment.of((x1, y1), (x2, y2)))
    return segments


def non_crossing_segments(
    count: int,
    seed: int | random.Random = 0,
    low: float = 0.0,
    high: float = 100.0,
    max_attempts_factor: int = 200,
) -> list[Segment]:
    """Random non-crossing segments via rejection sampling.

    Candidate segments with modest length are drawn uniformly and kept
    only when they cross none of the segments accepted so far.  Endpoint
    x-coordinates are drawn from a shared pool of distinct values so the
    general-position requirement holds by construction.
    """
    rng = _rng(seed)
    xs = _distinct_xs(rng, 2 * count, low, high)
    rng.shuffle(xs)
    accepted: list[Segment] = []
    attempts = 0
    max_attempts = max_attempts_factor * count
    available = list(xs)
    while len(accepted) < count and attempts < max_attempts:
        attempts += 1
        if len(available) < 2:
            break
        x1, x2 = sorted(rng.sample(available, 2))
        if x2 - x1 > (high - low) / 4:
            continue
        y1, y2 = rng.uniform(low, high), rng.uniform(low, high)
        if abs(y2 - y1) > (high - low) / 3:
            continue
        candidate = Segment.of((x1, y1), (x2, y2))
        if any(candidate.crosses(existing) for existing in accepted):
            continue
        accepted.append(candidate)
        available.remove(x1)
        available.remove(x2)
    if len(accepted) < count:
        # Top up with x-disjoint segments drawn from the remaining pool,
        # still rejecting any candidate that crosses an accepted segment.
        remaining = sorted(available)
        index = 0
        while len(accepted) < count and index + 1 < len(remaining):
            x1, x2 = remaining[index], remaining[index + 1]
            y1, y2 = rng.uniform(low, high), rng.uniform(low, high)
            candidate = Segment.of((x1, y1), (x2, y2))
            index += 2
            if any(candidate.crosses(existing) for existing in accepted):
                continue
            accepted.append(candidate)
    # Final guarantee: place any still-missing segments in fresh x-territory
    # to the right of everything generated so far, where nothing can cross.
    next_x = max((segment.x_max for segment in accepted), default=high) + 1.0
    while len(accepted) < count:
        x1 = round(next_x + rng.uniform(0.1, 0.5), 6)
        x2 = round(x1 + rng.uniform(0.5, 2.0), 6)
        accepted.append(
            Segment.of((x1, rng.uniform(low, high)), (x2, rng.uniform(low, high)))
        )
        next_x = x2
    return accepted


def city_map_segments(
    blocks_x: int = 4,
    blocks_y: int = 3,
    seed: int | random.Random = 0,
    size: float = 100.0,
) -> list[Segment]:
    """A jittered street grid: horizontal street segments between junctions.

    Streets run roughly east-west at distinct heights; each street is
    broken at every junction so the map contains many short segments, as
    a digitised campus map would.  Vertical avenues are omitted (vertical
    segments are outside the general-position model) — their role as
    visibility blockers is played by the junction gaps.
    """
    rng = _rng(seed)
    segments: list[Segment] = []
    used_xs: set[float] = set()

    def fresh_x(base: float) -> float:
        candidate = base
        while round(candidate, 6) in used_xs:
            candidate += rng.uniform(0.001, 0.01)
        used_xs.add(round(candidate, 6))
        return round(candidate, 6)

    for row in range(blocks_y + 1):
        y_base = size * row / max(1, blocks_y)
        for column in range(blocks_x):
            x_start = fresh_x(size * column / blocks_x + rng.uniform(0.5, 2.0))
            x_end = fresh_x(size * (column + 1) / blocks_x - rng.uniform(0.5, 2.0))
            if x_end <= x_start:
                continue
            y_jitter = rng.uniform(-1.0, 1.0)
            segments.append(
                Segment.of((x_start, y_base + y_jitter), (x_end, y_base + y_jitter))
            )
    return segments
