"""Numeric workloads: one-dimensional keys and d-dimensional point clouds.

All generators take an explicit ``random.Random`` (or a seed) so that
benchmarks and tests are reproducible, and return plain Python values
(floats, tuples) accepted directly by the structures.
"""

from __future__ import annotations

import random
from typing import Sequence


def _rng(seed_or_rng: int | random.Random) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


# --------------------------------------------------------------------- #
# one-dimensional keys
# --------------------------------------------------------------------- #
def uniform_keys(
    count: int, seed: int | random.Random = 0, low: float = 0.0, high: float = 1_000_000.0
) -> list[float]:
    """``count`` distinct keys drawn uniformly from ``[low, high)``."""
    rng = _rng(seed)
    keys: set[float] = set()
    while len(keys) < count:
        keys.add(round(rng.uniform(low, high), 6))
    return sorted(keys)


def clustered_keys(
    count: int,
    seed: int | random.Random = 0,
    clusters: int = 10,
    spread: float = 1.0,
    low: float = 0.0,
    high: float = 1_000_000.0,
) -> list[float]:
    """Keys concentrated around ``clusters`` random centres.

    Clustered keys exercise the case where consecutive gaps vary by many
    orders of magnitude — the regime where naive partitioning strategies
    lose balance but randomized levels do not.
    """
    rng = _rng(seed)
    centres = [rng.uniform(low, high) for _ in range(max(1, clusters))]
    keys: set[float] = set()
    while len(keys) < count:
        centre = rng.choice(centres)
        keys.add(round(centre + rng.gauss(0.0, spread), 6))
    return sorted(keys)


def zipf_query_mix(
    keys: Sequence[float],
    count: int,
    seed: int | random.Random = 0,
    exponent: float = 1.1,
    miss_fraction: float = 0.3,
    low: float = 0.0,
    high: float = 1_000_000.0,
) -> list[float]:
    """A skewed query workload over ``keys``.

    A ``1 - miss_fraction`` share of queries asks for stored keys with a
    Zipf-like popularity profile (hot keys queried far more often); the
    rest are uniform misses, exercising the nearest-neighbour path.
    """
    rng = _rng(seed)
    ranked = list(keys)
    rng.shuffle(ranked)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(ranked))]
    queries: list[float] = []
    for _ in range(count):
        if rng.random() < miss_fraction or not ranked:
            queries.append(rng.uniform(low, high))
        else:
            queries.append(rng.choices(ranked, weights=weights, k=1)[0])
    return queries


# --------------------------------------------------------------------- #
# d-dimensional points
# --------------------------------------------------------------------- #
def uniform_points(
    count: int, dimension: int = 2, seed: int | random.Random = 0
) -> list[tuple[float, ...]]:
    """``count`` distinct points uniform in the unit cube ``[0, 1)^d``."""
    rng = _rng(seed)
    points: set[tuple[float, ...]] = set()
    while len(points) < count:
        points.add(tuple(round(rng.random(), 9) for _ in range(dimension)))
    return sorted(points)


def clustered_points(
    count: int,
    dimension: int = 2,
    seed: int | random.Random = 0,
    clusters: int = 5,
    spread: float = 0.01,
) -> list[tuple[float, ...]]:
    """Points concentrated around a few centres — produces deep quadtrees."""
    rng = _rng(seed)
    centres = [
        tuple(rng.uniform(0.2, 0.8) for _ in range(dimension)) for _ in range(max(1, clusters))
    ]
    points: set[tuple[float, ...]] = set()
    while len(points) < count:
        centre = rng.choice(centres)
        candidate = tuple(
            min(0.999999, max(0.0, coordinate + rng.gauss(0.0, spread)))
            for coordinate in centre
        )
        points.add(candidate)
    return sorted(points)


def degenerate_line_points(
    count: int, dimension: int = 2, seed: int | random.Random = 0
) -> list[tuple[float, ...]]:
    """Points packed exponentially close along a diagonal line.

    This is the adversarial input for plain quadtrees: the compressed tree
    remains linear in size but its depth grows linearly with ``count``,
    which is exactly the situation where the skip-web's ``O(log n)``
    message bound is non-trivial.
    """
    rng = _rng(seed)
    points: list[tuple[float, ...]] = []
    scale = 0.5
    for index in range(count):
        jitter = rng.uniform(0.1, 0.9)
        points.append(tuple(0.5 + scale * jitter for _ in range(dimension)))
        scale /= 2
        if scale < 1e-12:
            scale = 0.25
    return sorted(set(points))


# --------------------------------------------------------------------- #
# geo placement (host -> region) and link-weight matrices
# --------------------------------------------------------------------- #
def geo_region(host: int, regions: int, seed: int | random.Random = 0) -> int:
    """Deterministic region placement for one host.

    A pure function of ``(seed, host, regions)``: the region does not
    depend on join order, so a host that joins after churn (or after a
    crash recovery) lands where it always would have.  Seeding a fresh
    generator from a string keys the draw off SHA-512 of the text, which
    is stable across processes regardless of hash randomisation.
    """
    if regions < 1:
        raise ValueError(f"regions must be >= 1, got {regions}")
    if isinstance(seed, random.Random):
        seed = seed.randrange(2**32)
    return random.Random(f"geo-region:{seed}:{host}").randrange(regions)


def geo_placement(
    host_ids: Sequence[int], regions: int, seed: int | random.Random = 0
) -> dict[int, int]:
    """Region of every listed host (a batch of :func:`geo_region` draws)."""
    if isinstance(seed, random.Random):
        seed = seed.randrange(2**32)
    return {host: geo_region(host, regions, seed=seed) for host in host_ids}


def geo_weight_matrix(
    regions: int,
    seed: int | random.Random = 0,
    local_cost: int = 1,
    min_cost: int = 2,
    max_cost: int = 12,
) -> list[list[int]]:
    """A symmetric ``regions x regions`` link-weight matrix.

    Diagonal entries (intra-region links) cost ``local_cost``; each
    distinct region pair draws one weight uniformly from
    ``[min_cost, max_cost]``.  The same seed always yields the same
    matrix, so a topology journaled by the durability layer can be
    reconstructed exactly.
    """
    if regions < 1:
        raise ValueError(f"regions must be >= 1, got {regions}")
    if not (1 <= local_cost <= min_cost <= max_cost):
        raise ValueError(
            "expected 1 <= local_cost <= min_cost <= max_cost, got "
            f"local={local_cost}, min={min_cost}, max={max_cost}"
        )
    rng = _rng(seed if isinstance(seed, random.Random) else f"geo-weights:{seed}")
    matrix = [[local_cost] * regions for _ in range(regions)]
    for i in range(regions):
        for j in range(i + 1, regions):
            cost = rng.randint(min_cost, max_cost)
            matrix[i][j] = cost
            matrix[j][i] = cost
    return matrix
