"""Synthetic workload generators.

The paper motivates skip-webs with application scenarios — DNA databases,
ISBN prefix queries, location-based services, campus maps — but, being a
theory paper, ships no data.  This subpackage provides deterministic
(seeded) synthetic stand-ins for each scenario so that every benchmark
and example is reproducible:

* :mod:`repro.workloads.generators` — one-dimensional keys (uniform,
  clustered, Zipf-weighted query mixes) and d-dimensional point clouds
  (uniform, clustered, line-degenerate).
* :mod:`repro.workloads.strings` — fixed-alphabet strings: random, DNA
  reads with shared motifs, ISBN-like identifiers with common publisher
  prefixes.
* :mod:`repro.workloads.planar_maps` — non-crossing segment sets in
  general position: random rejection-sampled maps, x-disjoint maps and
  street-grid "campus map" layouts.
"""

from repro.workloads.generators import (
    clustered_points,
    clustered_keys,
    degenerate_line_points,
    geo_placement,
    geo_region,
    geo_weight_matrix,
    uniform_keys,
    uniform_points,
    zipf_query_mix,
)
from repro.workloads.strings import dna_reads, isbn_like_keys, random_strings
from repro.workloads.planar_maps import (
    city_map_segments,
    non_crossing_segments,
    x_disjoint_segments,
)

__all__ = [
    "uniform_keys",
    "clustered_keys",
    "uniform_points",
    "clustered_points",
    "degenerate_line_points",
    "zipf_query_mix",
    "geo_region",
    "geo_placement",
    "geo_weight_matrix",
    "random_strings",
    "dna_reads",
    "isbn_like_keys",
    "non_crossing_segments",
    "x_disjoint_segments",
    "city_map_segments",
]
