"""String workloads over fixed alphabets.

The paper's motivating examples for trie skip-webs are DNA databases and
ISBN prefix queries; these generators provide deterministic synthetic
stand-ins with the structural properties that matter (shared motifs /
publisher prefixes creating deep shared paths in the trie).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.strings.alphabet import Alphabet, DNA, LOWERCASE, PRINTABLE


def _rng(seed_or_rng: int | random.Random) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def random_strings(
    count: int,
    alphabet: Alphabet = LOWERCASE,
    seed: int | random.Random = 0,
    min_length: int = 4,
    max_length: int = 12,
) -> list[str]:
    """``count`` distinct random strings of varying length."""
    rng = _rng(seed)
    strings: set[str] = set()
    while len(strings) < count:
        length = rng.randint(min_length, max_length)
        strings.add("".join(rng.choice(alphabet.symbols) for _ in range(length)))
    return sorted(strings)


def dna_reads(
    count: int,
    seed: int | random.Random = 0,
    read_length: int = 24,
    motif_count: int = 8,
    motif_length: int = 12,
) -> list[str]:
    """Synthetic DNA reads sharing a small pool of motifs.

    Reads start with one of ``motif_count`` shared motifs followed by
    random nucleotides, so the compressed trie develops long shared paths
    (the regime where trie depth is large but the skip-web search stays
    logarithmic in the number of reads).
    """
    rng = _rng(seed)
    motifs = [
        "".join(rng.choice(DNA.symbols) for _ in range(motif_length))
        for _ in range(max(1, motif_count))
    ]
    reads: set[str] = set()
    while len(reads) < count:
        motif = rng.choice(motifs)
        suffix_length = max(1, read_length - motif_length)
        suffix = "".join(rng.choice(DNA.symbols) for _ in range(suffix_length))
        reads.add(motif + suffix)
    return sorted(reads)


def isbn_like_keys(
    count: int,
    seed: int | random.Random = 0,
    publisher_count: int = 12,
) -> list[str]:
    """ISBN-like identifiers ``<group>-<publisher>-<title>``.

    A prefix query for ``<group>-<publisher>`` returns all titles by that
    publisher — the exact example the paper's introduction gives for
    string prefix queries in a book database.
    """
    rng = _rng(seed)
    publishers = [
        f"{rng.randint(0, 9)}-{rng.randint(100, 999)}"
        for _ in range(max(1, publisher_count))
    ]
    keys: set[str] = set()
    while len(keys) < count:
        publisher = rng.choice(publishers)
        title = rng.randint(10000, 99999)
        check = rng.randint(0, 9)
        keys.add(f"{publisher}-{title}-{check}")
    return sorted(PRINTABLE.validate_strings(keys))


def prefix_queries(
    strings: Sequence[str],
    count: int,
    seed: int | random.Random = 0,
    min_prefix: int = 2,
) -> list[str]:
    """Prefix queries drawn from the stored strings (plus a few misses)."""
    rng = _rng(seed)
    queries: list[str] = []
    pool = list(strings)
    for _ in range(count):
        source = rng.choice(pool)
        length = rng.randint(min_prefix, max(min_prefix, len(source)))
        prefix = source[:length]
        if rng.random() < 0.2 and prefix:
            # Perturb the last character to generate near-miss queries.
            prefix = prefix[:-1] + ("z" if prefix[-1] != "z" else "a")
        queries.append(prefix)
    return queries
