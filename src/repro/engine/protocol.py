"""The ``DistributedStructure`` protocol: one executor for every structure.

Skip-webs, their four instantiations, and the Table 1 baselines all
search and update by walking pointers over the simulated network.  The
protocol below captures that common shape as *step generators* (see
:mod:`repro.engine.steps`): a structure exposes its operations as
resumable generators and in exchange runs unmodified under both the
immediate single-operation drivers and the round-based
:class:`~repro.engine.executor.BatchExecutor`.

A structure implements:

* ``search_steps(query, origin_host)`` — the query descent;
* ``range_steps(query_range, origin_host)`` — output-sensitive range
  reporting (O(log n + k) messages via forked report sub-walks;
  hash-based structures raise
  :class:`~repro.errors.UnsupportedOperationError`);
* ``insert_steps(item, origin_host)`` / ``delete_steps(item,
  origin_host)`` — updates (structures that cannot update, e.g. the Chord
  baseline, raise :class:`~repro.errors.UpdateError`);
* ``seed_roots(origin_host)`` — the local routing state an operation at
  ``origin_host`` starts from (root entries, a routing table, a finger
  table), returned through a step generator so that structures whose
  roots require remote fetches can charge them;
* ``origin_hosts()`` — hosts from which operations may originate, used by
  workload drivers to spread a batch across the network;
* ``migrate_host(host_id, targets, fraction)`` / ``repair(host_ids)`` —
  the churn hooks (see :mod:`repro.engine.repair`): migration hands
  records off a live host (a graceful leave, or a rebalance toward a
  newly joined target), repair re-homes the records orphaned by crashed
  hosts and rewires the pointers that referenced them.  Both are step
  generators, so their traffic is billed through the same immediate or
  round-based accounting as queries and updates.

The protocol is ``runtime_checkable`` so tests can assert conformance
with ``isinstance``.
"""

from __future__ import annotations

from typing import Any, Protocol, Sequence, runtime_checkable

from repro.engine.steps import StepGenerator
from repro.net.naming import HostId


@runtime_checkable
class DistributedStructure(Protocol):
    """A distributed data structure whose operations are step generators."""

    @property
    def network(self) -> Any:
        """The :class:`repro.net.network.Network` the structure lives on."""
        ...  # pragma: no cover - protocol

    def origin_hosts(self) -> Sequence[HostId]:
        """Hosts from which operations may originate."""
        ...  # pragma: no cover - protocol

    def seed_roots(self, origin_host: HostId) -> StepGenerator:
        """Step generator returning the local routing state of ``origin_host``."""
        ...  # pragma: no cover - protocol

    def search_steps(self, query: Any, origin_host: HostId | None = None) -> StepGenerator:
        """Step generator answering ``query`` from ``origin_host``."""
        ...  # pragma: no cover - protocol

    def range_steps(
        self, query_range: Any, origin_host: HostId | None = None
    ) -> StepGenerator:
        """Step generator reporting every stored item inside ``query_range``.

        Output-sensitive: O(log n + k) expected messages for output size
        ``k``, achieved by locating one point of the range and then
        forking parallel report sub-walks (:class:`~repro.engine.steps
        .Fork`) over the matching records.  Structures that cannot
        support range queries at all (hash-based overlays such as the
        Chord baseline — the paper's point about hashing) raise
        :class:`~repro.errors.UnsupportedOperationError`.
        """
        ...  # pragma: no cover - protocol

    def insert_steps(self, item: Any, origin_host: HostId | None = None) -> StepGenerator:
        """Step generator inserting ``item`` from ``origin_host``."""
        ...  # pragma: no cover - protocol

    def delete_steps(self, item: Any, origin_host: HostId | None = None) -> StepGenerator:
        """Step generator deleting ``item`` from ``origin_host``."""
        ...  # pragma: no cover - protocol

    def migrate_host(
        self,
        host_id: HostId,
        targets: Sequence[HostId] | None = None,
        fraction: float = 1.0,
    ) -> StepGenerator:
        """Step generator handing records off ``host_id`` (leave / rebalance).

        ``fraction`` of the host's records move to ``targets`` (default:
        every other live host, round-robin).  A full evacuation
        (``fraction == 1.0``, no targets) prepares a graceful leave; a
        partial migration toward a single fresh target rebalances load
        onto a newly joined host.  Returns a
        :class:`~repro.engine.repair.MigrationSummary`.
        """
        ...  # pragma: no cover - protocol

    def repair(self, host_ids: Sequence[HostId]) -> StepGenerator:
        """Step generator re-homing the records orphaned by crashed ``host_ids``.

        Reconstructs each orphaned record on a live host and rewires the
        neighbour/hyperlink (or routing-table / finger-table) pointers
        that referenced the dead hosts.  Returns a
        :class:`~repro.engine.repair.MigrationSummary`.
        """
        ...  # pragma: no cover - protocol
