"""The batched execution engine: many operations, one round at a time.

The paper's congestion bounds are statements about *concurrent* load —
O(log n / log log n) messages per host per round w.h.p. when many
operations are in flight (Theorem 2).  :class:`BatchExecutor` makes that
measurable: it takes a batch of mixed operations (queries, range
reports and updates), obtains each one's step generator from the
structure (any :class:`~repro.engine.protocol.DistributedStructure`),
and advances every in-flight operation by at most one host crossing per
network round using the queued delivery mode of
:meth:`repro.net.network.Network.rounds`.  An operation that forks
(:class:`~repro.engine.steps.Fork`) advances every sub-walk by one host
crossing per round, so a range query's report phase genuinely runs its
sub-walks in parallel.

Concurrency is honest: an update that lands mid-batch really does mutate
the records other operations are walking.  An operation that trips over
concurrently-changed state (a freed slot, a vanished unit) is restarted
from scratch — and pays its messages again — up to ``max_retries`` times,
mirroring how a real deployment retries on stale pointers.  An operation
that touches a *failed* host is not retried; its outcome carries the
:class:`~repro.errors.HostFailedError` while the rest of the batch runs
to completion undisturbed.  Updates apply their structural change
*atomically* before yielding their propagation charges, so a failure can
only abort an update cleanly (during its search phase) or lose its
billing acks (during its charge phase, with the change already applied
and the structure consistent) — never leave a half-mutated structure.

A per-origin **route cache** is available as a measurable fast path:
when enabled, the first remote record a search fetches (its top-level
descent entry) is memoized per origin host, so subsequent searches from
the same origin resolve that record from the local copy — no message, no
host crossing.  The cache is invalidated whenever an update completes,
and whenever the network's membership changes (a host failing, recovering,
joining or leaving — tracked via
:attr:`repro.net.network.Network.membership_epoch`), since a memoized
route may aim at a host that is now dead or gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.protocol import DistributedStructure
from repro.engine.steps import (
    OP_FORK,
    OP_VISIT,
    HopTo,
    Resolution,
    StepGenerator,
    Visit,
)
from repro.errors import (
    AddressError,
    FaultInjectedError,
    HostFailedError,
    OperationTimedOutError,
    QueryError,
    ReproError,
    StructureError,
)
from repro.net.congestion import (
    RoundCongestionReport,
    round_congestion_report,
    summarize_round_reports,
)
from repro.net.message import MessageKind
from repro.net.naming import Address, HostId
from repro.net.network import PendingDelivery, RoundReport

#: Errors caused by concurrent structural changes; the executor restarts
#: the operation (fresh generator) when one of these surfaces mid-flight.
_RETRYABLE = (AddressError, QueryError, StructureError)

#: Message kind charged for each operation kind.
_KIND_OF = {
    "search": MessageKind.QUERY,
    "range": MessageKind.QUERY,
    "insert": MessageKind.UPDATE,
    "delete": MessageKind.UPDATE,
}


@dataclass(frozen=True, slots=True)
class Operation:
    """One logical operation of a batch.

    ``kind`` is ``"search"``, ``"range"``, ``"insert"`` or ``"delete"``;
    ``payload`` is the query / range / item; ``origin_host`` pins the
    originating host (``None`` lets the executor spread origins
    round-robin over the *alive* hosts of ``structure.origin_hosts()``).
    """

    kind: str
    payload: Any
    origin_host: HostId | None = None


@dataclass
class OpOutcome:
    """What happened to one operation of a batch."""

    operation: Operation
    origin_host: HostId
    value: Any = None
    error: Exception | None = None
    messages: int = 0
    rounds: int = 0
    retries: int = 0
    cache_hits: int = 0
    #: Sum of link costs of the operation's charged crossings.  0 on a
    #: network without an explicit topology; equals ``messages`` under
    #: ``FlatTopology``.
    latency: int = 0
    #: Graceful-degradation marker: ``"timed_out"`` (round budget
    #: exhausted) or ``"gave_up"`` (fault retries exhausted); ``None``
    #: for ordinary completions and failures.
    terminal: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the operation completed without error."""
        return self.error is None

    def result(self) -> Any:
        """The operation's result, re-raising its error if it failed."""
        if self.error is not None:
            raise self.error
        return self.value


@dataclass
class BatchResult:
    """Aggregate outcome of one :meth:`BatchExecutor.run` call.

    ``round_reports`` holds the per-round detail, subject to the
    network's ``round_report_retention``; ``congestion_summary`` is the
    whole-session aggregate the network maintained as rounds closed, so
    congestion numbers stay exact even when old reports were dropped.
    """

    outcomes: list[OpOutcome]
    rounds: int
    messages: int
    round_reports: list[RoundReport] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    congestion_summary: RoundCongestionReport | None = None
    latency: int = 0

    @property
    def ops(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def failed(self) -> int:
        return self.ops - self.completed

    @property
    def messages_per_op(self) -> float:
        return self.messages / self.ops if self.ops else 0.0

    @property
    def latency_per_op(self) -> float:
        """Mean weighted latency per operation (0.0 without a topology)."""
        return self.latency / self.ops if self.ops else 0.0

    @property
    def ops_per_round(self) -> float:
        """Throughput: completed operations per network round."""
        return self.completed / self.rounds if self.rounds else float(self.completed)

    @property
    def max_round_congestion(self) -> int:
        """Worst per-host per-round delivery count observed during the batch."""
        if self.congestion_summary is not None:
            return self.congestion_summary.max_host_round_load
        return max((report.max_host_load for report in self.round_reports), default=0)

    def round_congestion(self) -> RoundCongestionReport:
        """Full round-level congestion summary of the batch."""
        if self.congestion_summary is not None:
            return self.congestion_summary
        return summarize_round_reports(self.round_reports)

    def summary(self) -> dict[str, Any]:
        """One benchmark-table row worth of aggregate numbers."""
        return {
            "ops": self.ops,
            "completed": self.completed,
            "failed": self.failed,
            "rounds": self.rounds,
            "messages": self.messages,
            "msgs_per_op": round(self.messages_per_op, 2),
            "ops_per_round": round(self.ops_per_round, 2),
            "max_round_congestion": self.max_round_congestion,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "latency": self.latency,
        }


class _Branch:
    """Executor-side state of one forked sub-walk of an operation."""

    __slots__ = ("gen", "current", "ticket", "effect", "resolution", "result", "done")

    def __init__(self, gen: StepGenerator, current: HostId) -> None:
        self.gen = gen
        self.current: HostId = current
        self.ticket: PendingDelivery | None = None
        self.effect: Visit | HopTo | None = None
        self.resolution: Resolution | None = None
        self.result: Any = None
        self.done = False


class _InFlight:
    """Executor-side state of one operation."""

    __slots__ = (
        "outcome",
        "gen",
        "current",
        "ticket",
        "effect",
        "branches",
        "branch_error",
        "started",
        "start_round",
        "resume_round",
        "first_remote_done",
        "warm_key",
        "done",
        "kind",
    )

    def __init__(self, outcome: OpOutcome) -> None:
        self.outcome = outcome
        self.gen: StepGenerator | None = None
        self.current: HostId = outcome.origin_host
        self.ticket: PendingDelivery | None = None
        self.effect: Visit | HopTo | None = None
        self.branches: list[_Branch] | None = None
        self.branch_error: tuple[str, Exception] | None = None
        self.started = False
        self.start_round: int | None = None
        # Round index before which the operation idles (fault backoff).
        self.resume_round: int | None = None
        self.first_remote_done = False
        self.warm_key: tuple[HostId, Address] | None = None
        self.done = False
        # Message kind, resolved once per operation instead of per post.
        # Unknown kinds stay None: _make_generator rejects them before
        # the first post could ever need it.
        self.kind: MessageKind | None = _KIND_OF.get(outcome.operation.kind)


class BatchExecutor:
    """Round-based interleaving executor over one distributed structure.

    Parameters
    ----------
    structure:
        Any :class:`~repro.engine.protocol.DistributedStructure`.
    route_cache:
        Enable the per-origin top-level record cache (default off, so
        batched numbers match the immediate-mode numbers exactly).
    max_retries:
        How many times an operation is restarted after tripping over
        concurrently-modified state before its error is recorded.  The
        default absorbs the worst churn the mixed benchmark workloads
        produce; lower it to surface conflicts in tests.
    max_rounds:
        Safety bound on the number of network rounds per batch.
    round_budget:
        Optional per-operation timeout, in delivery rounds.  An operation
        that has been in flight for more than this many rounds — counted
        from its first posted message, across retries — is abandoned with
        an :class:`~repro.errors.OperationTimedOutError` and its handle
        reports ``timed_out``.  ``None`` (the default) never times out,
        which keeps fault-free batches byte-identical to older versions.
    on_round:
        Optional hook called after every round with its
        :class:`~repro.net.network.RoundReport` — chaos tests use it to
        fail hosts mid-batch.
    on_commit:
        Optional hook called once per :meth:`run`, after the batch has
        fully committed, with ``(operations, result)`` — the durability
        layer journals committed batches through it.  A crash before the
        hook fires leaves the log one whole batch short, never half a
        batch.
    """

    def __init__(
        self,
        structure: DistributedStructure,
        route_cache: bool = False,
        max_retries: int = 5,
        max_rounds: int = 1_000_000,
        on_round: Callable[[RoundReport], None] | None = None,
        on_commit: Callable[[tuple[Operation, ...], BatchResult], None] | None = None,
        round_budget: int | None = None,
    ) -> None:
        self.structure = structure
        self.network = structure.network
        self.route_cache = route_cache
        self.max_retries = max_retries
        self.max_rounds = max_rounds
        self.round_budget = round_budget
        self.on_round = on_round
        self.on_commit = on_commit
        self._cache: dict[tuple[HostId, Address], Any] = {}
        self._cache_epoch = self.network.membership_epoch
        self._cache_hits = 0
        self._cache_misses = 0

    def _sync_cache_epoch(self) -> None:
        """Drop every memoized route once the network's membership changed.

        Hosts can fail, recover, join or leave *mid-batch* (failure
        injection via ``on_round``, churn between batches); a cached
        top-level record may then live on a dead or departed host, and
        serving it locally would silently route operations into the hole.
        """
        epoch = self.network.membership_epoch
        if epoch != self._cache_epoch:
            self._cache.clear()
            self._cache_epoch = epoch

    # ------------------------------------------------------------------ #
    # batch driver
    # ------------------------------------------------------------------ #
    def run(self, operations: list[Operation] | tuple[Operation, ...]) -> BatchResult:
        """Execute ``operations`` concurrently, one host crossing per round each."""
        # Post-churn, ``origin_hosts()`` may still name failed hosts whose
        # records have not been repaired away; originating an operation
        # there would fail it instantly, so spread the batch over the
        # alive origins only.
        alive = set(self.network.alive_host_ids())
        origins = [
            host for host in self.structure.origin_hosts() if host in alive
        ]
        if not origins:
            raise QueryError(
                "structure has no alive origin hosts to run a batch from"
            )
        states: list[_InFlight] = []
        for index, operation in enumerate(operations):
            origin = (
                operation.origin_host
                if operation.origin_host is not None
                else origins[index % len(origins)]
            )
            states.append(_InFlight(OpOutcome(operation=operation, origin_host=origin)))

        self._cache_hits = 0
        self._cache_misses = 0
        self._sync_cache_epoch()
        with self.network.rounds():
            with self.network.measure() as stats:
                self.network.run_rounds(
                    [self._stepper(state) for state in states],
                    max_rounds=self.max_rounds,
                    on_round=self.on_round,
                )
            rounds = self.network.rounds_completed
            round_reports = self.network.round_reports
        result = BatchResult(
            outcomes=[state.outcome for state in states],
            rounds=rounds,
            messages=stats.messages,
            round_reports=round_reports,
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses,
            congestion_summary=round_congestion_report(self.network),
            latency=stats.latency,
        )
        if self.on_commit is not None:
            self.on_commit(tuple(operations), result)
        return result

    # ------------------------------------------------------------------ #
    # per-operation stepping
    # ------------------------------------------------------------------ #
    def _make_generator(self, outcome: OpOutcome) -> StepGenerator:
        operation = outcome.operation
        if operation.kind == "search":
            return self.structure.search_steps(operation.payload, outcome.origin_host)
        if operation.kind == "range":
            return self.structure.range_steps(operation.payload, outcome.origin_host)
        if operation.kind == "insert":
            return self.structure.insert_steps(operation.payload, outcome.origin_host)
        if operation.kind == "delete":
            return self.structure.delete_steps(operation.payload, outcome.origin_host)
        raise ValueError(f"unknown operation kind {operation.kind!r}")

    def _stepper(self, state: _InFlight) -> Callable[[], bool]:
        def step() -> bool:
            if state.done:
                return False
            if self._over_budget(state):
                self._time_out(state)
                return False
            if state.resume_round is not None:
                # Fault backoff: idle until the scheduled resume round.
                if self.network.rounds_completed < state.resume_round:
                    return True
                state.resume_round = None
                return self._advance(state, None)
            if state.branches is not None:
                return self._step_branches(state)
            resolution: Resolution | None = None
            if state.ticket is not None:
                if state.ticket.deferred:
                    # Delivery parked by a delay fault; wait it out.
                    return True
                # Resolve last round's delivery before advancing further.
                try:
                    state.ticket.result()
                except FaultInjectedError as error:
                    state.ticket = None
                    state.effect = None
                    state.warm_key = None
                    return self._fault_retry(state, error)
                except HostFailedError as error:
                    self._fail(state, error)
                    return False
                effect = state.effect
                assert effect is not None
                is_visit = effect.op == OP_VISIT
                target = effect.address.host if is_visit else effect.host
                cost = 1
                topology = self.network.topology
                if topology is not None:
                    # Price the link before state.current moves off the
                    # delivery's source host.
                    cost = topology.link_cost(state.current, target)
                    state.outcome.latency += cost
                state.current = target
                state.outcome.messages += 1
                try:
                    value = self.network.load(effect.address) if is_visit else None
                except HostFailedError as error:
                    self._fail(state, error)
                    return False
                except _RETRYABLE as error:
                    state.ticket = None
                    state.effect = None
                    state.warm_key = None
                    return self._retry_or_fail(state, error)
                if state.warm_key is not None and is_visit:
                    # Memoize the fetched top-level record as the origin
                    # host's local copy for later searches.
                    self._cache[state.warm_key] = value
                state.ticket = None
                state.effect = None
                state.warm_key = None
                resolution = Resolution(value=value, host=target, charged=True, cost=cost)
            return self._advance(state, resolution)

        return step

    def _advance(self, state: _InFlight, resolution: Resolution | None) -> bool:
        """Run the generator locally until its next cross-host effect.

        The loop is the batched mirror of ``steps._drive``: table-driven
        opcode dispatch, with the local (same-host) fast path resolving
        effects without re-entering the round machinery.
        """
        load = self.network.load
        while True:
            try:
                if not state.started:
                    state.started = True
                    state.gen = self._make_generator(state.outcome)
                    effect = next(state.gen)
                elif resolution is not None:
                    effect = state.gen.send(resolution)
                    resolution = None
                else:
                    effect = next(state.gen)
            except StopIteration as stop:
                self._finish(state, stop.value)
                return False
            except HostFailedError as error:
                self._fail(state, error)
                return False
            except _RETRYABLE as error:
                return self._retry_or_fail(state, error)
            except ReproError as error:
                # Non-retryable domain error (duplicate insert, unsupported
                # update, ...): fail this operation, keep the batch going.
                self._fail(state, error)
                return False

            op = effect.op
            if op == OP_FORK:
                # Split into sub-walks: each advances one host crossing
                # per round from here on, all billed to this operation.
                state.branches = [
                    _Branch(gen=branch, current=state.current)
                    for branch in effect.branches
                ]
                return self._step_branches(state)
            is_visit = op == OP_VISIT
            target = effect.address.host if is_visit else effect.host
            if target == state.current:
                # Local effect: free and instantaneous.
                try:
                    value = load(effect.address) if is_visit else None
                except HostFailedError as error:
                    self._fail(state, error)
                    return False
                except _RETRYABLE as error:
                    return self._retry_or_fail(state, error)
                resolution = Resolution(value, target, False)
                continue
            if (
                self.route_cache
                and is_visit
                and state.outcome.operation.kind == "search"
                and not state.first_remote_done
            ):
                self._sync_cache_epoch()
                cache_key = (state.outcome.origin_host, effect.address)
                cached = self._cache.get(cache_key)
                state.first_remote_done = True
                if cached is not None:
                    # Served from the origin's local copy: no message, the
                    # operation keeps executing at its origin host.
                    self._cache_hits += 1
                    state.outcome.cache_hits += 1
                    resolution = Resolution(value=cached, host=state.current, charged=False)
                    continue
                self._cache_misses += 1
                self._post(state, effect, target, warm_cache_key=cache_key)
                return True
            if is_visit:
                state.first_remote_done = True
            self._post(state, effect, target)
            return True

    # ------------------------------------------------------------------ #
    # forked sub-walks (the Fork effect)
    # ------------------------------------------------------------------ #
    def _note_branch_error(self, state: _InFlight, kind: str, error: Exception) -> None:
        """Record a sub-walk's error; a non-retryable failure takes precedence.

        ``kind`` is ``"fail"`` (abort the operation), ``"retry"``
        (conflict restart) or ``"fault"`` (injected drop — restart with
        backoff).  A ``"fail"`` displaces either transient kind.
        """
        if state.branch_error is None or (
            kind == "fail" and state.branch_error[0] != "fail"
        ):
            state.branch_error = (kind, error)

    def _step_branches(self, state: _InFlight) -> bool:
        """Advance every forked sub-walk by at most one host crossing.

        A sub-walk that touches a failed host fails the whole operation
        (its partial report is worthless); a sub-walk that trips over
        concurrently-changed state restarts the whole operation — all
        sub-walks included — through the ordinary retry path.  Either
        way, the abort waits for the sibling sub-walks' in-flight
        deliveries to drain first, billing each delivered crossing to
        the operation — an abort must not orphan messages the network
        has already charged.
        """
        branches = state.branches
        assert branches is not None
        # 1. resolve last round's deliveries, billing every delivered
        #    crossing even when another sub-walk is failing.
        for branch in branches:
            if branch.ticket is None:
                continue
            if branch.ticket.deferred:
                # Parked by a delay fault; resolves in a later round.
                continue
            ticket = branch.ticket
            effect = branch.effect
            branch.ticket = None
            branch.effect = None
            assert effect is not None
            try:
                ticket.result()
            except FaultInjectedError as error:
                # Injected drop: never charged, restart with backoff.
                self._note_branch_error(state, "fault", error)
                continue
            except HostFailedError as error:
                # Dropped delivery: never charged, so nothing to bill.
                self._note_branch_error(state, "fail", error)
                continue
            is_visit = effect.op == OP_VISIT
            target = effect.address.host if is_visit else effect.host
            cost = 1
            topology = self.network.topology
            if topology is not None:
                cost = topology.link_cost(branch.current, target)
                state.outcome.latency += cost
            branch.current = target
            state.outcome.messages += 1
            try:
                value = self.network.load(effect.address) if is_visit else None
            except HostFailedError as error:
                self._note_branch_error(state, "fail", error)
                continue
            except _RETRYABLE as error:
                self._note_branch_error(state, "retry", error)
                continue
            branch.resolution = Resolution(value, target, True, cost=cost)
        # 2. run each idle sub-walk locally until its next cross-host
        #    effect (skipped while an abort is pending).
        if state.branch_error is None:
            for branch in branches:
                if branch.done or branch.ticket is not None:
                    continue
                try:
                    self._run_branch(state, branch)
                except HostFailedError as error:
                    self._note_branch_error(state, "fail", error)
                    break
                except _RETRYABLE as error:
                    self._note_branch_error(state, "retry", error)
                    break
                except ReproError as error:
                    self._note_branch_error(state, "fail", error)
                    break
        # 3. abort (after draining) or join.
        if state.branch_error is not None:
            if any(branch.ticket is not None for branch in branches):
                return True  # siblings' posted messages deliver (and bill) first
            kind, error = state.branch_error
            state.branch_error = None
            if kind == "retry":
                return self._retry_or_fail(state, error)
            if kind == "fault":
                return self._fault_retry(state, error)
            self._fail(state, error)
            return False
        if all(branch.done for branch in branches):
            results = tuple(branch.result for branch in branches)
            state.branches = None
            return self._advance(
                state, Resolution(value=results, host=state.current, charged=False)
            )
        return True

    def _run_branch(self, state: _InFlight, branch: _Branch) -> None:
        """Run one sub-walk's generator locally until it posts or finishes.

        Errors raised by the generator (or by a local dereference)
        propagate to :meth:`_step_branches`, which maps them onto the
        operation-level failure / retry paths.
        """
        resolution = branch.resolution
        branch.resolution = None
        gen = branch.gen
        load = self.network.load
        while True:
            try:
                effect = gen.send(resolution) if resolution is not None else next(gen)
            except StopIteration as stop:
                branch.done = True
                branch.result = stop.value
                return
            resolution = None
            op = effect.op
            if op == OP_FORK:
                raise TypeError("nested Fork effects are not supported")
            is_visit = op == OP_VISIT
            target = effect.address.host if is_visit else effect.host
            if target == branch.current:
                # Local effect: free and instantaneous.
                value = load(effect.address) if is_visit else None
                resolution = Resolution(value, target, False)
                continue
            branch.ticket = self.network.post(branch.current, target, kind=state.kind)
            branch.effect = effect
            if state.start_round is None:
                state.start_round = self.network.rounds_completed
            return

    def _post(
        self,
        state: _InFlight,
        effect: Visit | HopTo,
        target: HostId,
        warm_cache_key: tuple[HostId, Address] | None = None,
    ) -> None:
        state.ticket = self.network.post(state.current, target, kind=state.kind)
        state.effect = effect
        state.warm_key = warm_cache_key
        if state.start_round is None:
            state.start_round = self.network.rounds_completed

    # ------------------------------------------------------------------ #
    # completion paths
    # ------------------------------------------------------------------ #
    def _rounds_spanned(self, state: _InFlight) -> int:
        if state.start_round is None:
            return 0
        return max(1, self.network.rounds_completed - state.start_round)

    def _finish(self, state: _InFlight, value: Any) -> None:
        state.outcome.value = value
        state.outcome.rounds = self._rounds_spanned(state)
        state.done = True
        if state.outcome.operation.kind in ("insert", "delete"):
            # Structure changed: every memoized top-level copy is suspect.
            self._cache.clear()

    def _fail(self, state: _InFlight, error: Exception) -> None:
        state.outcome.error = error
        state.outcome.rounds = self._rounds_spanned(state)
        state.done = True
        if state.outcome.operation.kind in ("insert", "delete"):
            self._cache.clear()

    def _retry_or_fail(self, state: _InFlight, error: Exception) -> bool:
        if state.outcome.retries >= self.max_retries:
            self._fail(state, error)
            return False
        state.outcome.retries += 1
        state.started = False
        state.gen = None
        state.ticket = None
        state.effect = None
        state.branches = None
        state.branch_error = None
        state.current = state.outcome.origin_host
        state.first_remote_done = False
        state.warm_key = None
        # A conflict means some record the operation relied on changed
        # underneath it — possibly one that reached it through the route
        # cache (e.g. an update made through the immediate API, which the
        # executor cannot observe).  Drop every memoized copy so the retry
        # re-fetches fresh state instead of looping on the same stale record.
        self._cache.clear()
        return self._advance(state, None)

    # ------------------------------------------------------------------ #
    # fault resilience (repro.net.faults)
    # ------------------------------------------------------------------ #
    def _over_budget(self, state: _InFlight) -> bool:
        """Whether the operation has outlived its per-operation round budget."""
        return (
            self.round_budget is not None
            and state.start_round is not None
            and self.network.rounds_completed - state.start_round > self.round_budget
        )

    def _time_out(self, state: _InFlight) -> None:
        """Abandon an over-budget operation with the ``timed_out`` marker.

        Any still-in-flight (or delay-parked) deliveries stay charged to
        the network — the messages were genuinely sent — but nothing more
        is billed to the operation's outcome: a timeout is a statement
        that we stopped accounting for it, not that the traffic vanished.
        """
        error = OperationTimedOutError(
            f"operation exceeded its round budget of {self.round_budget} round(s)"
        )
        state.outcome.terminal = "timed_out"
        self._fail(state, error)

    def _fault_retry(self, state: _InFlight, error: Exception) -> bool:
        """Restart after an injected drop, idling ``retries`` rounds first.

        The linear backoff is deterministic by construction: the k-th
        retry resumes exactly k completed rounds after the drop was
        observed, so two runs with the same seed and plan replay the
        same resume schedule.  Exhausted retries mark the outcome
        ``gave_up`` (distinct from a plain failure: the operation was
        healthy, the network was not).
        """
        if state.outcome.retries >= self.max_retries:
            state.outcome.terminal = "gave_up"
            self._fail(state, error)
            return False
        state.outcome.retries += 1
        state.started = False
        state.gen = None
        state.ticket = None
        state.effect = None
        state.branches = None
        state.branch_error = None
        state.current = state.outcome.origin_host
        state.first_remote_done = False
        state.warm_key = None
        self._cache.clear()
        state.resume_round = self.network.rounds_completed + state.outcome.retries
        return True
