"""Sharded multi-worker batch execution (opt-in via ``Cluster(workers=N)``).

:class:`ShardedExecutor` partitions a batch's *operation origins* across
``multiprocessing`` fork workers.  Each worker inherits a copy-on-write
snapshot of the whole deployment (structure + network) and runs its
shard of the batch through an ordinary serial
:class:`~repro.engine.executor.BatchExecutor` round loop on the ledger
substrate — read-only queries never mutate the parent process.  What a
worker sends back is small: its per-operation outcomes plus, for every
shard-local round, the ordered ``(global_op_index, src, dst, kind)``
delivery sequence of that round.

**Determinism by replay.**  The parent merges the workers' round
sequences round-by-round in global-operation-index order (shards are
read in fixed shard order; the sort is stable, so an operation's forked
sub-walk posts keep their relative order) and *replays* the merged
sequence through its own network: one ``post`` per recorded delivery,
one ``run_round`` per merged round.  Because a serial
:class:`BatchExecutor` steps operations in exactly that order — and
because read-only operations make progress independently of one another
(no retries, no mutation, one host crossing per round each) — the replay
reproduces the serial run's accounting *exactly*: ``MessageLog.tally``
counters, per-round :class:`~repro.net.network.RoundReport` maxima
(including the busiest-host tie-break, which follows per-round dict
insertion order), whole-session congestion aggregates, and every
enclosing ``Network.measure`` window.  ``tests/test_perf_equivalence.py``
pins serial-vs-sharded equality of all of it.

**What stays serial.**  Sharding is only sound when workers cannot
observe each other: mutating kinds (``insert`` / ``delete``), batches on
a network with failed hosts (delivery errors must flow through real
tickets), an installed fault plan or round budget (fault decisions come
from one seeded RNG stream, which only a single serial round loop can
replay byte-identically), the tracing substrate (message objects carry
identity), the
per-origin route cache (its warmth spans batches, but workers die with
the batch), and platforms without the ``fork`` start method all fall
back to the serial executor — same results, one process.  The registry's
``StructureSpec.shardable`` capability flag lets a structure family opt
out wholesale (e.g. a future family whose queries mutate shared state).
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable

from repro.engine.executor import BatchExecutor, BatchResult, Operation, OpOutcome, _InFlight
from repro.engine.protocol import DistributedStructure
from repro.errors import QueryError
from repro.net.congestion import round_congestion_report
from repro.net.network import RoundReport

#: Operation kinds that are safe to run on a read-mostly snapshot.
SHARDABLE_KINDS = frozenset({"search", "range"})


def fork_available() -> bool:
    """Whether this platform can start ``fork`` workers (POSIX only)."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


class _ShardFallback(Exception):
    """Raised inside a worker when a batch turns out not to be shardable."""


def _worker_main(
    conn: Any, executor_args: dict[str, Any], shard: list[tuple[int, OpOutcome]]
) -> None:
    """Run one shard of read-only operations; ship outcomes + round sequences.

    Runs in a forked child: ``executor_args['structure']`` is the
    copy-on-write snapshot inherited from the parent, so nothing here can
    leak back.  The child exits with code 0 even on failure — the error
    (or fallback request) travels through the pipe.
    """
    try:
        result = _run_shard(executor_args, shard)
        conn.send(("ok", result))
    except _ShardFallback as fallback:
        conn.send(("fallback", str(fallback)))
    except BaseException as error:  # pragma: no cover - defensive
        conn.send(("fallback", f"worker crashed: {error!r}"))
    finally:
        conn.close()


def _run_shard(
    executor_args: dict[str, Any], shard: list[tuple[int, OpOutcome]]
) -> tuple[
    list[tuple[int, Any, Exception | None, int, int, int, int, int]],
    list[list[tuple[int, Any, Any, Any]]],
]:
    """The worker's round loop: a serial ``BatchExecutor`` plus post capture.

    Mirrors :meth:`BatchExecutor.run`, but drives the rounds itself so
    each delivery can be attributed to the operation (by global batch
    index) whose stepper posted it — the raw material of the parent's
    deterministic replay.
    """
    executor = BatchExecutor(
        executor_args["structure"],
        route_cache=False,
        max_retries=executor_args["max_retries"],
        max_rounds=executor_args["max_rounds"],
    )
    network = executor.network
    states = [(index, _InFlight(outcome)) for index, outcome in shard]
    round_seqs: list[list[tuple[int, Any, Any, Any]]] = []
    with network.rounds():
        active: list[tuple[int, Callable[[], bool]]] = [
            (index, executor._stepper(state)) for index, state in states
        ]
        passes = 0
        while active:
            if passes >= executor.max_rounds:
                raise RuntimeError(
                    f"round-based execution exceeded {executor.max_rounds} rounds"
                )
            passes += 1
            seq: list[tuple[int, Any, Any, Any]] = []
            next_active: list[tuple[int, Callable[[], bool]]] = []
            pending_fast = network._pending_fast
            for index, step in active:
                before = len(pending_fast)
                if step():
                    next_active.append((index, step))
                for src, dst, kind in pending_fast[before:]:
                    seq.append((index, src, dst, kind))
            if network._pending:
                # A ticketed (slow-path) post implies failed hosts or a
                # payload — outside the shardable envelope.
                raise _ShardFallback("ticketed delivery inside a sharded batch")
            if network._round_delivered:
                # A direct send() mid-round cannot be attributed to an
                # operation, so its replay position would be a guess.
                raise _ShardFallback("direct send() inside a sharded batch")
            if pending_fast:
                network.run_round()
                round_seqs.append(seq)
            active = next_active
    outcomes = [
        (
            index,
            state.outcome.value,
            state.outcome.error,
            state.outcome.messages,
            state.outcome.rounds,
            state.outcome.retries,
            state.outcome.cache_hits,
            state.outcome.latency,
        )
        for index, state in states
    ]
    return outcomes, round_seqs


class ShardedExecutor:
    """Multi-process batch executor with serial-identical accounting.

    Drop-in for :class:`BatchExecutor` on the batch surface
    (:meth:`run`); construction parameters mirror the serial executor
    plus ``workers``.  Batches outside the shardable envelope (see the
    module docstring) transparently run on the embedded serial executor.
    """

    def __init__(
        self,
        structure: DistributedStructure,
        workers: int = 2,
        route_cache: bool = False,
        max_retries: int = 5,
        max_rounds: int = 1_000_000,
        on_round: Callable[[RoundReport], None] | None = None,
        on_commit: Callable[[tuple[Operation, ...], BatchResult], None] | None = None,
        round_budget: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.structure = structure
        self.network = structure.network
        self.workers = workers
        self.route_cache = route_cache
        self.max_retries = max_retries
        self.max_rounds = max_rounds
        self.on_round = on_round
        self.on_commit = on_commit
        self.round_budget = round_budget
        # The embedded serial executor never journals: the sharded
        # executor fires the commit hook itself after either path, so
        # fallback batches are not logged twice.
        self._serial = BatchExecutor(
            structure,
            route_cache=route_cache,
            max_retries=max_retries,
            max_rounds=max_rounds,
            on_round=on_round,
            round_budget=round_budget,
        )
        #: Why the most recent batch ran serially (``None`` = it sharded).
        self.last_fallback_reason: str | None = None

    # ------------------------------------------------------------------ #
    # shardability gate
    # ------------------------------------------------------------------ #
    def _fallback_reason(self, operations: list[Operation] | tuple[Operation, ...]) -> str | None:
        if self.workers < 2:
            return "workers < 2"
        if not operations:
            return "empty batch"
        if self.on_round is not None:
            return "on_round hook installed"
        if self.route_cache:
            return "route cache enabled (warmth spans batches)"
        if self.network.trace:
            return "tracing substrate (message identity)"
        if self.network.faults is not None:
            # Workers would each consume the plan's RNG independently,
            # diverging from the serial decision stream; the serial
            # executor replays every fault decision byte-identically.
            return "fault plan installed (deterministic serial replay)"
        if self.round_budget is not None:
            # A timeout abandons in-flight deliveries, which the replay
            # merge cannot attribute; run the budgeted batch serially.
            return "round budget installed"
        if self.network.failed_hosts:
            return "failed hosts present"
        if not fork_available():
            return "fork start method unavailable"
        for operation in operations:
            if operation.kind not in SHARDABLE_KINDS:
                return f"mutating operation kind {operation.kind!r}"
        return None

    # ------------------------------------------------------------------ #
    # batch driver
    # ------------------------------------------------------------------ #
    def run(self, operations: list[Operation] | tuple[Operation, ...]) -> BatchResult:
        """Execute ``operations``; shard across workers when sound."""
        reason = self._fallback_reason(operations)
        if reason is not None:
            self.last_fallback_reason = reason
            result = self._serial.run(operations)
        else:
            sharded = self._run_sharded(operations)
            if sharded is None:
                result = self._serial.run(operations)
            else:
                self.last_fallback_reason = None
                result = sharded
        # Journal in the parent only, after the replay-merge has folded
        # the workers' accounting back in — the log must describe the
        # committed parent state, not a worker snapshot.
        if self.on_commit is not None:
            self.on_commit(tuple(operations), result)
        return result

    def _run_sharded(
        self, operations: list[Operation] | tuple[Operation, ...]
    ) -> BatchResult | None:
        # Origin assignment must match the serial executor byte for byte:
        # alive origins only, round-robin by batch index.
        alive = set(self.network.alive_host_ids())
        origins = [
            host for host in self.structure.origin_hosts() if host in alive
        ]
        if not origins:
            raise QueryError(
                "structure has no alive origin hosts to run a batch from"
            )
        outcomes: list[OpOutcome] = []
        for index, operation in enumerate(operations):
            origin = (
                operation.origin_host
                if operation.origin_host is not None
                else origins[index % len(origins)]
            )
            outcomes.append(OpOutcome(operation=operation, origin_host=origin))

        # Partition by origin host so every origin's operations land in one
        # worker (cache/ordering locality), round-robin over sorted hosts.
        shard_count = min(self.workers, len({o.origin_host for o in outcomes}))
        if shard_count < 2:
            self.last_fallback_reason = "single origin host"
            return None
        hosts = sorted({outcome.origin_host for outcome in outcomes})
        shard_of_host = {host: i % shard_count for i, host in enumerate(hosts)}
        shards: list[list[tuple[int, OpOutcome]]] = [[] for _ in range(shard_count)]
        for index, outcome in enumerate(outcomes):
            shards[shard_of_host[outcome.origin_host]].append((index, outcome))

        executor_args = {
            "structure": self.structure,
            "max_retries": self.max_retries,
            "max_rounds": self.max_rounds,
        }
        ctx = multiprocessing.get_context("fork")
        workers: list[tuple[Any, Any]] = []
        try:
            for shard in shards:
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_main, args=(child_conn, executor_args, shard)
                )
                process.start()
                child_conn.close()
                workers.append((process, parent_conn))
            shard_results = []
            for process, conn in workers:
                try:
                    status, payload = conn.recv()
                except EOFError:
                    status, payload = "fallback", "worker pipe closed"
                if status != "ok":
                    self.last_fallback_reason = payload
                    return None
                shard_results.append(payload)
        finally:
            for process, conn in workers:
                conn.close()
                process.join()

        # Fold per-operation results back in batch order.
        cache_hits = 0
        for shard_outcomes, _seqs in shard_results:
            for entry in shard_outcomes:
                index, value, error, messages, rounds, retries, hits, latency = entry
                outcome = outcomes[index]
                outcome.value = value
                outcome.error = error
                outcome.messages = messages
                outcome.rounds = rounds
                outcome.retries = retries
                outcome.cache_hits = hits
                outcome.latency = latency
                cache_hits += hits

        # Deterministic replay: merge each round's deliveries across shards
        # in global-operation-index order (stable, so an operation's forked
        # sub-walk posts keep their order), then drive the parent network
        # through the exact post/run_round sequence a serial batch issues.
        all_seqs = [seqs for _outcomes, seqs in shard_results]
        total_rounds = max((len(seqs) for seqs in all_seqs), default=0)
        network = self.network
        with network.rounds():
            with network.measure() as stats:
                post = network.post
                for round_index in range(total_rounds):
                    merged: list[tuple[int, Any, Any, Any]] = []
                    for seqs in all_seqs:
                        if round_index < len(seqs):
                            merged.extend(seqs[round_index])
                    merged.sort(key=lambda entry: entry[0])
                    for _index, src, dst, kind in merged:
                        post(src, dst, kind=kind)
                    network.run_round()
            rounds = network.rounds_completed
            round_reports = network.round_reports
        # The replay re-delivers every (src, dst) pair on the parent
        # network, so its topology re-prices each link: stats.latency and
        # the weighted per-link / per-cluster aggregates come out exactly
        # as a serial run of the same round sequence would produce them.
        return BatchResult(
            outcomes=outcomes,
            rounds=rounds,
            messages=stats.messages,
            round_reports=round_reports,
            cache_hits=cache_hits,
            cache_misses=0,
            congestion_summary=round_congestion_report(network),
            latency=stats.latency,
        )
