"""The unified batched execution engine.

Three pieces turn the one-at-a-time simulator into a concurrent one:

* :mod:`repro.engine.steps` — operations as *resumable step generators*
  that yield :class:`Visit` / :class:`HopTo` effects per host crossing;
  :func:`run_immediate` drives one synchronously (the classic path).
* :mod:`repro.engine.protocol` — the :class:`DistributedStructure`
  protocol every structure (skip-webs, their four instantiations, the
  Table 1 baselines) implements so a single executor can run them all.
* :mod:`repro.engine.executor` — :class:`BatchExecutor`, which interleaves
  a batch of mixed operations round by round over the network's queued
  delivery mode, measuring throughput and per-host per-round congestion
  directly, with an optional per-origin route cache as a fast path.

A fourth piece, :mod:`repro.engine.repair`, drives the churn hooks of the
protocol (``migrate_host`` / ``repair``) through the same round-based
accounting, so live join/leave/crash repair traffic is measured exactly
like query traffic; see :mod:`repro.net.churn` for the controller.
"""

from repro.engine.steps import (
    Fork,
    HopTo,
    Resolution,
    Step,
    StepCursor,
    StepGenerator,
    Visit,
    local_steps,
    run_immediate,
)
from repro.engine.protocol import DistributedStructure
from repro.engine.executor import BatchExecutor, BatchResult, Operation, OpOutcome
from repro.engine.repair import MigrationSummary, RepairEngine, RepairResult
from repro.engine.sharded import ShardedExecutor, fork_available

__all__ = [
    "MigrationSummary",
    "RepairEngine",
    "RepairResult",
    "Fork",
    "HopTo",
    "Resolution",
    "Step",
    "StepCursor",
    "StepGenerator",
    "Visit",
    "local_steps",
    "run_immediate",
    "DistributedStructure",
    "BatchExecutor",
    "BatchResult",
    "ShardedExecutor",
    "fork_available",
    "Operation",
    "OpOutcome",
]
