"""Self-repair driver: migration and repair billed round by round.

Churn (hosts joining, leaving gracefully, or crashing) is repaired by the
structures themselves through the two protocol hooks ``migrate_host`` and
``repair`` (see :mod:`repro.engine.protocol`).  Both hooks are *resumable
step generators* exactly like queries and updates: they yield
:class:`~repro.engine.steps.HopTo` / :class:`~repro.engine.steps.Visit`
effects for every record hand-off and every pointer rewrite, so repair
traffic flows through the same accounting as everything else.

:class:`RepairEngine` is the driver.  It advances a repair generator one
cross-host effect per network round using the queued delivery mode of
:meth:`repro.net.network.Network.rounds`, which makes repair cost
three-dimensional — messages, rounds, and per-host per-round congestion —
instead of a single message count.  Repair messages are tagged
:attr:`~repro.net.message.MessageKind.CONTROL` so benchmarks can separate
maintenance traffic from query/update traffic.

Convention: a repair generator *announces its coordinator host* with an
initial self-hop (``yield from cursor.hop_to(origin)``).  The driver
resolves the first effect free of charge, which anchors the generator's
position without the driver having to know the origin up front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engine.steps import HopTo, Resolution, StepGenerator, Visit
from repro.errors import ChurnError
from repro.net.message import MessageKind
from repro.net.naming import HostId
from repro.net.network import RoundReport


@dataclass(frozen=True)
class MigrationSummary:
    """What one ``migrate_host`` / ``repair`` generator accomplished.

    This is the generator's return value; the driving
    :class:`RepairEngine` wraps it with the measured traffic numbers.
    """

    kind: str
    """``"migrate"`` or ``"repair"``."""

    hosts: tuple[HostId, ...]
    """The evacuated (migrate) or crashed-and-repaired (repair) hosts."""

    records_moved: int
    """Records handed off or reconstructed on a new home host."""

    pointers_rewired: int
    """Records elsewhere whose stored pointers had to be updated."""

    hosts_touched: int
    """Distinct hosts whose stored state changed."""


@dataclass
class RepairResult:
    """One churn-repair operation with its measured traffic.

    ``round_reports`` is subject to the network's
    ``round_report_retention``; ``max_round_load`` carries the
    whole-session maximum regardless of how many reports were retained.
    """

    summary: MigrationSummary
    messages: int
    rounds: int
    round_reports: list[RoundReport] = field(default_factory=list)
    max_round_load: int | None = None

    @property
    def max_round_congestion(self) -> int:
        """Worst per-host per-round delivery count during the repair."""
        if self.max_round_load is not None:
            return self.max_round_load
        return max((report.max_host_load for report in self.round_reports), default=0)


class RepairEngine:
    """Drives a structure's churn hooks through round-based accounting.

    Parameters
    ----------
    structure:
        Any :class:`~repro.engine.protocol.DistributedStructure`; only the
        ``network``, ``migrate_host`` and ``repair`` members are used, so
        the engine can be handed to :class:`repro.net.churn.ChurnController`
        (which is deliberately ignorant of the engine layer).
    max_rounds:
        Safety bound on rounds per repair operation.
    """

    def __init__(self, structure: Any, max_rounds: int = 1_000_000) -> None:
        self.structure = structure
        self.network = structure.network
        self.max_rounds = max_rounds

    def migrate(
        self,
        host_id: HostId,
        targets: Sequence[HostId] | None = None,
        fraction: float = 1.0,
    ) -> RepairResult:
        """Hand records off ``host_id`` (graceful leave or join rebalance)."""
        return self._drive(
            self.structure.migrate_host(host_id, targets=targets, fraction=fraction)
        )

    def repair(self, host_ids: Sequence[HostId]) -> RepairResult:
        """Re-home the records orphaned by crashed ``host_ids``."""
        return self._drive(self.structure.repair(list(host_ids)))

    # ------------------------------------------------------------------ #
    # the round-based pump
    # ------------------------------------------------------------------ #
    def _drive(self, gen: StepGenerator) -> RepairResult:
        """Advance ``gen`` one cross-host effect per round until done."""
        network = self.network
        if network.in_round_mode:
            raise ChurnError(
                "repair cannot run inside an open round session; "
                "finish the batch first"
            )
        with network.rounds():
            with network.measure() as stats:
                summary = self._pump(gen)
            rounds = network.rounds_completed
            reports = network.round_reports
        _rounds, _delivered, per_round_max, _host, _round = network.round_congestion_summary()
        return RepairResult(
            summary=summary,
            messages=stats.messages,
            rounds=rounds,
            round_reports=reports,
            max_round_load=max(per_round_max, default=0),
        )

    def _pump(self, gen: StepGenerator) -> MigrationSummary:
        network = self.network
        current: HostId | None = None
        steps = 0
        try:
            effect = next(gen)
            while True:
                if steps >= self.max_rounds:
                    raise ChurnError(f"repair exceeded {self.max_rounds} rounds")
                steps += 1
                if isinstance(effect, Visit):
                    target = effect.address.host
                elif isinstance(effect, HopTo):
                    target = effect.host
                else:  # pragma: no cover - defensive
                    raise TypeError(f"repair generator yielded a non-effect: {effect!r}")
                charged = current is not None and target != current
                if charged:
                    ticket = network.post(current, target, kind=MessageKind.CONTROL)
                    network.run_round()
                    ticket.result()  # re-raise HostFailedError, if any
                current = target
                value = network.load(effect.address) if isinstance(effect, Visit) else None
                effect = gen.send(Resolution(value=value, host=current, charged=charged))
        except StopIteration as stop:
            return stop.value
