"""Resumable step generators: the execution currency of the engine.

Every distributed operation in this package — a query descent, an insert,
a Chord lookup — is expressed *once*, as a Python generator that yields
:class:`Visit` and :class:`HopTo` effects whenever it wants to cross
hosts and receives a :class:`Resolution` telling it where it now runs and
whether the crossing cost a message.  The same generator can then be
driven two ways:

* :func:`run_immediate` resolves every effect synchronously against the
  network, reproducing exactly the accounting of
  :class:`repro.net.rpc.Traversal` — this is the default single-operation
  path used by ``structure.query(...)`` and friends;
* :class:`repro.engine.executor.BatchExecutor` interleaves many
  generators round by round over the network's queued delivery mode, so
  per-host per-round congestion is measured directly.

Generators do not talk to the network themselves for remote state; they
use a :class:`StepCursor` (``yield from cursor.visit(address)``) which
forwards the effect to whichever driver is in charge.  Local work between
effects is free, matching the paper's cost model.

The effect classes are deliberately *not* dataclasses: they are plain
``__slots__`` classes carrying an integer ``op`` class attribute
(:data:`OP_VISIT` / :data:`OP_HOP` / :data:`OP_FORK`), so drivers
dispatch on one integer compare instead of an ``isinstance`` ladder and
construction skips the dataclass ``__init__`` machinery.  This is the
ledger hot path: every message the benchmarks count flows through
:func:`_drive` or the executor's mirror of it.
"""

from __future__ import annotations

from typing import Any, Generator, Union

from repro.net.message import MessageKind
from repro.net.naming import Address, HostId

#: Integer opcodes for table-driven effect dispatch.  Stable public
#: constants: drivers compare ``effect.op`` against these instead of
#: running ``isinstance`` chains.
OP_VISIT = 0
OP_HOP = 1
OP_FORK = 2


class Visit:
    """Effect: dereference ``address``, moving the operation to its host.

    Resolves to the stored item.  Costs one message when the address lives
    on a different host than the operation's current position (unless a
    driver-level cache serves a local copy, in which case the operation
    stays put and pays nothing).
    """

    __slots__ = ("address",)
    op = OP_VISIT

    def __init__(self, address: Address) -> None:
        self.address = address

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Visit(address={self.address!r})"


class HopTo:
    """Effect: move the operation to ``host`` explicitly (one message if remote)."""

    __slots__ = ("host",)
    op = OP_HOP

    def __init__(self, host: HostId) -> None:
        self.host = host

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HopTo(host={self.host!r})"


class Fork:
    """Effect: split the operation into parallel sub-walks.

    ``branches`` are step generators; each starts at the operation's
    current host and is driven to completion by the driver.  Forking
    itself is free — only the host crossings the branches perform are
    charged, each billed to the forking operation.  Under
    :func:`run_immediate` the branches run back to back; under the
    :class:`~repro.engine.executor.BatchExecutor` each branch advances by
    at most one host crossing per round, so a fan-out of ``b`` lets one
    logical operation inject up to ``b`` messages into a round — exactly
    the concurrency the output-sensitive range queries rely on.

    The effect resolves to the tuple of branch return values (in branch
    order); the forking operation stays at the host it forked from.
    Branches are flat walks: a branch yielding a nested ``Fork`` is a
    programming error and raises ``TypeError`` under both drivers.
    """

    __slots__ = ("branches",)
    op = OP_FORK

    def __init__(self, branches: "tuple[StepGenerator, ...]") -> None:
        self.branches = branches

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fork(branches={len(self.branches)})"


#: Effects a step generator may yield.
Step = Union[Visit, HopTo, Fork]


class Resolution:
    """What the driver hands back into the generator for one effect.

    ``host`` is where the operation executes after the effect (a cache hit
    leaves it in place), ``charged`` says whether a message was spent, and
    ``value`` is the dereferenced item for :class:`Visit` effects.
    ``cost`` is the link cost of the charged crossing — 1 for a charged
    hop unless the driver's network carries an explicit
    :class:`~repro.net.topology.Topology` pricing the link differently,
    0 when nothing was charged.
    """

    __slots__ = ("value", "host", "charged", "cost")

    def __init__(
        self, value: Any, host: HostId, charged: bool, cost: int | None = None
    ) -> None:
        self.value = value
        self.host = host
        self.charged = charged
        self.cost = (1 if charged else 0) if cost is None else cost

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Resolution(value={self.value!r}, host={self.host!r}, "
            f"charged={self.charged!r}, cost={self.cost!r})"
        )


#: A resumable distributed operation: yields effects, receives resolutions,
#: and returns its final result via ``StopIteration.value``.
StepGenerator = Generator[Step, Resolution, Any]


class StepCursor:
    """Generator-side bookkeeping of a step-driven traversal.

    Mirrors :class:`repro.net.rpc.Traversal` (current host, hop count,
    visited path) but delegates the actual message charging to the driver
    through yielded effects, so the same routing code is honest under both
    immediate and round-based execution.
    """

    __slots__ = ("_current", "_hops", "_latency", "_path")

    def __init__(self, origin: HostId) -> None:
        self._current: HostId = origin
        self._hops = 0
        self._latency = 0
        self._path: list[HostId] = [origin]

    @property
    def current_host(self) -> HostId:
        """The host currently executing the operation."""
        return self._current

    @property
    def hops(self) -> int:
        """Number of messages charged so far to this operation."""
        return self._hops

    @property
    def latency(self) -> int:
        """Sum of link costs of the charged crossings (equals
        :attr:`hops` under the flat cost model)."""
        return self._latency

    @property
    def path(self) -> list[HostId]:
        """Sequence of hosts visited (consecutive duplicates collapsed).

        Returns a fresh copy on every access; hot callers should use
        :meth:`path_tuple` (one immutable snapshot) or
        :meth:`distinct_hosts` / :attr:`path_length` (no copy at all).
        """
        return list(self._path)

    def path_tuple(self) -> tuple[HostId, ...]:
        """The visited path as one immutable snapshot (single copy)."""
        return tuple(self._path)

    def distinct_hosts(self) -> int:
        """Number of distinct hosts visited, without copying the path."""
        return len(set(self._path))

    @property
    def path_length(self) -> int:
        """Length of the visited path, without copying it."""
        return len(self._path)

    def _absorb(self, resolution: Resolution) -> None:
        if resolution.charged:
            self._hops += 1
            self._latency += resolution.cost
        host = resolution.host
        if host != self._current:
            self._current = host
            self._path.append(host)

    def visit(self, address: Address) -> StepGenerator:
        """Dereference ``address`` through the driver; use as ``yield from``."""
        resolution = yield Visit(address)
        self._absorb(resolution)
        return resolution.value

    def hop_to(self, host: HostId) -> StepGenerator:
        """Move to ``host`` through the driver; use as ``yield from``."""
        resolution = yield HopTo(host)
        self._absorb(resolution)
        return None

    def fork(self, branches: "tuple[StepGenerator, ...] | list[StepGenerator]") -> StepGenerator:
        """Split into parallel sub-walks through the driver; use as ``yield from``.

        Returns the tuple of branch return values.  The fork itself is
        free and leaves the cursor at its current host — each branch
        tracks its own crossings (typically through a private
        :class:`StepCursor` seeded at ``self.current_host``).
        """
        resolution = yield Fork(tuple(branches))
        self._absorb(resolution)
        return resolution.value

    def hand_off(self, destination: HostId, origin: HostId) -> StepGenerator:
        """One record hand-off from ``origin``'s data to ``destination``.

        The billing idiom shared by every churn migration/repair
        generator: a cross-host hand-off costs one message, and when the
        cursor already sits at ``destination`` (consecutive hand-offs to
        the same host) a request leg back to ``origin`` is charged first —
        the pull half of the transfer — so repeated deliveries are never
        accidentally free.  The one genuinely free case is a hand-off
        that both originates and lands on the cursor's current host
        (``origin == destination == current``, e.g. a repair coordinator
        reconstructing a record for itself): that is local work, which
        the paper's cost model does not charge.
        """
        if self._current == destination:
            yield from self.hop_to(origin)
        yield from self.hop_to(destination)


def local_steps(value: Any) -> StepGenerator:
    """Wrap an already-local value as a zero-effect step generator.

    Structures whose ``seed_roots`` state lives on the origin host return
    it through this helper, keeping the protocol uniformly
    generator-based without each implementation repeating the
    unreachable-``yield`` idiom.
    """
    return value
    yield  # pragma: no cover - intentionally unreachable: makes this a generator


def run_immediate(
    network,
    gen: StepGenerator,
    origin: HostId,
    kind: MessageKind = MessageKind.QUERY,
) -> Any:
    """Drive a step generator to completion synchronously.

    Every cross-host effect is charged one message on the spot, exactly as
    :meth:`repro.net.rpc.Traversal.visit` would charge it; this keeps the
    single-operation numbers identical to the pre-engine code paths.  A
    :class:`Fork` effect drives each branch to completion (back to back,
    every branch starting at the fork host) and resolves to the tuple of
    branch results — the same billing the round-based executor applies,
    so immediate and batched totals match.
    """
    return _drive(network, gen, origin, kind, allow_fork=True)


def _drive(
    network,
    gen: StepGenerator,
    current: HostId,
    kind: MessageKind,
    allow_fork: bool,
) -> Any:
    # Flattened table-driven loop: one integer compare per effect, network
    # entry points bound once, and consecutive same-host resolutions never
    # re-enter the network layer (a local HopTo touches nothing at all; a
    # local Visit pays only the dereference).
    send = network.send
    load = network.load
    advance = gen.send
    # Bound once: None keeps the flat fast path (Resolution defaults its
    # charged cost to 1); an explicit topology prices each crossing.
    topology = network.topology
    try:
        effect = next(gen)
        while True:
            op = effect.op
            if op == OP_VISIT:
                target = effect.address.host
                if target != current:
                    send(current, target, kind=kind)
                    if topology is None:
                        resolution = Resolution(load(effect.address), target, True)
                    else:
                        resolution = Resolution(
                            load(effect.address),
                            target,
                            True,
                            topology.link_cost(current, target),
                        )
                    current = target
                    effect = advance(resolution)
                else:
                    effect = advance(Resolution(load(effect.address), current, False))
            elif op == OP_HOP:
                target = effect.host
                if target != current:
                    send(current, target, kind=kind)
                    if topology is None:
                        resolution = Resolution(None, target, True)
                    else:
                        resolution = Resolution(
                            None, target, True, topology.link_cost(current, target)
                        )
                    current = target
                    effect = advance(resolution)
                else:
                    effect = advance(Resolution(None, current, False))
            elif op == OP_FORK:
                if not allow_fork:
                    raise TypeError("nested Fork effects are not supported")
                value = tuple(
                    _drive(network, branch, current, kind, allow_fork=False)
                    for branch in effect.branches
                )
                effect = advance(Resolution(value, current, False))
            else:  # pragma: no cover - defensive
                raise TypeError(f"step generator yielded a non-effect: {effect!r}")
    except StopIteration as stop:
        return stop.value
