"""Pluggable durability backends: where the log and snapshots live.

Two implementations of one small :class:`StorageBackend` contract:

* :class:`JsonlStorage` — a directory holding an append-only
  ``log.jsonl`` (one checksummed JSON line per committed event) plus
  ``snapshot-<upto>.json`` files written atomically via rename.  The
  log is human-greppable and its failure modes are the classic
  append-only ones (a torn final line after a crash).
* :class:`SqliteStorage` — a single ``.sqlite`` file with ``log`` /
  ``snapshots`` / ``meta`` tables; appends are transactions, so a crash
  leaves a committed prefix with no torn line at all.

**Crash consistency.**  Records are appended only *after* the event they
describe has committed in memory, and every append is flushed to the OS
before it returns — a SIGKILL can therefore lose at most the event that
was mid-append (the torn tail), never reorder or interleave.  ``fsync``
is deliberately *not* issued per record (that would put a disk round
trip on every batch); :meth:`StorageBackend.sync` flushes everything to
stable storage and is called by ``Cluster.save()`` and ``close()``.
Pass ``sync=True`` to a backend to force per-append fsync when the
threat model includes machine (not just process) crashes.

Reads verify everything: :meth:`StorageBackend.records` checks every
record's version, position and checksum and raises a typed
:class:`~repro.errors.StorageError` — with ``torn_tail=True`` and the
clean-prefix length when only the final record is damaged — rather than
ever returning a silently shortened history.
"""

from __future__ import annotations

import json
import os
import sqlite3
import zlib
from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.errors import StorageError
from repro.storage.record import (
    FORMAT_VERSION,
    LogRecord,
    decode_record,
    encode_record,
)

#: Path suffixes routed to :class:`SqliteStorage` by :func:`open_storage`.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def _decode_all(entries: list[Callable[[], Any]], where: str) -> list[LogRecord]:
    """Verify-and-decode every log entry, classifying the first failure.

    A failure on the *final* entry is reported as a torn tail (what a
    crash mid-append leaves behind); a failure anywhere earlier is
    corruption.  Either way the error carries how many leading records
    verified cleanly — never a partial silent load.
    """
    records: list[LogRecord] = []
    last = len(entries) - 1
    for index, load in enumerate(entries):
        try:
            records.append(decode_record(load(), expected_seq=index))
        except StorageError as exc:
            torn = index == last
            what = "torn tail" if torn else "corruption"
            raise StorageError(
                f"{what} in {where} at record {index} "
                f"({index} of {len(entries)} records verify cleanly): {exc}",
                recoverable_records=index,
                torn_tail=torn,
            ) from exc
    return records


def _check_blob(blob: bytes, crc: int, where: str) -> bytes:
    if zlib.crc32(blob) != crc:
        raise StorageError(f"snapshot blob in {where} failed its checksum")
    return blob


def _check_manifest_version(manifest: Any, where: str) -> dict[str, Any]:
    if not isinstance(manifest, dict):
        raise StorageError(f"snapshot manifest in {where} is not an object")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"snapshot in {where} has format version {version!r}; this "
            f"build reads version {FORMAT_VERSION} (version skew)"
        )
    return manifest


class StorageBackend(ABC):
    """The contract the durability layer programs against.

    A backend stores two things: a dense append-only sequence of
    :class:`~repro.storage.record.LogRecord` and zero or more snapshots,
    each tagged with ``upto`` — the number of log records the snapshot
    covers (recovery replays the records from ``upto`` onward).
    """

    #: Filesystem location (directory or file) backing this store.
    path: str

    def __init__(self, path: str, sync: bool = False) -> None:
        self.path = os.fspath(path)
        self.sync_every_append = sync
        self._count: int | None = None

    # -- the log ---------------------------------------------------------- #
    def append(self, kind: str, payload: dict[str, Any]) -> LogRecord:
        """Durably append one record; returns it with its sequence number."""
        if self._count is None:
            self._count = self._raw_count()
        record = LogRecord(seq=self._count, kind=kind, payload=payload)
        self._write(encode_record(record))
        self._count += 1
        return record

    @property
    def record_count(self) -> int:
        """Records currently in the log (without verifying them)."""
        if self._count is None:
            self._count = self._raw_count()
        return self._count

    @abstractmethod
    def records(self) -> list[LogRecord]:
        """Every log record, fully verified; raises on any damage."""

    @abstractmethod
    def truncate(self, count: int) -> None:
        """Drop every record with ``seq >= count`` (recovery housekeeping).

        Used to discard the *uncommitted* suffix of a crashed run: the
        torn final record and/or trailing audit records whose owning
        action never committed.  Never called on verified history.
        """

    def trim_torn_tail(self) -> int:
        """Drop the final record iff it alone is damaged; returns the count left.

        A no-op on an intact log.  Damage anywhere but the final record
        is corruption, not a torn tail, and raises instead of trimming.
        """
        try:
            return len(self.records())  # intact: nothing to trim
        except StorageError as exc:
            if not exc.torn_tail:
                raise
            keep = exc.recoverable_records or 0
        self.truncate(keep)
        return keep

    # -- snapshots -------------------------------------------------------- #
    @abstractmethod
    def write_snapshot(self, manifest: dict[str, Any], blob: bytes) -> None:
        """Atomically persist one snapshot (``manifest['upto']`` tags it)."""

    @abstractmethod
    def latest_snapshot(self) -> tuple[dict[str, Any], bytes] | None:
        """The newest snapshot's verified ``(manifest, blob)``, if any."""

    # -- lifecycle -------------------------------------------------------- #
    @abstractmethod
    def sync(self) -> None:
        """Flush everything written so far to stable storage (fsync)."""

    @abstractmethod
    def close(self) -> None:
        """Flush and release file handles; the backend stays reopenable."""

    # -- backend internals ------------------------------------------------ #
    @abstractmethod
    def _write(self, encoded: dict[str, Any]) -> None: ...

    @abstractmethod
    def _raw_count(self) -> int: ...

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.path!r}, records={self.record_count})"


class JsonlStorage(StorageBackend):
    """Directory backend: ``log.jsonl`` + atomically-renamed snapshot files."""

    LOG_NAME = "log.jsonl"
    SNAPSHOT_PREFIX = "snapshot-"

    def __init__(self, path: str, sync: bool = False) -> None:
        super().__init__(path, sync=sync)
        if os.path.exists(self.path) and not os.path.isdir(self.path):
            raise StorageError(
                f"jsonl storage path {self.path!r} exists and is not a directory"
            )
        os.makedirs(self.path, exist_ok=True)
        self._log_path = os.path.join(self.path, self.LOG_NAME)
        self._fh: Any = None

    # -- the log ---------------------------------------------------------- #
    def _handle(self) -> Any:
        if self._fh is None:
            self._fh = open(self._log_path, "a", encoding="ascii")
        return self._fh

    def _write(self, encoded: dict[str, Any]) -> None:
        handle = self._handle()
        handle.write(json.dumps(encoded, separators=(",", ":")) + "\n")
        # Flush to the OS on every append: a SIGKILL after this point
        # cannot lose the record (the kernel holds it), and we avoid a
        # per-record disk round trip.  sync=True adds the fsync for
        # machine-crash durability.
        handle.flush()
        if self.sync_every_append:
            os.fsync(handle.fileno())

    def _lines(self) -> list[str]:
        if not os.path.exists(self._log_path):
            return []
        with open(self._log_path, "r", encoding="ascii", errors="replace") as fh:
            return fh.read().splitlines()

    def _raw_count(self) -> int:
        return len(self._lines())

    def records(self) -> list[LogRecord]:
        def loader(line: str) -> Callable[[], Any]:
            def load() -> Any:
                try:
                    return json.loads(line)
                except ValueError as exc:
                    raise StorageError(f"unparseable log line: {exc}") from exc

            return load

        return _decode_all([loader(line) for line in self._lines()], self._log_path)

    def truncate(self, count: int) -> None:
        self.close()
        lines = self._lines()[:count]
        tmp = self._log_path + ".tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            for line in lines:
                fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._log_path)
        self._count = count

    # -- snapshots -------------------------------------------------------- #
    def _snapshot_name(self, upto: int) -> str:
        return f"{self.SNAPSHOT_PREFIX}{upto:010d}.json"

    def write_snapshot(self, manifest: dict[str, Any], blob: bytes) -> None:
        import base64

        document = {
            "manifest": manifest,
            "blob": base64.b64encode(blob).decode("ascii"),
            "blob_crc": zlib.crc32(blob),
        }
        target = os.path.join(self.path, self._snapshot_name(manifest["upto"]))
        tmp = target + ".tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            json.dump(document, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)

    def latest_snapshot(self) -> tuple[dict[str, Any], bytes] | None:
        import base64

        names = [
            name
            for name in os.listdir(self.path)
            if name.startswith(self.SNAPSHOT_PREFIX) and name.endswith(".json")
        ]
        if not names:
            return None
        target = os.path.join(self.path, max(names))
        try:
            with open(target, "r", encoding="ascii") as fh:
                document = json.load(fh)
            manifest = _check_manifest_version(document["manifest"], target)
            blob = base64.b64decode(document["blob"].encode("ascii"))
        except StorageError:
            raise
        except Exception as exc:
            raise StorageError(f"snapshot {target!r} is unreadable: {exc}") from exc
        return manifest, _check_blob(blob, document.get("blob_crc", -1), target)

    # -- lifecycle -------------------------------------------------------- #
    def sync(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None


class SqliteStorage(StorageBackend):
    """Single-file backend: ``log`` / ``snapshots`` / ``meta`` tables."""

    def __init__(self, path: str, sync: bool = False) -> None:
        super().__init__(path, sync=sync)
        self._conn: sqlite3.Connection | None = None
        conn = self._connection()
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'format_version'"
        ).fetchone()
        if row is not None and int(row[0]) != FORMAT_VERSION:
            raise StorageError(
                f"sqlite store {self.path!r} has format version {row[0]}; "
                f"this build reads version {FORMAT_VERSION} (version skew)"
            )

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            try:
                conn = sqlite3.connect(self.path)
            except sqlite3.Error as exc:
                raise StorageError(
                    f"cannot open sqlite store {self.path!r}: {exc}"
                ) from exc
            # Appends commit per record; OS-level durability (surviving
            # SIGKILL) needs no fsync, so synchronous stays off unless
            # the caller asked for machine-crash durability.
            conn.execute(
                f"PRAGMA synchronous = {'FULL' if self.sync_every_append else 'OFF'}"
            )
            with conn:
                conn.execute("CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)")
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS log ("
                    "seq INTEGER PRIMARY KEY, v INTEGER, kind TEXT, payload TEXT, crc INTEGER)"
                )
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS snapshots ("
                    "upto INTEGER PRIMARY KEY, manifest TEXT, blob BLOB, blob_crc INTEGER)"
                )
                conn.execute(
                    "INSERT OR IGNORE INTO meta VALUES ('format_version', ?)",
                    (str(FORMAT_VERSION),),
                )
            self._conn = conn
        return self._conn

    # -- the log ---------------------------------------------------------- #
    def _write(self, encoded: dict[str, Any]) -> None:
        conn = self._connection()
        with conn:
            conn.execute(
                "INSERT INTO log (seq, v, kind, payload, crc) VALUES (?, ?, ?, ?, ?)",
                (
                    encoded["seq"],
                    encoded["v"],
                    encoded["kind"],
                    encoded["payload"],
                    encoded["crc"],
                ),
            )

    def _raw_count(self) -> int:
        row = self._connection().execute("SELECT COUNT(*) FROM log").fetchone()
        return int(row[0])

    def _rows(self) -> list[tuple[int, int, str, str, int]]:
        return list(
            self._connection().execute(
                "SELECT seq, v, kind, payload, crc FROM log ORDER BY seq"
            )
        )

    def records(self) -> list[LogRecord]:
        def loader(row: tuple[int, int, str, str, int]) -> Callable[[], Any]:
            return lambda: {
                "seq": row[0],
                "v": row[1],
                "kind": row[2],
                "payload": row[3],
                "crc": row[4],
            }

        return _decode_all([loader(row) for row in self._rows()], self.path)

    def truncate(self, count: int) -> None:
        conn = self._connection()
        with conn:
            conn.execute("DELETE FROM log WHERE seq >= ?", (count,))
        self._count = count

    # -- snapshots -------------------------------------------------------- #
    def write_snapshot(self, manifest: dict[str, Any], blob: bytes) -> None:
        conn = self._connection()
        with conn:
            conn.execute(
                "INSERT OR REPLACE INTO snapshots (upto, manifest, blob, blob_crc) "
                "VALUES (?, ?, ?, ?)",
                (manifest["upto"], json.dumps(manifest), blob, zlib.crc32(blob)),
            )

    def latest_snapshot(self) -> tuple[dict[str, Any], bytes] | None:
        row = self._connection().execute(
            "SELECT manifest, blob, blob_crc FROM snapshots ORDER BY upto DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        where = f"{self.path} (snapshots table)"
        try:
            manifest = _check_manifest_version(json.loads(row[0]), where)
        except StorageError:
            raise
        except Exception as exc:
            raise StorageError(f"snapshot manifest in {where} is unreadable: {exc}") from exc
        return manifest, _check_blob(bytes(row[1]), row[2], where)

    # -- lifecycle -------------------------------------------------------- #
    def sync(self) -> None:
        if self._conn is not None:
            self._conn.commit()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None


def open_storage(
    target: "str | os.PathLike[str] | StorageBackend", sync: bool = False
) -> StorageBackend:
    """Resolve a ``Cluster(storage=...)`` argument to a backend instance.

    A :class:`StorageBackend` passes through unchanged; a path maps on
    its suffix — ``.sqlite`` / ``.sqlite3`` / ``.db`` to
    :class:`SqliteStorage`, anything else to a :class:`JsonlStorage`
    directory.
    """
    if isinstance(target, StorageBackend):
        return target
    path = os.fspath(target)
    if path.endswith(SQLITE_SUFFIXES):
        return SqliteStorage(path, sync=sync)
    return JsonlStorage(path, sync=sync)
