"""The durability controller: journaling on the way in, replay on the way out.

One :class:`DurabilityController` sits between a ``Cluster`` façade and
a :class:`~repro.storage.backends.StorageBackend`.  In normal operation
it is write-only: every *committed* action — construction, bulk-load,
batch, immediate single, churn event, repair, churn re-configuration —
is appended to the log **after** it has fully applied in memory, and
every network membership mutation is appended as an audit record the
moment it happens.  Because the append is post-commit, a crash at any
instant leaves the log describing exactly the committed prefix of the
run: the worst a SIGKILL can do is lose the action that was in flight
(plus its already-flushed audit records, which recovery discards as an
uncommitted suffix).

During **replay** the controller flips to verify-only: re-executing the
logged actions on a restored (or freshly re-constructed) deployment
regenerates the same membership events, and the controller checks them
off against the audit records in the log — any divergence between what
the journal says happened and what the replayed deployment actually
does raises :class:`~repro.errors.StorageError` instead of continuing
from a silently different state.  All simulation randomness is seeded
and journaled requests record the *request* (e.g. "crash a random
host"), not the outcome, so the seeded streams evolve identically and
replayed accounting — ``MessageLog.tally`` counters, round-congestion
aggregates, churn victim choices — is byte-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import ReproError, StorageError
from repro.storage.backends import StorageBackend
from repro.storage.record import LogRecord

#: Churn record actions mapped to the façade methods that replay them.
_CHURN_ACTIONS = ("join", "leave", "crash", "recover")


def committed_prefix(records: Sequence[LogRecord]) -> int:
    """Length of the committed prefix of a verified record list.

    Audit (``membership``) records trailing the final action record
    belong to an action that never committed — the crash interrupted it
    after its network mutations but before its post-commit append — so
    recovery replays up to the last action and truncates the dangles.
    ``note`` records are kept (they carry workload metadata, not state).
    """
    count = len(records)
    while count > 0 and records[count - 1].kind == "membership":
        count -= 1
    return count


class DurabilityController:
    """Journals one cluster's committed actions; verifies them on replay."""

    def __init__(self, backend: StorageBackend, snapshot_every: int = 0) -> None:
        if snapshot_every < 0:
            raise ValueError(f"snapshot_every must be >= 0, got {snapshot_every}")
        self.backend = backend
        self.snapshot_every = snapshot_every
        self.replaying = False
        #: Action records journaled or replayed over this controller's life.
        self.applied_actions = 0
        self._actions_since_snapshot = 0
        #: Set by the cluster: writes a snapshot of the current state.
        self.snapshot_hook: Callable[[], None] | None = None
        #: Membership events observed while replaying one action.
        self._observed: list[tuple[str, Any]] | None = None

    # ------------------------------------------------------------------ #
    # journaling (normal operation)
    # ------------------------------------------------------------------ #
    def record_action(self, kind: str, payload: dict[str, Any]) -> None:
        """Append one committed action; honours the snapshot cadence."""
        if self.replaying:
            return
        self.backend.append(kind, payload)
        self.applied_actions += 1
        self._actions_since_snapshot += 1
        if (
            self.snapshot_every
            and self._actions_since_snapshot >= self.snapshot_every
            and self.snapshot_hook is not None
        ):
            self.snapshot_hook()

    def record_note(self, payload: dict[str, Any]) -> None:
        """Append replay-inert metadata (workload parameters, markers)."""
        if not self.replaying:
            self.backend.append("note", payload)

    def on_batch_commit(self, operations: tuple[Any, ...], result: Any) -> None:
        """Executor commit hook: journal a batch as its normalized ops."""
        if self.replaying:
            return
        self.record_action(
            "batch",
            {
                "operations": [
                    (op.kind, op.payload, op.origin_host) for op in operations
                ]
            },
        )

    def membership_listener(self, event: str, host_id: Any) -> None:
        """Network hook: audit membership changes, or collect them on replay."""
        if self._observed is not None:
            self._observed.append((event, host_id))
        elif not self.replaying:
            self.backend.append("membership", {"event": event, "host": host_id})

    def note_snapshot(self) -> None:
        """Reset the cadence counter (a snapshot was just written)."""
        self._actions_since_snapshot = 0

    # ------------------------------------------------------------------ #
    # replay (recovery)
    # ------------------------------------------------------------------ #
    def replay(self, cluster: Any, records: Sequence[LogRecord]) -> int:
        """Re-execute ``records`` on ``cluster``, verifying audit records.

        ``records`` must be the committed log tail (no ``create`` record
        — construction is the caller's job — and no trailing dangles;
        see :func:`committed_prefix`).  Returns the number of action
        records applied.  Raises :class:`~repro.errors.StorageError` on
        any divergence between the journal and the replayed run.
        """
        self.replaying = True
        applied = 0
        pending: list[tuple[str, Any]] = []
        try:
            for record in records:
                if record.kind == "membership":
                    pending.append(
                        (record.payload["event"], record.payload["host"])
                    )
                    continue
                if record.kind == "note":
                    continue
                self._observed = []
                try:
                    self._apply(cluster, record)
                except StorageError:
                    raise
                except ReproError as exc:
                    raise StorageError(
                        f"replay of log record {record.seq} "
                        f"({record.kind!r}) failed: {exc} — the journal and "
                        "the replayed deployment have diverged"
                    ) from exc
                observed = self._observed
                self._observed = None
                if observed != pending:
                    raise StorageError(
                        f"replay divergence at log record {record.seq} "
                        f"({record.kind!r}): journal records membership "
                        f"events {pending!r}, replay produced {observed!r}"
                    )
                pending = []
                applied += 1
                self.applied_actions += 1
            if pending:
                raise StorageError(
                    f"log ends with {len(pending)} membership record(s) not "
                    "owned by any committed action; recovery should have "
                    "truncated them (inconsistent store)"
                )
        finally:
            self._observed = None
            self.replaying = False
        return applied

    def _apply(self, cluster: Any, record: LogRecord) -> None:
        kind = record.kind
        payload = record.payload
        if kind == "bulk_load":
            cluster.bulk_load(payload["items"])
        elif kind == "batch":
            cluster.batch(
                [tuple(operation) for operation in payload["operations"]]
            )
        elif kind == "single":
            cluster._run_single(
                payload["kind"], payload["payload"], payload["origin_host"]
            )
        elif kind == "churn":
            action = payload["action"]
            if action == "join":
                cluster.join_host()
            elif action == "leave":
                cluster.leave_host(payload["host"])
            elif action == "crash":
                cluster.crash_host(payload["host"])
            elif action == "recover":
                cluster.recover_host(payload["host"])
            else:
                raise StorageError(
                    f"log record {record.seq} requests unknown churn "
                    f"action {action!r} (expected one of {_CHURN_ACTIONS})"
                )
        elif kind == "repair":
            cluster.repair(payload["host_ids"])
        elif kind == "configure_churn":
            cluster.configure_churn(
                join_fraction=payload.get("join_fraction"),
                min_hosts=payload.get("min_hosts"),
            )
        elif kind == "create":
            raise StorageError(
                f"unexpected 'create' record at log position {record.seq}; "
                "construction records are only valid at position 0"
            )
        else:
            raise StorageError(
                f"log record {record.seq} has unknown kind {kind!r} "
                "(written by a newer build?)"
            )
