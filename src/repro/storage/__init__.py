"""Durable state for clusters: an operation log plus periodic snapshots.

Everything the engine computes is deterministic given its seeds, so a
run's durable form is simply its *history*: an append-only log of
committed operations (each record checksummed) with periodic full-state
snapshots so recovery replays a short tail instead of the whole run.
``Cluster(storage=...)`` journals transparently; ``Cluster.recover``
rebuilds the exact in-memory state — structure layout, membership,
message tallies, congestion aggregates — byte-identically.

See DESIGN.md §9 for the format, the crash-consistency argument, and
the recovery replay path.
"""

from repro.storage.backends import (
    JsonlStorage,
    SqliteStorage,
    StorageBackend,
    open_storage,
)
from repro.storage.controller import DurabilityController, committed_prefix
from repro.storage.record import (
    ACTION_KINDS,
    AUDIT_KINDS,
    FORMAT_VERSION,
    LogRecord,
    decode_record,
    encode_record,
)
from repro.storage.snapshot import capture_snapshot, content_digest, restore_snapshot

__all__ = [
    "ACTION_KINDS",
    "AUDIT_KINDS",
    "FORMAT_VERSION",
    "DurabilityController",
    "JsonlStorage",
    "LogRecord",
    "SqliteStorage",
    "StorageBackend",
    "capture_snapshot",
    "committed_prefix",
    "content_digest",
    "decode_record",
    "encode_record",
    "open_storage",
    "restore_snapshot",
]
