"""A seeded, resumable mixed workload for exercising the durability layer.

The recovery-gate CI job (and ``python -m repro.cli workload``) needs a
run it can SIGKILL at an arbitrary committed step and later resume to a
**byte-identical** final report.  This module provides it: a per-family
workload whose every step is derived from ``random.Random(f"{seed}:{k}")``
— the step index alone, never the history — so a resumed run regenerates
step ``k`` without replaying the random stream, while history-dependent
draws (churn victim selection) live in the cluster's own journaled and
snapshotted rng.

Invariant the resume arithmetic leans on: **one step = exactly one
action record**.  Batches are one ``batch`` record; immediate singles
would be one ``single`` record; churn is one ``churn`` record.  The
cluster's ``applied_operations`` counter therefore equals ``1 (create)
+ steps committed``, which is how :func:`resume_workload` finds where
the crash interrupted.
"""

from __future__ import annotations

import json
import os
import random
import signal
import sys
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import StorageError
from repro.net.network import ledger_mode
from repro.storage.backends import StorageBackend, open_storage
from repro.storage.snapshot import content_digest

#: Relative frequencies of the step kinds (searches dominate, as in the
#: paper's query-heavy regime; churn is rare but regular).
_STEP_KINDS = ("batch", "insert", "delete", "churn")
_STEP_WEIGHTS = (6, 2, 1, 3)
_CHURN_KINDS = ("join", "leave", "crash")
_CHURN_WEIGHTS = (2, 1, 1)
#: Searches per batch step.
_BATCH_SIZE = 4


@dataclass(frozen=True)
class WorkloadSpec:
    """Per-family payload generators (all driven by a per-step rng)."""

    items: Callable[[int], Sequence[Any]]
    kwargs: Callable[[], dict[str, Any]]
    search: Callable[[random.Random, Sequence[Any]], Any]
    range_: Callable[[random.Random], Any] | None = None
    insert: Callable[[random.Random], Any] | None = None


def _keys(count: int = 24) -> Callable[[int], Sequence[Any]]:
    from repro.workloads import uniform_keys

    return lambda seed: uniform_keys(count, seed=seed)


def _key_search(rng: random.Random, items: Sequence[Any]) -> Any:
    return round(rng.uniform(0.0, 1_000_000.0), 6)


def _member_search(rng: random.Random, items: Sequence[Any]) -> Any:
    return items[rng.randrange(len(items))]


def _key_range(rng: random.Random) -> Any:
    lo, hi = sorted(round(rng.uniform(0.0, 1_000_000.0), 6) for _ in range(2))
    return (lo, hi)


def _key_insert(rng: random.Random) -> Any:
    return round(rng.uniform(0.0, 1_000_000.0), 6)


def _quadtree_spec() -> WorkloadSpec:
    from repro.spatial import HyperCube
    from repro.workloads import uniform_points

    return WorkloadSpec(
        items=lambda seed: uniform_points(16, dimension=2, seed=seed),
        kwargs=lambda: {"bounding_cube": HyperCube((0.0, 0.0), 1.0)},
        search=lambda rng, items: (rng.random(), rng.random()),
        insert=lambda rng: (rng.random(), rng.random()),
    )


def _trie_spec() -> WorkloadSpec:
    from repro.strings import DNA
    from repro.workloads import dna_reads

    return WorkloadSpec(
        items=lambda seed: dna_reads(16, seed=seed),
        kwargs=lambda: {"alphabet": DNA},
        search=lambda rng, items: items[rng.randrange(len(items))][:6],
    )


def _trapezoid_spec() -> WorkloadSpec:
    from repro.workloads import non_crossing_segments

    return WorkloadSpec(
        items=lambda seed: non_crossing_segments(10, seed=seed),
        kwargs=lambda: {},
        search=lambda rng, items: (
            items[rng.randrange(len(items))].left[0] + 0.5,
            items[rng.randrange(len(items))].left[1] + 0.5,
        ),
    )


def workload_specs() -> dict[str, WorkloadSpec]:
    """One :class:`WorkloadSpec` per registered structure family."""
    ordered = WorkloadSpec(
        items=_keys(),
        kwargs=lambda: {},
        search=_key_search,
        range_=_key_range,
        insert=_key_insert,
    )
    keyed = WorkloadSpec(items=_keys(), kwargs=lambda: {}, search=_member_search)
    return {
        "skipweb1d": ordered,
        "bucket-skipweb1d": WorkloadSpec(
            items=_keys(),
            kwargs=lambda: {"memory_size": 16},
            search=_key_search,
            range_=_key_range,
            insert=_key_insert,
        ),
        "skipquadtree": _quadtree_spec(),
        "skiptrie": _trie_spec(),
        "skiptrapezoid": _trapezoid_spec(),
        "skipgraph": ordered,
        "skipnet": keyed,
        "non-skipgraph": keyed,
        "family-tree": keyed,
        "det-skipnet": keyed,
        "bucket-skipgraph": keyed,
        "chord": keyed,
    }


def _step_rng(seed: int, step: int) -> random.Random:
    # Seeded from a string: deterministic across processes and runs,
    # independent of PYTHONHASHSEED, and a function of the step index
    # alone so resumed runs regenerate any step without history.
    return random.Random(f"{seed}:{step}")


def _run_step(cluster: Any, spec: WorkloadSpec, seed: int, step: int) -> None:
    """Apply workload step ``step``: exactly one committed action record."""
    rng = _step_rng(seed, step)
    registry_spec = cluster.spec
    kinds, weights = [], []
    for kind, weight in zip(_STEP_KINDS, _STEP_WEIGHTS):
        if kind == "insert" and (spec.insert is None or not registry_spec.supports_updates):
            continue
        if kind == "delete" and not registry_spec.supports_updates:
            continue
        kinds.append(kind)
        weights.append(weight)
    kind = rng.choices(kinds, weights=weights, k=1)[0]
    items = cluster._workload_items  # stashed by run_workload/resume_workload
    if kind == "batch":
        operations: list[tuple[str, Any]] = [
            ("search", spec.search(rng, items)) for _ in range(_BATCH_SIZE)
        ]
        if spec.range_ is not None and registry_spec.supports_range:
            operations.append(("range", spec.range_(rng)))
        cluster.batch(operations)
    elif kind == "insert":
        assert spec.insert is not None
        cluster.batch([("insert", spec.insert(rng))])
    elif kind == "delete":
        cluster.batch([("delete", items[rng.randrange(len(items))])])
    else:
        churn_kind = rng.choices(_CHURN_KINDS, weights=_CHURN_WEIGHTS, k=1)[0]
        # Deterministic floor guard: below min_hosts + 1 live hosts a
        # leave/crash would be refused, so the step joins instead.  The
        # decision depends only on (deterministic) cluster state.
        alive = len(cluster.network.alive_host_ids())
        if churn_kind != "join" and alive <= cluster._min_hosts + 1:
            churn_kind = "join"
        if churn_kind == "join":
            cluster.join_host()
        elif churn_kind == "leave":
            cluster.leave_host()
        else:
            cluster.crash_host()


def _report_row(
    cluster: Any, structure: str, steps: int, seed: int
) -> dict[str, Any]:
    """One flat row summarising the run — the byte-compared artifact.

    Every restored dimension appears: structure contents (digest),
    membership, message tallies by kind, churn repair accounting and
    round-congestion aggregates.  Deliberately NOT included: anything
    that differs between an uninterrupted and a killed-and-resumed run
    (the resume offset goes to stderr), so the recovery gate can compare
    the two outputs byte for byte.
    """
    stats = cluster.stats().as_dict()
    congestion = cluster.round_congestion()
    row: dict[str, Any] = {
        "structure": structure,
        "steps": steps,
        "seed": seed,
        "applied_operations": cluster.applied_operations,
        "content_digest": content_digest(cluster.structure),
        "hosts": stats["hosts"],
        "alive_hosts": stats["alive_hosts"],
        "membership_epoch": stats["membership_epoch"],
        "messages_total": stats["messages_total"],
        "construction_messages": stats["construction_messages"],
        "churn_events": len(cluster.churn_events),
        "repair_messages": sum(e.repair_messages for e in cluster.churn_events),
        "records_moved": sum(e.records_moved for e in cluster.churn_events),
        "congestion_rounds": congestion.rounds,
        "congestion_messages": congestion.total_messages,
        "max_round_congestion": congestion.max_host_round_load,
    }
    for kind, count in sorted(stats["messages_by_kind"].items()):
        row[f"messages_{kind}"] = count
    return row


def run_workload(
    structure: str = "skipweb1d",
    steps: int = 12,
    seed: int = 0,
    storage: "str | StorageBackend | None" = None,
    snapshot_every: int = 0,
    kill_after: int | None = None,
) -> list[dict[str, Any]]:
    """Run the seeded workload from genesis; returns the one-row report.

    ``kill_after=K`` SIGKILLs the *current process* the instant step K
    has committed — the recovery-gate CI job uses it to crash a run at a
    randomized-but-logged offset and then resume it from ``storage``.
    """
    specs = workload_specs()
    if structure not in specs:
        raise StorageError(
            f"no workload defined for structure {structure!r}; "
            f"choose from {sorted(specs)}"
        )
    if kill_after is not None and storage is None:
        raise StorageError("kill_after requires storage= (nothing would survive)")
    spec = specs[structure]
    items = spec.items(seed)
    with ledger_mode():
        from repro.api import Cluster

        cluster = Cluster(
            structure=structure,
            items=items,
            seed=seed,
            storage=storage,
            snapshot_every=snapshot_every,
            **spec.kwargs(),
        )
    cluster._workload_items = items
    if storage is not None:
        cluster._durability.record_note(
            {"workload": {"structure": structure, "steps": steps, "seed": seed}}
        )
    for step in range(steps):
        _run_step(cluster, spec, seed, step)
        if kill_after is not None and step + 1 >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
    row = _report_row(cluster, structure, steps, seed)
    cluster.close()
    return [row]


def resume_workload(
    storage: "str | StorageBackend",
    *,
    trim_torn_tail: bool = False,
) -> list[dict[str, Any]]:
    """Recover a killed workload run and drive it to completion.

    Reads the workload parameters from the journal's ``note`` record,
    recovers the cluster (snapshot + tail replay), computes how many
    steps committed before the crash from the action count, and runs the
    remainder.  The resulting report row is byte-identical to an
    uninterrupted run's.
    """
    from repro.api import Cluster

    backend = open_storage(storage)
    params: dict[str, Any] | None = None
    try:
        records = backend.records()
    except StorageError as exc:
        if not (trim_torn_tail and exc.torn_tail):
            raise
        backend.trim_torn_tail()
        records = backend.records()
    for record in records:
        if record.kind == "note" and "workload" in record.payload:
            params = record.payload["workload"]
            break
    if params is None:
        raise StorageError(
            f"{backend.path!r} holds no workload note record; was this store "
            "written by `repro.cli workload --save`?"
        )
    with ledger_mode():
        cluster = Cluster.recover(backend, trim_torn_tail=trim_torn_tail)
    structure, steps, seed = params["structure"], params["steps"], params["seed"]
    spec = workload_specs()[structure]
    cluster._workload_items = spec.items(seed)
    done = cluster.applied_operations - 1  # minus the create record
    print(
        f"resumed {structure!r} workload from step {done}/{steps} "
        f"({backend.path})",
        file=sys.stderr,
    )
    for step in range(done, steps):
        _run_step(cluster, spec, seed, step)
    row = _report_row(cluster, structure, steps, seed)
    cluster.close()
    return [row]


def report_json(rows: list[dict[str, Any]]) -> str:
    """Canonical JSON for byte-comparison (sorted keys, no whitespace drift)."""
    return json.dumps(rows, sort_keys=True, separators=(",", ":"))
