"""The durable log's record format: one checksummed line per committed event.

Every record is a self-verifying unit: a monotonically increasing
sequence number, a ``kind`` tag, a pickled-and-base64 payload (payloads
carry arbitrary structure items — ``HyperCube`` corners, ``LineSegment``
endpoints — which JSON cannot represent), and a CRC-32 over all of it.
Decoding verifies the format version, the sequence number's position and
the checksum before the payload is ever unpickled, so a flipped bit or a
line torn by a crash is caught *before* it can masquerade as state.

The distinction the recovery path leans on lives here too:

* a record that fails to decode at the **end** of the log is a *torn
  tail* — the signature of a crash mid-append on an append-only file —
  and :class:`~repro.errors.StorageError` reports it with
  ``torn_tail=True`` so recovery may trim it on explicit request;
* a record that fails **anywhere earlier** is real corruption; the error
  carries the length of the verified prefix and recovery refuses to
  load anything rather than load part of the history silently.
"""

from __future__ import annotations

import base64
import pickle
import zlib
from dataclasses import dataclass
from typing import Any

from repro.errors import StorageError

#: Version of the on-disk record + snapshot format.  Bumped on any
#: incompatible change; decoding a record or snapshot written by a
#: different version raises :class:`~repro.errors.StorageError` (version
#: skew) instead of guessing.
FORMAT_VERSION = 1

#: Record kinds that mutate cluster state and are re-executed on replay.
ACTION_KINDS = frozenset(
    {"create", "bulk_load", "batch", "single", "churn", "repair", "configure_churn"}
)

#: Record kinds that are audit/metadata only: ``membership`` records are
#: verified (not applied) during replay, ``note`` records are skipped.
AUDIT_KINDS = frozenset({"membership", "note"})


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One committed event of a cluster's history."""

    seq: int
    """Zero-based position in the log; dense and strictly increasing."""

    kind: str
    """One of :data:`ACTION_KINDS` | :data:`AUDIT_KINDS`."""

    payload: dict[str, Any]
    """Kind-specific data (operation lists, churn requests, config)."""

    @property
    def is_action(self) -> bool:
        return self.kind in ACTION_KINDS


def _payload_blob(payload: dict[str, Any]) -> str:
    return base64.b64encode(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _crc(seq: int, kind: str, blob: str) -> int:
    return zlib.crc32(f"{FORMAT_VERSION}:{seq}:{kind}:{blob}".encode("ascii"))


def encode_record(record: LogRecord) -> dict[str, Any]:
    """Encode a record as a JSON-able dict with an embedded checksum."""
    blob = _payload_blob(record.payload)
    return {
        "v": FORMAT_VERSION,
        "seq": record.seq,
        "kind": record.kind,
        "payload": blob,
        "crc": _crc(record.seq, record.kind, blob),
    }


def decode_record(obj: Any, *, expected_seq: int) -> LogRecord:
    """Verify and decode one encoded record.

    Raises :class:`~repro.errors.StorageError` on version skew, a
    checksum mismatch, a sequence-number gap, or a malformed entry.  The
    caller (the backend's ``records()``) attaches torn-tail/prefix
    context; this function only says *what* is wrong with the record.
    """
    if not isinstance(obj, dict):
        raise StorageError(f"log record {expected_seq} is not an object: {obj!r}")
    version = obj.get("v")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"log record {expected_seq} has format version {version!r}; "
            f"this build reads version {FORMAT_VERSION} (version skew)"
        )
    try:
        seq = obj["seq"]
        kind = obj["kind"]
        blob = obj["payload"]
        crc = obj["crc"]
    except KeyError as exc:
        raise StorageError(
            f"log record {expected_seq} is missing field {exc.args[0]!r}"
        ) from None
    if seq != expected_seq:
        raise StorageError(
            f"log record at position {expected_seq} carries seq {seq!r} "
            "(reordered or dropped records)"
        )
    if not isinstance(blob, str) or _crc(seq, kind, blob) != crc:
        raise StorageError(f"log record {seq} failed its checksum")
    try:
        payload = pickle.loads(base64.b64decode(blob.encode("ascii")))
    except Exception as exc:
        raise StorageError(f"log record {seq} payload is undecodable: {exc}") from exc
    return LogRecord(seq=seq, kind=kind, payload=payload)
