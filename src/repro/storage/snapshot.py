"""Snapshot encode/decode: the whole deployment in one verified blob.

A snapshot is the full in-memory state of a cluster — structure, churn
controller, repair engine and façade configuration — pickled as **one**
object graph so the shared :class:`~repro.net.network.Network` reference
(and every record/host it owns) is stored exactly once and restored
shared.  That is what makes restoration byte-identical: the skip
structures' internal layout (promotion coin flips, slot assignment,
bucket splits) is a function of their full construction history, so we
persist the layout itself rather than pretend ``build_from_sorted`` over
the current items would reproduce it.

Alongside the opaque blob travels a portable JSON **manifest**: format
version, log position (``upto``), a SHA-256 of the blob, and the
observable fingerprint of the state — message tallies by kind,
membership epoch, host counts, round-congestion aggregates and a
content digest over the structure's items.  :func:`restore_snapshot`
recomputes every fingerprint field from the unpickled state and refuses
the snapshot on any mismatch, so a stale or tampered blob cannot load
silently behind a plausible manifest.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any

from repro.errors import StorageError
from repro.net.congestion import round_congestion_report
from repro.storage.record import FORMAT_VERSION


def content_digest(structure: Any) -> str:
    """SHA-256 fingerprint of the structure's item set.

    Uses the same accessors the façade's stats path does: ``keys`` where
    the family exposes one (one-dimensional webs, graphs, DHTs), else
    the underlying web's ``items`` (spatial, string and planar
    families).  Reprs are hashed in sorted order so the digest is
    independent of internal iteration order.
    """
    items = getattr(structure, "keys", None)
    if items is None:
        web = getattr(structure, "web", structure)
        items = getattr(web, "items", None)
    if items is None:
        raise StorageError(
            f"{type(structure).__name__} exposes neither 'keys' nor "
            "'items'; cannot fingerprint its contents"
        )
    digest = hashlib.sha256()
    for text in sorted(repr(item) for item in items):
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _fingerprint(structure: Any) -> dict[str, Any]:
    """The manifest's portable view of the live state.

    On a network with an explicit topology the fingerprint additionally
    versions the layout (``topology`` = the portable ``describe()``
    dict), so a snapshot taken under one cost model is refused by a
    build expecting another; flat-default snapshots omit the key and
    stay byte-identical to pre-topology manifests.
    """
    network = structure.network
    congestion = round_congestion_report(network)
    fingerprint = {
        "content_digest": content_digest(structure),
        "messages_total": network.total_messages,
        "messages_by_kind": {
            kind.value: count
            for kind, count in sorted(
                network.message_log.counts_by_kind().items(),
                key=lambda entry: entry[0].value,
            )
            if count
        },
        "membership_epoch": network.membership_epoch,
        "hosts": network.host_count,
        "alive_hosts": len(network.alive_host_ids()),
        "round_congestion": {
            "rounds": congestion.rounds,
            "total_messages": congestion.total_messages,
            "max_host_round_load": congestion.max_host_round_load,
        },
    }
    if network.topology is not None:
        fingerprint["topology"] = network.topology.describe()
    return fingerprint


def capture_snapshot(
    structure: Any,
    churn: Any,
    repair_engine: Any,
    config: dict[str, Any],
    *,
    upto: int,
    actions: int,
    structure_name: str,
) -> tuple[dict[str, Any], bytes]:
    """Encode the deployment as ``(manifest, blob)``.

    ``upto`` is the log position the snapshot covers (recovery replays
    records from there); ``actions`` counts the action records applied,
    for progress reporting.  ``config`` is the façade configuration
    needed to resume operating the restored state (mode, workers,
    churn settings, factory options); it rides inside the pickle since
    factory options may hold non-JSON values.
    """
    blob = pickle.dumps(
        {
            "structure": structure,
            "churn": churn,
            "repair_engine": repair_engine,
            "config": config,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    manifest = {
        "format_version": FORMAT_VERSION,
        "structure": structure_name,
        "upto": upto,
        "actions": actions,
        "blob_sha256": hashlib.sha256(blob).hexdigest(),
        "fingerprint": _fingerprint(structure),
    }
    return manifest, blob


def restore_snapshot(manifest: dict[str, Any], blob: bytes) -> dict[str, Any]:
    """Decode and *verify* a snapshot; returns the unpickled state dict.

    Checks, in order: format version, blob hash against the manifest,
    then every fingerprint field recomputed from the restored state.
    Any mismatch raises :class:`~repro.errors.StorageError` — a snapshot
    either round-trips exactly or is refused whole.
    """
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"snapshot has format version {version!r}; this build reads "
            f"version {FORMAT_VERSION} (version skew)"
        )
    digest = hashlib.sha256(blob).hexdigest()
    if digest != manifest.get("blob_sha256"):
        raise StorageError(
            "snapshot blob does not match its manifest hash "
            f"({digest[:12]}… != {str(manifest.get('blob_sha256'))[:12]}…)"
        )
    try:
        state = pickle.loads(blob)
    except Exception as exc:
        raise StorageError(f"snapshot blob is undecodable: {exc}") from exc
    if not isinstance(state, dict) or "structure" not in state:
        raise StorageError("snapshot blob holds no deployment state")
    restored = _fingerprint(state["structure"])
    expected = manifest.get("fingerprint")
    if restored != expected:
        diffs = sorted(
            key
            for key in set(restored) | set(dict(expected or {}))
            if restored.get(key) != (expected or {}).get(key)
        )
        raise StorageError(
            "restored snapshot diverges from its manifest fingerprint "
            f"(fields: {', '.join(diffs)})"
        )
    return state
