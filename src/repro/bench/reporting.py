"""Plain-text table and series formatting for benchmark output.

The paper reports its comparison as a table (Table 1); the benchmarks
print the measured analogue in aligned plain text so the output of
``pytest benchmarks/ --benchmark-only`` and ``python -m repro.cli`` can be
pasted directly into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, Any]], title: str | None = None) -> str:
    """Format dictionaries as an aligned text table (column order from the first row)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(_cell(row.get(column))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(_cell(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_series(
    sizes: Sequence[Any], values: Sequence[Any], size_label: str = "n", value_label: str = "value"
) -> str:
    """Format a (sizes, values) pair as a two-column table."""
    rows = [
        {size_label: size, value_label: value} for size, value in zip(sizes, values)
    ]
    return format_table(rows)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)
