"""The experiment registry: one function per table / figure / lemma of the paper.

Every function returns a list of plain dictionaries (rows) so that the
``benchmarks/`` modules can assert on them and the CLI can print them with
:func:`repro.bench.reporting.format_table`.  All randomness is seeded.

Every distributed structure is deployed through the public
:class:`repro.api.Cluster` façade (see :func:`_cluster` below) — the
same registry path clients use — in immediate mode, so every message
count is byte-identical to the pre-façade direct constructions.

Experiment index (see DESIGN.md §3 for the full mapping):

=====================  =========================================================
function               reproduces
=====================  =========================================================
``table1_comparison``  Table 1 — H, M, C(n), Q(n), U(n) for every method
``fig1_skiplist``      Figure 1 — skip list expected O(log n) search, O(n) space
``fig2_skipweb_levels``Figure 2 — the 1-d skip-web level structure
``fig3_quadtree``      Figure 3 / Lemma 3 — quadtree set-halving constant
``fig4_trapezoid``     Figure 4 / Lemma 5 — trapezoidal-map set-halving constant
``lemma1_list``        Lemma 1 — sorted-list set-halving constant
``lemma4_trie``        Lemma 4 — trie set-halving constant
``theorem2_multidim``  Theorem 2 — O(log n) queries for quadtree/trie/trapezoid
``theorem2_onedim``    Theorem 2 + §2.4.1 — 1-d and bucket skip-web query costs
``range_queries``      output-sensitive O(log n + k) range reporting (extension)
``update_costs``       §4 — insertion/deletion message costs
``ablation_blocking``  §2.4 vs §2.4.1 — blocking-policy ablation
``throughput``         batched mixed workloads through the round-based engine
``congestion_rounds``  Theorem 2 congestion — max per-host per-round load
``churn``              live join/leave/crash with self-repair (extension)
``topology_comparison``flat vs clustered vs geo link-cost models (extension)
``fault_tolerance``    delivered-ops ratio under seeded message loss (extension)
=====================  =========================================================
"""

from __future__ import annotations

import functools
import math
import random
from statistics import mean
from typing import Any, Callable, Sequence

from repro.api import BatchReport, Cluster
from repro.baselines import SkipList
from repro.core.halving import sample_half, verify_halving
from repro.core.ranges import Interval
from repro.engine import Operation
from repro.errors import ChurnError
from repro.net.churn import churn_schedule
from repro.net.network import ledger_mode
from repro.onedim import SortedListStructure
from repro.planar.segments import bounding_box
from repro.planar.skip_trapezoid import TrapezoidalMapStructure, Window
from repro.spatial.geometry import Box, HyperCube
from repro.spatial.quadtree import CompressedQuadtree
from repro.spatial.skip_quadtree import descent_conflicts
from repro.strings import DNA, LOWERCASE
from repro.strings.skip_trie import PrefixRange, TrieStructure
from repro.workloads import (
    dna_reads,
    non_crossing_segments,
    uniform_keys,
    uniform_points,
)
from repro.workloads.strings import prefix_queries, random_strings

Row = dict[str, Any]


def _cluster(name: str, items: Sequence[Any], **kwargs: Any) -> Cluster:
    """Deploy one structure family through the public façade.

    Every experiment constructs through :class:`repro.api.Cluster` (the
    registry path clients use) in immediate mode, so single-operation
    message counts stay byte-identical to the pre-façade direct calls.
    """
    return Cluster(structure=name, items=items, mode="immediate", **kwargs)


def _structure(name: str, items: Sequence[Any], **kwargs: Any) -> Any:
    """Shorthand for experiments that only need the raw structure."""
    return _cluster(name, items, **kwargs).structure


def _ledger(function: Callable[..., list[Row]]) -> Callable[..., list[Row]]:
    """Run an experiment on the zero-allocation ledger substrate.

    Experiments only ever read counters, so their rows are byte-identical
    between the traced and ledger substrates (asserted by
    ``tests/test_perf_equivalence.py``); the ledger one just skips the
    per-delivery :class:`~repro.net.message.Message` allocation.  An
    enclosing :func:`repro.net.network.tracing_mode` block (the CLI's
    ``--trace`` flag) re-enables full tracing for debugging.
    """

    @functools.wraps(function)
    def wrapper(*args: Any, **kwargs: Any) -> list[Row]:
        with ledger_mode():
            return function(*args, **kwargs)

    return wrapper


def _query_points(
    count: int, rng: random.Random, low: float = 0.0, high: float = 1_000_000.0
) -> list[float]:
    return [rng.uniform(low, high) for _ in range(count)]


def _unit_main(conn: Any, unit: Callable[[], list[Row]]) -> None:
    """Run one benchmark unit in a forked worker; ship its rows back."""
    try:
        conn.send(("ok", unit()))
    except BaseException as error:  # pragma: no cover - defensive
        try:
            conn.send(("error", repr(error)))
        except Exception:
            pass
    finally:
        conn.close()


def _run_units(units: Sequence[Callable[[], list[Row]]]) -> list[list[Row]]:
    """Run independent benchmark units, forking one worker per unit.

    Each unit is a zero-argument callable returning a list of rows.
    Units must be *pre-planned*: all shared random state (payload
    generation, shuffles) is consumed by the caller before the unit is
    built, so a unit only constructs its own cluster and runs its own
    batches — cross-process execution changes no counter.  Rows come
    back in submission order.  Platforms without the ``fork`` start
    method — or a worker that dies — fall back to in-process execution,
    so the rows never depend on the platform.
    """
    import os

    from repro.engine.sharded import fork_available

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    # On a single CPU the forks would only add setup cost — stay serial.
    if len(units) < 2 or cpus < 2 or not fork_available():
        return [unit() for unit in units]
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    workers = []
    for unit in units:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(target=_unit_main, args=(child_conn, unit))
        process.start()
        child_conn.close()
        workers.append((process, parent_conn))
    results: list[list[Row] | None] = []
    for process, conn in workers:
        try:
            status, payload = conn.recv()
        except EOFError:  # pragma: no cover - defensive
            status, payload = "error", "worker pipe closed"
        conn.close()
        process.join()
        results.append(payload if status == "ok" else None)
    return [
        result if result is not None else unit()
        for unit, result in zip(units, results)
    ]


# --------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------- #
@_ledger
def table1_comparison(
    sizes: Sequence[int] = (128, 256, 512),
    queries_per_size: int = 40,
    updates_per_size: int = 8,
    bucket_memory: int = 32,
    seed: int = 0,
) -> list[Row]:
    """Measure every Table 1 row (plus Chord) on the same workloads."""
    rows: list[Row] = []
    for n in sizes:
        rng = random.Random(seed + n)
        keys = uniform_keys(n, seed=seed + n)
        queries = _query_points(queries_per_size, rng)
        update_keys = _query_points(updates_per_size, rng)

        def measure_baseline(structure, name: str) -> Row:
            query_costs = [
                structure.search(q, origin_key=rng.choice(keys)).messages for q in queries
            ]
            update_costs = []
            for key in update_keys:
                update_costs.append(structure.insert(key).messages)
            congestion = structure.congestion()
            return {
                "method": name,
                "n": n,
                "H": structure.host_count,
                "M_max": structure.max_memory_per_host(),
                "C_max": round(congestion.max_congestion, 1),
                "Q_mean": round(mean(query_costs), 2),
                "U_mean": round(mean(update_costs), 2) if update_costs else 0.0,
            }

        rows.append(measure_baseline(_structure("skipgraph", keys, seed=seed), "skip graph"))
        rows.append(measure_baseline(_structure("skipnet", keys, seed=seed), "SkipNet"))
        rows.append(
            measure_baseline(_structure("non-skipgraph", keys, seed=seed), "NoN skip graph")
        )
        rows.append(measure_baseline(_structure("family-tree", keys, seed=seed), "family tree"))
        rows.append(
            measure_baseline(_structure("det-skipnet", keys, seed=seed), "deterministic SkipNet")
        )
        rows.append(
            measure_baseline(_structure("bucket-skipgraph", keys, seed=seed), "bucket skip graph")
        )

        # skip-web (this paper)
        web = _structure("skipweb1d", keys, seed=seed)
        query_costs = [web.nearest(q).messages for q in queries]
        update_costs = [web.insert(key).messages for key in update_keys]
        congestion = web.congestion()
        rows.append(
            {
                "method": "skip-web (this paper)",
                "n": n,
                "H": web.host_count,
                "M_max": web.max_memory_per_host(),
                "C_max": round(congestion.max_congestion, 1),
                "Q_mean": round(mean(query_costs), 2),
                "U_mean": round(mean(update_costs), 2),
            }
        )

        # bucket skip-web (this paper)
        bucket = _structure("bucket-skipweb1d", keys, memory_size=bucket_memory, seed=seed)
        query_costs = [bucket.nearest(q, origin_key=rng.choice(keys)).messages for q in queries]
        update_costs = [
            bucket.insert(key).messages for key in update_keys[: max(2, updates_per_size // 2)]
        ]
        congestion = bucket.congestion()
        rows.append(
            {
                "method": "bucket skip-web (this paper)",
                "n": n,
                "H": bucket.host_count,
                "M_max": bucket.max_memory_per_host(),
                "C_max": round(congestion.max_congestion, 1),
                "Q_mean": round(mean(query_costs), 2),
                "U_mean": round(mean(update_costs), 2),
            }
        )

        # Chord: exact-match lookups only (richer queries unsupported, §1.2).
        chord = _structure("chord", keys)
        lookup_costs = [
            chord.lookup(key).messages
            for key in rng.sample(keys, min(len(keys), queries_per_size))
        ]
        rows.append(
            {
                "method": "Chord DHT (exact match only)",
                "n": n,
                "H": chord.host_count,
                "M_max": chord.max_memory_per_host(),
                "C_max": 0.0,
                "Q_mean": round(mean(lookup_costs), 2),
                "U_mean": 0.0,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 1 — the classic skip list
# --------------------------------------------------------------------- #
@_ledger
def fig1_skiplist(
    sizes: Sequence[int] = (128, 512, 2048, 8192),
    queries_per_size: int = 200,
    seed: int = 0,
) -> list[Row]:
    """Expected O(log n) search hops and O(n) total space for a skip list."""
    rows: list[Row] = []
    for n in sizes:
        rng = random.Random(seed + n)
        keys = uniform_keys(n, seed=seed + n)
        skiplist = SkipList(keys, seed=seed)
        queries = _query_points(queries_per_size, rng)
        hops = [skiplist.search(q).hops for q in queries]
        rows.append(
            {
                "n": n,
                "search_hops_mean": round(mean(hops), 2),
                "search_hops_max": max(hops),
                "levels": skiplist.height,
                "node_copies": skiplist.node_count(),
                "node_copies_per_key": round(skiplist.node_count() / n, 3),
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 2 — one-dimensional skip-web levels
# --------------------------------------------------------------------- #
@_ledger
def fig2_skipweb_levels(n: int = 256, queries: int = 60, seed: int = 0) -> list[Row]:
    """Level-structure statistics plus per-level query messages for a 1-d skip-web."""
    rng = random.Random(seed)
    keys = uniform_keys(n, seed=seed)
    web = _structure("skipweb1d", keys, seed=seed)
    rows: list[Row] = []
    per_level_messages: dict[int, list[int]] = {}
    for _ in range(queries):
        result = web.nearest(rng.uniform(0, 1_000_000))
        for depth, messages in enumerate(result.per_level_messages):
            per_level_messages.setdefault(depth, []).append(messages)
    for level in range(web.web.height, -1, -1):
        prefixes = web.web.level_prefixes(level)
        sizes = [len(web.web.level_structure(level, prefix).items) for prefix in prefixes]
        descent_index = web.web.height - level
        messages = per_level_messages.get(descent_index, [0])
        rows.append(
            {
                "level": level,
                "sets": len(prefixes),
                "largest_set": max(sizes) if sizes else 0,
                "mean_set": round(mean(sizes), 2) if sizes else 0,
                "msgs_at_level_mean": round(mean(messages), 2),
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Set-halving lemmas (Lemma 1, 3, 4, 5 / Figures 3 and 4)
# --------------------------------------------------------------------- #
@_ledger
def lemma1_list(
    sizes: Sequence[int] = (64, 256, 1024),
    trials: int = 12,
    queries_per_size: int = 30,
    seed: int = 0,
) -> list[Row]:
    """Lemma 1: E[|C(Q, S)|] stays O(1) (paper's closed-form bound: 7)."""
    rows: list[Row] = []
    for n in sizes:
        rng = random.Random(seed + n)
        keys = [float(k) for k in uniform_keys(n, seed=seed + n)]
        report = verify_halving(
            SortedListStructure,
            keys,
            queries=_query_points(queries_per_size, rng),
            trials=trials,
            rng=rng,
        )
        rows.append(
            {
                "n": n,
                "mean_conflicts": round(report.mean_conflicts, 2),
                "p99_conflicts": report.p99_conflicts,
                "max_conflicts": report.max_conflicts,
            }
        )
    return rows


@_ledger
def fig3_quadtree(
    sizes: Sequence[int] = (64, 256, 1024),
    trials: int = 8,
    queries_per_size: int = 25,
    dimension: int = 2,
    seed: int = 0,
) -> list[Row]:
    """Lemma 3 / Figure 3: quadtree halving — per-level descent work is O(1)."""
    cube = HyperCube(tuple(0.0 for _ in range(dimension)), 1.0)
    rows: list[Row] = []
    for n in sizes:
        rng = random.Random(seed + n)
        points = uniform_points(n, dimension=dimension, seed=seed + n)
        full = CompressedQuadtree(points, cube)
        samples: list[int] = []
        for _ in range(trials):
            half_points = sample_half(points, rng) or points[:1]
            half = CompressedQuadtree(half_points, cube)
            for _ in range(queries_per_size):
                query = tuple(rng.random() for _ in range(dimension))
                samples.append(descent_conflicts(full, half, query))
        rows.append(
            {
                "n": n,
                "dimension": dimension,
                "tree_depth": full.depth(),
                "mean_conflicts": round(mean(samples), 2),
                "max_conflicts": max(samples),
            }
        )
    return rows


@_ledger
def lemma4_trie(
    sizes: Sequence[int] = (64, 256, 1024),
    trials: int = 8,
    queries_per_size: int = 25,
    seed: int = 0,
) -> list[Row]:
    """Lemma 4: trie halving — E[|C(Q, S)|] stays O(1)."""
    rows: list[Row] = []
    for n in sizes:
        rng = random.Random(seed + n)
        reads = dna_reads(n, seed=seed + n)
        queries = dna_reads(queries_per_size, seed=seed + n + 1)
        report = verify_halving(
            TrieStructure, reads, queries=queries, trials=trials, rng=rng, alphabet=DNA
        )
        rows.append(
            {
                "n": n,
                "mean_conflicts": round(report.mean_conflicts, 2),
                "p99_conflicts": report.p99_conflicts,
                "max_conflicts": report.max_conflicts,
            }
        )
    return rows


@_ledger
def fig4_trapezoid(
    sizes: Sequence[int] = (16, 32, 64),
    trials: int = 6,
    queries_per_size: int = 20,
    seed: int = 0,
) -> list[Row]:
    """Lemma 5 / Figure 4: trapezoidal-map halving — E[|C(Q, S)|] stays O(1)."""
    rows: list[Row] = []
    for n in sizes:
        rng = random.Random(seed + n)
        segments = non_crossing_segments(n, seed=seed + n)
        box = bounding_box(segments)
        queries = [
            (rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3]))
            for _ in range(queries_per_size)
        ]
        report = verify_halving(
            TrapezoidalMapStructure,
            segments,
            queries=queries,
            trials=trials,
            rng=rng,
            box=box,
        )
        rows.append(
            {
                "n": n,
                "mean_conflicts": round(report.mean_conflicts, 2),
                "p99_conflicts": report.p99_conflicts,
                "max_conflicts": report.max_conflicts,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Theorem 2 — query message complexity
# --------------------------------------------------------------------- #
@_ledger
def theorem2_multidim(
    sizes: Sequence[int] = (64, 128, 256),
    queries_per_size: int = 25,
    seed: int = 0,
) -> list[Row]:
    """O(log n) query messages for quadtree, trie and trapezoid skip-webs."""
    rows: list[Row] = []
    for n in sizes:
        rng = random.Random(seed + n)

        points = uniform_points(n, dimension=2, seed=seed + n)
        quad_web = _structure(
            "skipquadtree", points, bounding_cube=HyperCube((0.0, 0.0), 1.0), seed=seed
        )
        quad_costs = [
            quad_web.locate((rng.random(), rng.random())).messages
            for _ in range(queries_per_size)
        ]
        rows.append(
            {
                "structure": "quadtree skip-web",
                "n": n,
                "Q_mean": round(mean(quad_costs), 2),
                "Q_max": max(quad_costs),
                "M_max": quad_web.max_memory_per_host(),
                "H": quad_web.host_count,
            }
        )

        strings = random_strings(n, alphabet=LOWERCASE, seed=seed + n)
        trie_web = _structure("skiptrie", strings, alphabet=LOWERCASE, seed=seed)
        trie_costs = [
            trie_web.locate(query).messages
            for query in prefix_queries(strings, queries_per_size, seed=seed + n)
        ]
        rows.append(
            {
                "structure": "trie skip-web",
                "n": n,
                "Q_mean": round(mean(trie_costs), 2),
                "Q_max": max(trie_costs),
                "M_max": trie_web.max_memory_per_host(),
                "H": trie_web.host_count,
            }
        )

        segment_count = max(8, n // 8)
        segments = non_crossing_segments(segment_count, seed=seed + n)
        box = bounding_box(segments)
        trapezoid_web = _structure("skiptrapezoid", segments, box=box, seed=seed)
        trapezoid_costs = [
            trapezoid_web.locate(
                (rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3]))
            ).messages
            for _ in range(queries_per_size)
        ]
        rows.append(
            {
                "structure": "trapezoid skip-web",
                "n": segment_count,
                "Q_mean": round(mean(trapezoid_costs), 2),
                "Q_max": max(trapezoid_costs),
                "M_max": trapezoid_web.max_memory_per_host(),
                "H": trapezoid_web.host_count,
            }
        )
    return rows


@_ledger
def theorem2_onedim(
    sizes: Sequence[int] = (128, 512, 2048),
    memory_sizes: Sequence[int] = (16, 64, 256),
    queries_per_size: int = 40,
    seed: int = 0,
) -> list[Row]:
    """1-d skip-web vs bucket skip-web: O(log n) vs O(log_M H) query messages."""
    rows: list[Row] = []
    for n in sizes:
        rng = random.Random(seed + n)
        keys = uniform_keys(n, seed=seed + n)
        queries = _query_points(queries_per_size, rng)

        web = _structure("skipweb1d", keys, seed=seed)
        costs = [web.nearest(q).messages for q in queries]
        rows.append(
            {
                "structure": "skip-web 1-d",
                "n": n,
                "M": web.max_memory_per_host(),
                "H": web.host_count,
                "Q_mean": round(mean(costs), 2),
                "Q_max": max(costs),
            }
        )
        for memory in memory_sizes:
            bucket = _structure("bucket-skipweb1d", keys, memory_size=memory, seed=seed)
            costs = [bucket.nearest(q, origin_key=rng.choice(keys)).messages for q in queries]
            rows.append(
                {
                    "structure": f"bucket skip-web (M={memory})",
                    "n": n,
                    "M": bucket.max_memory_per_host(),
                    "H": bucket.host_count,
                    "Q_mean": round(mean(costs), 2),
                    "Q_max": max(costs),
                }
            )
    return rows


# --------------------------------------------------------------------- #
# Output-sensitive range reporting (extension; O(log n + k) messages)
# --------------------------------------------------------------------- #
def _interval_queries_exact_k(
    sorted_keys: Sequence[float], k: int, count: int, rng: random.Random
) -> list[Interval]:
    """Intervals covering exactly ``k`` consecutive stored keys."""
    k = min(k, len(sorted_keys))
    queries = []
    for _ in range(count):
        start = rng.randrange(0, len(sorted_keys) - k + 1)
        queries.append(Interval(sorted_keys[start], sorted_keys[start + k - 1]))
    return queries


def _box_queries_near_k(points, k: int, count: int, rng: random.Random) -> list[Box]:
    """Chebyshev balls around stored points containing ≥ ``k`` points."""
    k = min(k, len(points))
    queries = []
    for _ in range(count):
        anchor = rng.choice(points)
        distances = sorted(
            max(abs(a - b) for a, b in zip(anchor, point)) for point in points
        )
        queries.append(Box.around_point(anchor, distances[k - 1] + 1e-9))
    return queries


def _prefix_queries_near_k(
    strings: Sequence[str], k: int, count: int, rng: random.Random
) -> list[PrefixRange]:
    """The longest prefix of a random stored string matching ≥ ``k`` strings."""
    k = min(k, len(strings))
    queries = []
    for _ in range(count):
        base = rng.choice(strings)
        chosen = ""
        for length in range(len(base), -1, -1):
            prefix = base[:length]
            if sum(1 for text in strings if text.startswith(prefix)) >= k:
                chosen = prefix
                break
        queries.append(PrefixRange(chosen))
    return queries


def _window_queries_near_k(
    trapezoids, box, k: int, count: int, rng: random.Random
) -> list[Window]:
    """Windows around trapezoid centres grown until ≥ ``k`` faces overlap."""
    k = min(k, len(trapezoids))
    x_span = box[1] - box[0]
    y_span = box[3] - box[2]
    queries = []
    for _ in range(count):
        center_x, center_y = rng.choice(trapezoids).center
        half_x, half_y = 0.02 * x_span, 0.02 * y_span
        while True:
            window = Window(
                max(box[0], center_x - half_x),
                min(box[1], center_x + half_x),
                max(box[2], center_y - half_y),
                min(box[3], center_y + half_y),
            )
            overlap = sum(
                1 for trapezoid in trapezoids if window.intersects(trapezoid)
            )
            full = (
                window.x_low <= box[0]
                and window.x_high >= box[1]
                and window.y_low <= box[2]
                and window.y_high >= box[3]
            )
            if overlap >= k or full:
                break
            half_x *= 1.6
            half_y *= 1.6
        queries.append(window)
    return queries


def _range_scenarios(n: int, bucket_memory: int, seed: int):
    """The six range-capable structures with their per-k query makers.

    Yields ``(name, cluster, size, make_queries)`` where ``cluster`` is
    the façade deployment, ``make_queries(k, count, rng)`` draws
    ``count`` ranges with output size near ``k``, and ``size`` is the
    structure's own ground-set size (the trapezoid web is built over
    fewer segments than ``n``).
    """
    keys = uniform_keys(n, seed=seed + n)
    sorted_keys = sorted(set(float(key) for key in keys))
    yield (
        "skip-web 1-d",
        _cluster("skipweb1d", keys, seed=seed),
        n,
        lambda k, count, rng: _interval_queries_exact_k(sorted_keys, k, count, rng),
    )
    yield (
        f"bucket skip-web (M={bucket_memory})",
        _cluster("bucket-skipweb1d", keys, memory_size=bucket_memory, seed=seed),
        n,
        lambda k, count, rng: _interval_queries_exact_k(sorted_keys, k, count, rng),
    )

    points = uniform_points(n, dimension=2, seed=seed + n)
    yield (
        "quadtree skip-web",
        _cluster("skipquadtree", points, bounding_cube=HyperCube((0.0, 0.0), 1.0), seed=seed),
        n,
        lambda k, count, rng: _box_queries_near_k(points, k, count, rng),
    )

    reads = dna_reads(n, seed=seed + n)
    yield (
        "trie skip-web",
        _cluster("skiptrie", reads, alphabet=DNA, seed=seed),
        n,
        lambda k, count, rng: _prefix_queries_near_k(reads, k, count, rng),
    )

    segment_count = max(8, n // 8)
    segments = non_crossing_segments(segment_count, seed=seed + n)
    box = bounding_box(segments)
    trapezoid_cluster = _cluster("skiptrapezoid", segments, box=box, seed=seed)
    trapezoids = trapezoid_cluster.structure.level0_map.trapezoids
    yield (
        "trapezoid skip-web",
        trapezoid_cluster,
        segment_count,
        lambda k, count, rng: _window_queries_near_k(trapezoids, box, k, count, rng),
    )

    yield (
        "skip graph (baseline)",
        _cluster("skipgraph", keys, seed=seed),
        n,
        lambda k, count, rng: _interval_queries_exact_k(sorted_keys, k, count, rng),
    )


@_ledger
def range_queries(
    sizes: Sequence[int] = (48, 96, 192),
    target_ks: Sequence[int] = (4, 16),
    queries_per_size: int = 6,
    bucket_memory: int = 32,
    seed: int = 0,
) -> list[Row]:
    """Output-sensitive range reporting across every instantiation (extension).

    For each structure and each target output size ``k``, seeded range
    queries (1-d intervals, boxes, DNA prefixes, planar windows) are run
    twice: immediately (one at a time) and as one concurrent batch
    through the round engine, from identical pinned origins — the two
    must charge identical message totals.  Rows report the measured
    output size, messages per operation in both modes, and the cost
    normalised by ``log2(n) + k``, which stays roughly flat when the
    O(log n + k) bound holds.  The Chord row documents that a hash-based
    overlay cannot answer these queries at all (§1.2).
    """
    rows: list[Row] = []
    for n in sizes:
        for name, cluster, size, make_queries in _range_scenarios(
            n, bucket_memory, seed
        ):
            origins = cluster.structure.origin_hosts()
            for k_target in target_ks:
                rng = random.Random(seed + n + 31 * k_target)
                queries = make_queries(k_target, queries_per_size, rng)
                pinned = [
                    origins[index % len(origins)] for index in range(len(queries))
                ]
                immediate_messages = []
                k_values = []
                for query, origin in zip(queries, pinned):
                    result = cluster.range(query, origin_host=origin).result()
                    immediate_messages.append(result.messages)
                    k_values.append(result.count)
                batch = cluster.batch(
                    [
                        Operation("range", query, origin_host=origin)
                        for query, origin in zip(queries, pinned)
                    ]
                )
                k_mean = mean(k_values)
                denominator = math.log2(max(2, size)) + k_mean
                rows.append(
                    {
                        "structure": name,
                        "n": size,
                        "k_target": k_target,
                        "supported": "yes",
                        "k_mean": round(k_mean, 1),
                        "msgs_per_op": round(mean(immediate_messages), 2),
                        "batched_msgs_per_op": round(
                            batch.messages / batch.ops, 2
                        ),
                        "rounds": batch.rounds,
                        "per_logn_plus_k": round(
                            mean(immediate_messages) / denominator, 2
                        ),
                    }
                )

        # Chord: range queries are impossible over a hash overlay (§1.2);
        # the façade reports that as a per-handle "unsupported" status.
        keys = uniform_keys(n, seed=seed + n)
        chord = _cluster("chord", keys)
        handle = chord.range(Interval(0.0, 1.0))
        supported = "no" if handle.unsupported else "yes"
        rows.append(
            {
                "structure": "Chord DHT",
                "n": n,
                "k_target": 0,
                "supported": supported,
                "k_mean": 0.0,
                "msgs_per_op": 0.0,
                "batched_msgs_per_op": 0.0,
                "rounds": 0,
                "per_logn_plus_k": 0.0,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# §4 — update costs
# --------------------------------------------------------------------- #
@_ledger
def update_costs(
    sizes: Sequence[int] = (64, 128, 256),
    updates_per_size: int = 10,
    seed: int = 0,
) -> list[Row]:
    """Insertion and deletion message costs for the skip-web structures."""
    rows: list[Row] = []
    for n in sizes:
        rng = random.Random(seed + n)
        keys = uniform_keys(n, seed=seed + n)
        web = _structure("skipweb1d", keys, seed=seed)
        inserts = [web.insert(rng.uniform(0, 1_000_000)).messages for _ in range(updates_per_size)]
        deletes = [web.delete(key).messages for key in rng.sample(keys, updates_per_size // 2 or 1)]
        rows.append(
            {
                "structure": "skip-web 1-d",
                "n": n,
                "insert_mean": round(mean(inserts), 2),
                "delete_mean": round(mean(deletes), 2),
            }
        )

        points = uniform_points(n, dimension=2, seed=seed + n)
        quad_web = _structure(
            "skipquadtree", points, bounding_cube=HyperCube((0.0, 0.0), 1.0), seed=seed
        )
        quad_inserts = [
            quad_web.insert((rng.random(), rng.random())).messages
            for _ in range(max(2, updates_per_size // 2))
        ]
        quad_deletes = [
            quad_web.delete(point).messages
            for point in rng.sample(points, max(1, updates_per_size // 4))
        ]
        rows.append(
            {
                "structure": "quadtree skip-web",
                "n": n,
                "insert_mean": round(mean(quad_inserts), 2),
                "delete_mean": round(mean(quad_deletes), 2),
            }
        )

        bucket = _structure("bucket-skipweb1d", keys, memory_size=32, seed=seed)
        bucket_inserts = [
            bucket.insert(rng.uniform(0, 1_000_000)).messages
            for _ in range(max(2, updates_per_size // 2))
        ]
        rows.append(
            {
                "structure": "bucket skip-web (M=32)",
                "n": n,
                "insert_mean": round(mean(bucket_inserts), 2),
                "delete_mean": 0.0,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Ablation: blocking strategies (§2.4 vs §2.4.1)
# --------------------------------------------------------------------- #
@_ledger
def ablation_blocking(
    n: int = 512,
    memory_sizes: Sequence[int] = (16, 64, 256),
    queries: int = 40,
    seed: int = 0,
) -> list[Row]:
    """Compare host-assignment policies for one-dimensional skip-webs."""
    rng = random.Random(seed)
    keys = uniform_keys(n, seed=seed)
    query_points = _query_points(queries, rng)
    rows: list[Row] = []
    for blocking in ("owner", "round_robin", "hash"):
        web = _structure("skipweb1d", keys, blocking=blocking, seed=seed)
        costs = [web.nearest(q).messages for q in query_points]
        congestion = web.congestion()
        rows.append(
            {
                "policy": f"arbitrary blocking ({blocking})",
                "n": n,
                "M_max": web.max_memory_per_host(),
                "C_max": round(congestion.max_congestion, 1),
                "Q_mean": round(mean(costs), 2),
            }
        )
    for memory in memory_sizes:
        bucket = _structure("bucket-skipweb1d", keys, memory_size=memory, seed=seed)
        costs = [bucket.nearest(q, origin_key=rng.choice(keys)).messages for q in query_points]
        rows.append(
            {
                "policy": f"bucket blocking (M={memory})",
                "n": n,
                "M_max": bucket.max_memory_per_host(),
                "C_max": round(bucket.congestion().max_congestion, 1),
                "Q_mean": round(mean(costs), 2),
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Batched execution: throughput and round congestion (repro.engine)
# --------------------------------------------------------------------- #
def _congestion_bound(n: int) -> float:
    """The paper's per-host per-round congestion scale: log n / log log n."""
    if n < 4:
        return 1.0
    return math.log2(n) / math.log2(math.log2(n))


def _mixed_operations(
    searches: Sequence[Any], inserts: Sequence[Any], rng: random.Random
) -> list[Operation]:
    """Shuffle a mixed batch of search and insert operations."""
    operations = [Operation("search", query) for query in searches]
    operations += [Operation("insert", item) for item in inserts]
    rng.shuffle(operations)
    return operations


def _throughput_row(
    structure: str, n: int, report: BatchReport, cache: str = "off"
) -> Row:
    attempts = report.cache_hits + report.cache_misses
    return {
        "structure": structure,
        "n": n,
        "cache": cache,
        "ops": report.ops,
        "completed": report.completed,
        "rounds": report.rounds,
        "ops_per_round": round(report.ops_per_round, 2),
        "msgs_per_op": round(report.messages_per_op, 2),
        "C_round_max": report.max_round_congestion,
        "retries": report.retries,
        "cache_hit_rate": round(report.cache_hits / attempts, 2) if attempts else 0.0,
    }


@_ledger
def throughput(
    sizes: Sequence[int] = (128, 256),
    ops_per_size: int = 400,
    insert_fraction: float = 0.12,
    seed: int = 0,
) -> list[Row]:
    """Batched mixed workloads (queries + inserts) through the round engine.

    For each size, three structure types (1-d, quadtree, trie skip-webs)
    each execute a shuffled batch of ``ops_per_size`` operations
    concurrently under :class:`repro.engine.executor.BatchExecutor`; a
    fourth pair of rows shows the 1-d structure with the per-origin route
    cache cold versus warm.  Rows report throughput (ops per round),
    messages per operation and the directly-measured maximum per-host
    per-round congestion.

    Execution is two-phase: every unit's payloads are drawn serially
    from the one per-size ``rng`` (so the random streams are identical
    to the historical single-pass loop), then the independent units —
    cluster construction plus batch execution — run as forked workers
    via :func:`_run_units`.  Counters are process-local, so the rows are
    byte-identical to serial execution.
    """
    units: list[Callable[[], list[Row]]] = []
    for n in sizes:
        rng = random.Random(seed + n)
        insert_count = max(1, int(ops_per_size * insert_fraction))
        search_count = ops_per_size - insert_count

        keys = uniform_keys(n, seed=seed + n)
        web_operations = _mixed_operations(
            [rng.uniform(0.0, 1_000_000.0) for _ in range(search_count)],
            uniform_keys(insert_count, seed=seed + n + 1, low=1_000_001.0, high=2_000_000.0),
            rng,
        )

        def web_unit(n=n, keys=keys, operations=web_operations):
            web = _cluster("skipweb1d", keys, seed=seed)
            return [_throughput_row("skip-web 1-d", n, web.batch(operations))]

        units.append(web_unit)

        points = uniform_points(n, dimension=2, seed=seed + n)
        quad_operations = [
            operation
            for operation in _mixed_operations(
                [(rng.random(), rng.random()) for _ in range(search_count)],
                uniform_points(insert_count, dimension=2, seed=seed + n + 2),
                rng,
            )
            if operation.kind == "search" or operation.payload not in points
        ]

        def quad_unit(n=n, points=points, operations=quad_operations):
            quad_web = _cluster(
                "skipquadtree", points, bounding_cube=HyperCube((0.0, 0.0), 1.0), seed=seed
            )
            return [_throughput_row("quadtree skip-web", n, quad_web.batch(operations))]

        units.append(quad_unit)

        strings = random_strings(n, alphabet=LOWERCASE, seed=seed + n)
        fresh = [
            text
            for text in random_strings(2 * insert_count, alphabet=LOWERCASE, seed=seed + n + 3)
            if text not in strings
        ][:insert_count]
        trie_operations = _mixed_operations(
            prefix_queries(strings, search_count, seed=seed + n), fresh, rng
        )

        def trie_unit(n=n, strings=strings, operations=trie_operations):
            trie_web = _cluster("skiptrie", strings, alphabet=LOWERCASE, seed=seed)
            return [_throughput_row("trie skip-web", n, trie_web.batch(operations))]

        units.append(trie_unit)

        # Route cache: same cluster (one executor), cold batch then warm
        # batch.  Origin assignment is by batch index, so only the query
        # payloads consume the shared rng here.
        cache_payloads = [rng.uniform(0.0, 1_000_000.0) for _ in range(search_count)]

        def cache_unit(n=n, keys=keys, payloads=cache_payloads):
            cached_web = _cluster("skipweb1d", keys, seed=seed, route_cache=True)
            origins = cached_web.structure.origin_hosts()
            cache_queries = [
                Operation(
                    "search",
                    payload,
                    origin_host=origins[index % max(1, len(origins) // 8)],
                )
                for index, payload in enumerate(payloads)
            ]
            return [
                _throughput_row("skip-web 1-d", n, cached_web.batch(cache_queries), cache="cold"),
                _throughput_row("skip-web 1-d", n, cached_web.batch(cache_queries), cache="warm"),
            ]

        units.append(cache_unit)

    return [row for unit_rows in _run_units(units) for row in unit_rows]


@_ledger
def congestion_rounds(
    sizes: Sequence[int] = (64, 128, 256, 512),
    queries_per_host: int = 1,
    seed: int = 0,
) -> list[Row]:
    """Directly-measured per-host per-round congestion of concurrent queries.

    Every host originates ``queries_per_host`` simultaneous queries
    against a 1-d skip-web — the paper's concurrent-access regime — and
    the batch executor reports the worst number of messages any host had
    to absorb in any round, which Theorem 2 bounds by
    O(log n / log log n) w.h.p.  The ``ratio`` column divides the
    measurement by that scale; it should stay roughly flat as ``n`` grows.
    """
    rows: list[Row] = []
    for n in sizes:
        rng = random.Random(seed + n)
        keys = uniform_keys(n, seed=seed + n)
        web = _cluster("skipweb1d", keys, seed=seed)
        operations = [
            Operation("search", rng.uniform(0.0, 1_000_000.0), origin_host=host)
            for host in web.structure.origin_hosts()
            for _ in range(queries_per_host)
        ]
        result = web.batch(operations)
        report = result.round_congestion()
        bound = _congestion_bound(n)
        rows.append(
            {
                "n": n,
                "hosts": web.structure.host_count,
                "ops": result.ops,
                "rounds": result.rounds,
                "msgs_per_op": round(result.messages_per_op, 2),
                "max_host_round_load": report.max_host_round_load,
                "mean_round_max": round(report.mean_round_max, 2),
                "logn_loglogn": round(bound, 2),
                "ratio": round(report.max_host_round_load / bound, 2),
            }
        )
    return rows


def _churn_scenarios(n: int, seed: int, **cluster_kwargs: Any):
    """The five structures a churn schedule runs over, with query makers.

    Yields ``(name, cluster, make_query)`` where ``make_query(rng)``
    draws one search payload for the structure's domain.  Extra keyword
    arguments (e.g. ``topology=``) are forwarded to every
    :func:`_cluster` call, so other experiments can deploy the same
    scenario set under a different configuration.
    """
    keys = uniform_keys(n, seed=seed + n)
    yield (
        "skip-web 1-d",
        _cluster("skipweb1d", keys, seed=seed, **cluster_kwargs),
        lambda rng: rng.uniform(0.0, 1_000_000.0),
    )

    points = uniform_points(n, dimension=2, seed=seed + n)
    yield (
        "quadtree skip-web",
        _cluster(
            "skipquadtree",
            points,
            bounding_cube=HyperCube((0.0, 0.0), 1.0),
            seed=seed,
            **cluster_kwargs,
        ),
        lambda rng: (rng.random(), rng.random()),
    )

    strings = random_strings(n, alphabet=LOWERCASE, seed=seed + n)
    trie_queries = prefix_queries(strings, 4 * n, seed=seed + n)
    yield (
        "trie skip-web",
        _cluster("skiptrie", strings, alphabet=LOWERCASE, seed=seed, **cluster_kwargs),
        lambda rng: rng.choice(trie_queries),
    )

    segment_count = max(8, n // 8)
    segments = non_crossing_segments(segment_count, seed=seed + n)
    box = bounding_box(segments)
    yield (
        "trapezoid skip-web",
        _cluster("skiptrapezoid", segments, box=box, seed=seed, **cluster_kwargs),
        lambda rng: (rng.uniform(box[0], box[1]), rng.uniform(box[2], box[3])),
    )

    yield (
        "Chord DHT",
        _cluster("chord", keys, seed=seed, **cluster_kwargs),
        lambda rng: rng.choice(keys),
    )


@_ledger
def churn(
    sizes: Sequence[int] = (64,),
    events: int = 6,
    ops_per_phase: int = 40,
    seed: int = 0,
) -> list[Row]:
    """Live join/leave/crash schedules with self-repair (beyond the paper).

    Each structure serves ``events + 1`` batched query phases through the
    round engine, with one churn event (join, graceful leave, or crash
    followed by self-repair) applied between consecutive phases.  Rows
    report the sustained query health (completed ops, post-churn messages
    per op), the repair traffic per churn event, and the worst per-host
    per-round congestion observed across *both* query and repair rounds —
    the cost of staying available while the membership moves underneath.
    """
    rows: list[Row] = []
    for n in sizes:
        for name, cluster, make_query in _churn_scenarios(n, seed):
            rng = random.Random(seed + n)
            cluster.configure_churn(rng=rng)
            schedule = churn_schedule(events, rng)
            hosts_start = len(cluster.network.alive_host_ids())

            completed = 0
            failed = 0
            congestion = 0
            batch = None
            for phase in range(events + 1):
                operations = [
                    Operation("search", make_query(rng)) for _ in range(ops_per_phase)
                ]
                batch = cluster.batch(operations)
                completed += batch.completed
                failed += batch.failed
                congestion = max(congestion, batch.max_round_congestion)
                if phase < events:
                    try:
                        event = cluster.run_churn_schedule([schedule[phase]])[0]
                    except ChurnError:
                        # The schedule drew a retirement the controller's
                        # min-hosts floor refuses (tiny --sizes); a join
                        # keeps the scenario running deterministically.
                        event = cluster.join_host()
                    congestion = max(congestion, event.max_round_congestion)

            kinds = [event.kind for event in cluster.churn_events]
            repair_messages = [event.repair_messages for event in cluster.churn_events]
            rows.append(
                {
                    "structure": name,
                    "n": n,
                    "events": events,
                    "joins": kinds.count("join"),
                    "leaves": kinds.count("leave"),
                    "crashes": kinds.count("crash"),
                    "hosts_start": hosts_start,
                    "hosts_end": len(cluster.network.alive_host_ids()),
                    "records_moved": sum(
                        event.records_moved for event in cluster.churn_events
                    ),
                    "repair_msgs_per_event": round(mean(repair_messages), 2)
                    if repair_messages
                    else 0.0,
                    "completed": completed,
                    "failed": failed,
                    "msgs_per_op": round(batch.messages_per_op, 2),
                    "C_round_max": congestion,
                }
            )
    return rows


@_ledger
def topology_comparison(
    sizes: Sequence[int] = (64,),
    ops: int = 48,
    seed: int = 0,
    topologies: Sequence[str] = ("flat", "clustered", "geo"),
) -> list[Row]:
    """Flat vs clustered vs geo link-cost models over identical traffic.

    Each of the five churn-scenario structures (four skip-web
    instantiations plus the Chord baseline) executes the *same* seeded
    query batch once per topology.  Routing never consults link costs,
    so the ``msgs`` column is invariant across topologies — what changes
    is what the traffic *costs*: the weighted ``latency`` (sum of link
    costs over charged hops), the worst per-link per-round load and the
    worst per-host per-round load.  Under ``flat`` every link costs 1,
    so ``latency == msgs`` is a built-in sanity check; ``clustered``
    penalises the inter-cluster hops an oblivious structure keeps
    taking, and ``geo`` prices every region pair differently from a
    seeded weight matrix.
    """
    rows: list[Row] = []
    for n in sizes:
        for topology in topologies:
            for name, cluster, make_query in _churn_scenarios(n, seed, topology=topology):
                rng = random.Random(seed + n)
                operations = [Operation("search", make_query(rng)) for _ in range(ops)]
                report = cluster.batch(operations)
                congestion = report.round_congestion()
                rows.append(
                    {
                        "structure": name,
                        "topology": topology,
                        "n": n,
                        "ops": report.ops,
                        "completed": report.completed,
                        "rounds": report.rounds,
                        "msgs": report.messages,
                        "max_host_round_load": congestion.max_host_round_load,
                        "max_link_round_load": congestion.max_link_round_load,
                        "latency": report.latency,
                        "latency_per_op": round(report.latency_per_op, 2),
                    }
                )
    rows.sort(key=lambda row: (row["n"], row["structure"], row["topology"]))
    return rows


@_ledger
def fault_tolerance(
    sizes: Sequence[int] = (48,),
    ops: int = 48,
    seed: int = 0,
    drop_rates: Sequence[float] = (0.0, 0.1, 0.3),
) -> list[Row]:
    """Delivered-ops ratio and retry overhead under seeded message loss.

    Each of the five churn-scenario structures (four skip-web
    instantiations plus the Chord baseline) executes the *same* seeded
    query batch once per drop rate, under a
    :class:`~repro.net.faults.FaultPlan` that drops each query delivery
    with the given probability.  The executors retry dropped operations
    with deterministic linear backoff up to ``max_retries`` times, so
    the ``delivered_ratio`` column tells the self-healing story: 1.0 at
    rate 0 (a built-in sanity check), held near 1.0 at moderate loss by
    spending ``retry_overhead`` extra attempts, and degrading into
    ``gave_up`` handles once sustained loss outruns the retry budget.
    After the batch, one seeded crash event per cluster measures the
    repair traffic; drop rules are scoped to ``message_kind="query"``,
    so repair traffic is never faulted and the ``repair_msgs`` column
    stays comparable across rates.
    """
    from repro.net.faults import FaultPlan, drop

    rows: list[Row] = []
    for n in sizes:
        for rate in drop_rates:
            for name, cluster, make_query in _churn_scenarios(
                n,
                seed,
                faults=FaultPlan(
                    [drop(probability=rate, message_kind="query")], seed=seed
                ),
            ):
                rng = random.Random(seed + n)
                operations = [Operation("search", make_query(rng)) for _ in range(ops)]
                report = cluster.batch(operations)
                log = cluster.network.message_log
                dropped = log.dropped
                event = cluster.crash_host()
                rows.append(
                    {
                        "structure": name,
                        "drop_rate": rate,
                        "n": n,
                        "ops": report.ops,
                        "delivered": report.completed,
                        "delivered_ratio": round(report.completed / report.ops, 3),
                        "retries": report.retries,
                        "retry_overhead": round(report.retries / report.ops, 3),
                        "gave_up": report.gave_up,
                        "rounds": report.rounds,
                        "msgs_per_op": round(report.messages_per_op, 2),
                        "dropped": dropped,
                        "repair_msgs": event.repair_messages,
                    }
                )
    rows.sort(key=lambda row: (row["n"], row["structure"], row["drop_rate"]))
    return rows


#: Registry used by the CLI: name -> (function, short description).
EXPERIMENTS: dict[str, tuple[Callable[..., list[Row]], str]] = {
    "table1": (table1_comparison, "Table 1: cost comparison of all methods"),
    "fig1": (fig1_skiplist, "Figure 1: classic skip list search/space"),
    "fig2": (fig2_skipweb_levels, "Figure 2: 1-d skip-web level structure"),
    "fig3": (fig3_quadtree, "Figure 3 / Lemma 3: quadtree set-halving"),
    "fig4": (fig4_trapezoid, "Figure 4 / Lemma 5: trapezoidal-map set-halving"),
    "lemma1": (lemma1_list, "Lemma 1: sorted-list set-halving"),
    "lemma4": (lemma4_trie, "Lemma 4: trie set-halving"),
    "theorem2-multidim": (theorem2_multidim, "Theorem 2: multi-dimensional query costs"),
    "theorem2-onedim": (theorem2_onedim, "Theorem 2 / §2.4.1: 1-d query costs"),
    "range-queries": (range_queries, "Output-sensitive O(log n + k) range reporting"),
    "updates": (update_costs, "§4: update message costs"),
    "ablation-blocking": (ablation_blocking, "Ablation: blocking strategies"),
    "throughput": (throughput, "Batched mixed workloads through the round engine"),
    "congestion-rounds": (congestion_rounds, "Max per-host per-round congestion"),
    "churn": (churn, "Live join/leave/crash with self-repair"),
    "topology": (topology_comparison, "Flat vs clustered vs geo link-cost models"),
    "faults": (fault_tolerance, "Delivered-ops ratio under seeded message loss"),
}
