"""Experiment harness: growth-law fitting, reporting and the experiment registry.

Every table and figure of the paper has a corresponding function in
:mod:`repro.bench.experiments`; the ``benchmarks/`` pytest modules and the
``python -m repro.cli`` entry point are both thin wrappers around those
functions, so the numbers printed by either route are identical.
"""

from repro.bench.fitting import GROWTH_LAWS, FitResult, best_growth_law, fit_scale
from repro.bench.reporting import format_series, format_table
from repro.bench import experiments

__all__ = [
    "GROWTH_LAWS",
    "FitResult",
    "best_growth_law",
    "fit_scale",
    "format_table",
    "format_series",
    "experiments",
]
