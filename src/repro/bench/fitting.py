"""Growth-law fitting.

The paper's results are asymptotic, so "reproducing" a row of Table 1
means checking which growth law a measured cost follows as ``n`` grows.
:func:`fit_scale` fits the single scale constant of a candidate law by
least squares and reports the relative error; :func:`best_growth_law`
picks the best-fitting law among the candidates that appear in the paper
(``1``, ``log n``, ``log n / log log n``, ``log² n``, ``n``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

GrowthLaw = Callable[[float], float]


def _safe_log2(value: float) -> float:
    return math.log2(max(2.0, value))


GROWTH_LAWS: dict[str, GrowthLaw] = {
    "1": lambda n: 1.0,
    "log n": lambda n: _safe_log2(n),
    "log n / log log n": lambda n: _safe_log2(n) / max(1.0, math.log2(_safe_log2(n))),
    "log^2 n": lambda n: _safe_log2(n) ** 2,
    "sqrt n": lambda n: math.sqrt(max(1.0, n)),
    "n": lambda n: float(n),
}
"""The candidate growth laws used throughout the paper's tables."""


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one growth law to a measured series."""

    law: str
    scale: float
    relative_error: float

    def predict(self, n: float) -> float:
        return self.scale * GROWTH_LAWS[self.law](n)


def fit_scale(sizes: Sequence[float], values: Sequence[float], law: str) -> FitResult:
    """Least-squares fit of ``values ≈ scale · law(sizes)``.

    The reported ``relative_error`` is the root-mean-square of the
    relative residuals, so 0.05 means the law explains the series to
    within about 5 %.
    """
    if len(sizes) != len(values) or not sizes:
        raise ValueError("sizes and values must be non-empty and of equal length")
    basis = [GROWTH_LAWS[law](size) for size in sizes]
    denominator = sum(b * b for b in basis)
    scale = sum(b * v for b, v in zip(basis, values)) / denominator if denominator else 0.0
    residuals = []
    for b, v in zip(basis, values):
        predicted = scale * b
        reference = abs(v) if v else 1.0
        residuals.append(((v - predicted) / reference) ** 2)
    return FitResult(
        law=law, scale=scale, relative_error=math.sqrt(sum(residuals) / len(residuals))
    )


def best_growth_law(
    sizes: Sequence[float],
    values: Sequence[float],
    candidates: Sequence[str] = ("1", "log n", "log n / log log n", "log^2 n"),
) -> FitResult:
    """The candidate law with the smallest relative error on the series."""
    fits = [fit_scale(sizes, values, law) for law in candidates]
    return min(fits, key=lambda fit: fit.relative_error)


def growth_ratio(sizes: Sequence[float], values: Sequence[float]) -> float:
    """``values[-1] / values[0]`` — a crude but readable growth indicator."""
    if not values or values[0] == 0:
        return float("inf")
    return values[-1] / values[0]
