"""Character strings over fixed alphabets: compressed tries and their skip-webs.

Section 3.2 of the paper builds skip-webs over compressed digital tries:

* :mod:`repro.strings.alphabet` — fixed alphabets (binary, DNA, ASCII
  subsets) and validation helpers.
* :mod:`repro.strings.trie` — the compressed trie (PATRICIA-style) over a
  set of strings, a range-determined link structure whose ranges are sets
  of prefixes along root paths.
* :mod:`repro.strings.skip_trie` — the distributed skip-web over the
  trie: prefix searches for an arbitrary string in ``O(log n)`` expected
  messages even when the underlying trie has depth ``O(n)`` (Lemma 4 and
  Theorem 2).
"""

from repro.strings.alphabet import Alphabet, BINARY, DNA, LOWERCASE, PRINTABLE
from repro.strings.trie import CompressedTrie, TrieNode
from repro.strings.skip_trie import PrefixRange, SkipTrieWeb, TrieStructure, TrieRange

__all__ = [
    "Alphabet",
    "BINARY",
    "DNA",
    "LOWERCASE",
    "PRINTABLE",
    "CompressedTrie",
    "TrieNode",
    "PrefixRange",
    "SkipTrieWeb",
    "TrieStructure",
    "TrieRange",
]

from repro.api.registry import StructureSpec, register_structure


def _skiptrie(items, *, network=None, seed=0, hosts=None, **options):
    return SkipTrieWeb(items, network=network, host_count=hosts, seed=seed, **options)


def _skiptrie_bulk(items, *, network=None, seed=0, hosts=None, **options):
    return SkipTrieWeb.build_from_sorted(
        items, network=network, host_count=hosts, seed=seed, **options
    )


register_structure(
    StructureSpec(
        name="skiptrie",
        cls=SkipTrieWeb,
        factory=_skiptrie,
        bulk_factory=_skiptrie_bulk,
        description="skip-web over a compressed digital trie (§3.2, Lemma 4)",
    )
)
