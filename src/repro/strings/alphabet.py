"""Fixed alphabets for digital tries.

The paper's trie results hold "for a fixed alphabet" — the branching
factor of the trie must be a constant.  :class:`Alphabet` captures that
constant, validates inputs, and provides the common alphabets used by the
examples and benchmarks (binary, DNA, lowercase ASCII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Alphabet:
    """An ordered, fixed set of symbols.

    The ordering matters only for deterministic iteration (trie children
    are visited in alphabet order), not for any comparison semantics.
    """

    name: str
    symbols: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.symbols:
            raise ValueError("an alphabet needs at least one symbol")
        if any(len(symbol) != 1 for symbol in self.symbols):
            raise ValueError("alphabet symbols must be single characters")
        if len(set(self.symbols)) != len(self.symbols):
            raise ValueError("alphabet symbols must be distinct")

    @property
    def size(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self.symbols

    def validate_string(self, value: str) -> str:
        """Return ``value`` if every character belongs to the alphabet."""
        for character in value:
            if character not in self.symbols:
                raise ValueError(
                    f"character {character!r} of {value!r} is not in alphabet {self.name}"
                )
        return value

    def validate_strings(self, values: Iterable[str]) -> list[str]:
        """Validate a collection of strings, returning them as a list."""
        return [self.validate_string(value) for value in values]

    def index(self, symbol: str) -> int:
        """Position of ``symbol`` within the alphabet (deterministic ordering)."""
        return self.symbols.index(symbol)

    def sort_key(self, value: str) -> tuple[int, ...]:
        """A sort key consistent with the alphabet order."""
        return tuple(self.index(character) for character in value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Alphabet({self.name!r}, size={self.size})"


def alphabet_from_symbols(name: str, symbols: Sequence[str]) -> Alphabet:
    """Build an alphabet from any sequence of single-character symbols."""
    return Alphabet(name=name, symbols=tuple(symbols))


BINARY = Alphabet(name="binary", symbols=("0", "1"))
"""The two-symbol alphabet used by membership-vector style strings."""

DNA = Alphabet(name="dna", symbols=("A", "C", "G", "T"))
"""The four-nucleotide alphabet of the DNA database motivating example."""

LOWERCASE = Alphabet(name="lowercase", symbols=tuple("abcdefghijklmnopqrstuvwxyz"))
"""Lowercase ASCII letters — file names, titles and similar identifiers."""

PRINTABLE = Alphabet(
    name="printable",
    symbols=tuple("0123456789abcdefghijklmnopqrstuvwxyz-_."),
)
"""Digits, lowercase letters and common separators — ISBN-like keys."""
