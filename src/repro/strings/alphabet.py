"""Fixed alphabets for digital tries.

The paper's trie results hold "for a fixed alphabet" — the branching
factor of the trie must be a constant.  :class:`Alphabet` captures that
constant, validates inputs, and provides the common alphabets used by the
examples and benchmarks (binary, DNA, lowercase ASCII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Alphabet:
    """An ordered, fixed set of symbols.

    The ordering matters only for deterministic iteration (trie children
    are visited in alphabet order), not for any comparison semantics.
    """

    name: str
    symbols: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.symbols:
            raise ValueError("an alphabet needs at least one symbol")
        if any(len(symbol) != 1 for symbol in self.symbols):
            raise ValueError("alphabet symbols must be single characters")
        if len(set(self.symbols)) != len(self.symbols):
            raise ValueError("alphabet symbols must be distinct")
        # O(1) symbol → position lookups (the dataclass is frozen, so the
        # derived index is attached via object.__setattr__; it is not a
        # field and does not participate in equality or hashing).
        object.__setattr__(
            self, "_positions", {symbol: i for i, symbol in enumerate(self.symbols)}
        )

    @property
    def size(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._positions

    def validate_string(self, value: str) -> str:
        """Return ``value`` if every character belongs to the alphabet."""
        positions = self._positions
        for character in value:
            if character not in positions:
                raise ValueError(
                    f"character {character!r} of {value!r} is not in alphabet {self.name}"
                )
        return value

    def validate_strings(self, values: Iterable[str]) -> list[str]:
        """Validate a collection of strings, returning them as a list."""
        return [self.validate_string(value) for value in values]

    def index(self, symbol: str) -> int:
        """Position of ``symbol`` within the alphabet (deterministic ordering)."""
        try:
            return self._positions[symbol]
        except KeyError:
            # Preserve the tuple.index error type for unknown symbols.
            return self.symbols.index(symbol)

    def sort_key(self, value: str) -> tuple[int, ...]:
        """A sort key consistent with the alphabet order."""
        positions = self._positions
        try:
            return tuple(positions[character] for character in value)
        except KeyError:
            # Preserve the tuple.index error type for unknown symbols.
            return tuple(self.symbols.index(character) for character in value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Alphabet({self.name!r}, size={self.size})"


def alphabet_from_symbols(name: str, symbols: Sequence[str]) -> Alphabet:
    """Build an alphabet from any sequence of single-character symbols."""
    return Alphabet(name=name, symbols=tuple(symbols))


BINARY = Alphabet(name="binary", symbols=("0", "1"))
"""The two-symbol alphabet used by membership-vector style strings."""

DNA = Alphabet(name="dna", symbols=("A", "C", "G", "T"))
"""The four-nucleotide alphabet of the DNA database motivating example."""

LOWERCASE = Alphabet(name="lowercase", symbols=tuple("abcdefghijklmnopqrstuvwxyz"))
"""Lowercase ASCII letters — file names, titles and similar identifiers."""

PRINTABLE = Alphabet(
    name="printable",
    symbols=tuple("0123456789abcdefghijklmnopqrstuvwxyz-_."),
)
"""Digits, lowercase letters and common separators — ISBN-like keys."""
