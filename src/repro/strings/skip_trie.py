"""Skip-webs over compressed tries (§3.2, Lemma 4).

:class:`TrieStructure` adapts :class:`~repro.strings.trie.CompressedTrie`
to the range-determined link structure interface.  Following §2.1, the
range of a node ``v`` is the singleton containing the string spelled by
the root path to ``v``, and the range of the edge ``(v, w)`` is the set
of strings ``x·y`` where ``x`` spells ``v`` and ``y`` is a non-empty
prefix of the edge label — i.e. the contiguous run of prefixes of ``w``'s
string that are longer than ``v``'s string.  Two ranges conflict exactly
when they share a prefix, which reduces to a longest-common-prefix test
(:class:`TrieRange`).

Lemma 4 (the set-halving lemma for tries) is verified empirically by
``benchmarks/bench_lemma4_trie_halving.py``.  :class:`SkipTrieWeb` is the
distributed structure: locating an arbitrary string — and hence prefix
search — in ``O(log n)`` expected messages even when the trie has depth
``O(n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

from repro.core.link_structure import RangeDeterminedLinkStructure, RangeUnit, UnitKind
from repro.core.query import QueryResult
from repro.core.ranges import Range
from repro.core.skipweb import SkipWeb, SkipWebConfig, SkipWebStructureAdapter
from repro.core.update import UpdateResult
from repro.errors import StructureError
from repro.net.congestion import CongestionReport
from repro.net.naming import HostId
from repro.net.network import Network
from repro.strings.alphabet import Alphabet, LOWERCASE
from repro.strings.trie import CompressedTrie, TrieNode, longest_common_prefix


@dataclass(frozen=True, slots=True)
class TrieRange:
    """The set of prefixes ``{high[:k] : low < k <= len(high)}``.

    ``low == len(high) - 1`` gives a node's singleton range; ``low`` equal
    to the parent's depth gives an edge's range.  Conflict (non-empty
    intersection) between two such prefix runs reduces to comparing the
    longest common prefix of the two ``high`` strings against both lower
    bounds.
    """

    low: int
    high: str

    def __post_init__(self) -> None:
        if not -1 <= self.low < len(self.high) or (self.high == "" and self.low != -1):
            if not (self.high == "" and self.low == -1):
                raise ValueError(f"invalid TrieRange(low={self.low}, high={self.high!r})")

    def contains(self, point: Any) -> bool:
        """Whether the string ``point`` is one of the prefixes in this range."""
        if not isinstance(point, str):
            return False
        return (
            self.low < len(point) <= len(self.high) and self.high.startswith(point)
        ) or (self.high == "" and point == "")

    def intersects(self, other: Range) -> bool:
        if isinstance(other, TrieRange):
            shared = len(longest_common_prefix(self.high, other.high))
            if self.high == "" and other.high == "":
                return True
            return shared > max(self.low, other.low)
        return other.intersects(self)

    def match_length(self, query: str) -> int:
        """How many characters of ``query`` this range can match."""
        # The common prefix is never longer than ``high`` itself, so its
        # length needs no clamping.
        return len(longest_common_prefix(self.high, query))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrieRange({self.high!r}[{self.low + 1}:])"


@dataclass(frozen=True, slots=True)
class PrefixRange:
    """All strings extending ``prefix`` — the range of a prefix-enumeration query.

    Dual to :class:`TrieRange` (which holds *prefixes of* its ``high``
    string): a reporting query for ``PrefixRange(p)`` asks for every
    stored string that starts with ``p``.
    """

    prefix: str

    def contains(self, point: Any) -> bool:
        return isinstance(point, str) and point.startswith(self.prefix)

    def intersects(self, other: Range) -> bool:
        if isinstance(other, TrieRange):
            # ``other`` holds the prefixes high[:k] for low < k <= len(high);
            # one of them extends ``prefix`` exactly when high does and the
            # run reaches at least len(prefix) characters.
            return other.high.startswith(self.prefix) and len(other.high) >= max(
                other.low + 1, len(self.prefix)
            )
        if isinstance(other, PrefixRange):
            return self.prefix.startswith(other.prefix) or other.prefix.startswith(
                self.prefix
            )
        return other.intersects(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrefixRange({self.prefix!r}*)"


@dataclass(frozen=True)
class PrefixSearchAnswer:
    """Answer to a string-location query in the trie."""

    query: str
    matched_prefix: str
    exact: bool
    completions: tuple[str, ...]


def _node_key(prefix: str) -> Hashable:
    return ("snode", prefix)


def _link_key(child_prefix: str) -> Hashable:
    return ("slink", child_prefix)


class TrieStructure(RangeDeterminedLinkStructure):
    """A compressed trie viewed as a range-determined link structure.

    Construction parameter (shared across skip-web levels):

    ``alphabet``
        The fixed :class:`~repro.strings.alphabet.Alphabet`.
    """

    name = "compressed-trie"

    def __init__(
        self,
        strings: Sequence[str],
        alphabet: Alphabet,
        _trie: CompressedTrie | None = None,
    ) -> None:
        self._alphabet = alphabet
        self.trie = CompressedTrie(strings, alphabet) if _trie is None else _trie
        self._units: list[RangeUnit] = []
        self._units_by_key: dict[Hashable, RangeUnit] = {}
        self._adjacency: dict[Hashable, list[Hashable]] = {}
        self._node_by_key: dict[Hashable, TrieNode] = {}
        self._collect_units()

    @classmethod
    def build(cls, items: Sequence[Any], **params: Any) -> "TrieStructure":
        alphabet = params.get("alphabet", LOWERCASE)
        return cls([str(item) for item in items], alphabet)

    def build_params(self) -> dict[str, Any]:
        return {"alphabet": self._alphabet}

    def with_item(self, item: Any) -> "TrieStructure":
        """``D(S ∪ {x})`` via an in-place canonical trie insert.

        Compressed tries are canonical in their string set, so
        :meth:`repro.strings.trie.CompressedTrie.insert` yields exactly
        the trie a rebuild over the enlarged set would (same nodes, same
        child order) — only the O(depth) insertion path is touched
        instead of re-deriving every node.  This instance keeps its unit
        snapshot (the lists below are never mutated), which is what the
        §4 update protocol diffs against; the returned structure shares
        the mutated trie and re-collects its units from it.
        """
        self.trie.insert(str(item))
        return TrieStructure((), self._alphabet, _trie=self.trie)

    # ------------------------------------------------------------------ #
    # unit collection
    # ------------------------------------------------------------------ #
    def _representative(self, node: TrieNode) -> str:
        """A stored string below ``node`` (used by owner blocking)."""
        current = node
        while not current.terminal:
            current = next(iter(current.children.values()))
        return current.prefix

    def _representatives(self) -> dict[int, str]:
        """Representative string per node (by id), in one bottom-up pass.

        Equivalent to calling :meth:`_representative` on every node —
        terminal nodes represent themselves, internal nodes inherit their
        first child's representative — but O(n) total instead of
        O(n · depth).
        """
        reps: dict[int, str] = {}
        stack: list[tuple[TrieNode, bool]] = [(self.trie.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded or node.is_leaf:
                if node.terminal:
                    reps[id(node)] = node.prefix
                else:
                    first = next(iter(node.children.values()))
                    reps[id(node)] = reps[id(first)]
                continue
            stack.append((node, True))
            stack.extend((child, False) for child in node.children.values())
        return reps

    def _collect_units(self) -> None:
        """Derive units, indexes and adjacency from the trie, in trie order.

        Unit keys and the units themselves are cached *on the nodes*
        (``TrieNode.ukeys`` / ``nunit`` / ``lunit``) so that repeated
        collections over a shared, incrementally-mutated trie (the
        :meth:`with_item` path) rebuild only what actually changed: keys
        survive for a node's lifetime (prefixes are construction-only),
        and a cached unit is reused only when its key and payload objects
        (and for links the parent-depth bound) match the current trie's,
        making it field-for-field equal to a freshly built unit.
        """
        reps = self._representatives()
        nodes = list(self.trie.nodes())
        units = self._units
        units_append = units.append
        units_by_key = self._units_by_key
        adjacency = self._adjacency
        node_by_key = self._node_by_key
        for node in nodes:
            cached = node.ukeys
            if cached is None:
                prefix = node.prefix
                cached = node.ukeys = (prefix, ("snode", prefix), ("slink", prefix))
            node_key = cached[1]
            rep = reps[id(node)]
            unit = node.nunit
            if unit is None or unit.payload is not rep:
                prefix = cached[0]
                unit = node.nunit = RangeUnit(
                    key=node_key,
                    kind=UnitKind.NODE,
                    range=TrieRange(low=len(prefix) - 1, high=prefix),
                    payload=rep,
                )
            units_append(unit)
            units_by_key[node_key] = unit
            adjacency[node_key] = []
            node_by_key[node_key] = node
        for node in nodes:
            children = node.children
            if not children:
                continue
            parent_key = node.ukeys[1]
            parent_low = len(node.prefix) - 1
            parent_rep = reps[id(node)]
            parent_adjacency = adjacency[parent_key]
            for child in children.values():
                child_cached = child.ukeys  # filled by the node pass above
                link_key = child_cached[2]
                # §2.1: the edge range is the set of strings x·y where y is
                # a *possibly empty* prefix of the edge label, so it also
                # contains the parent node's own string — hence ``low`` is
                # one less than the parent's depth.
                child_rep = reps[id(child)]
                unit = child.lunit
                if (
                    unit is None
                    or unit.range.low != parent_low
                    or unit.payload[0] is not child_rep
                    or unit.payload[1] is not parent_rep
                ):
                    unit = child.lunit = RangeUnit(
                        key=link_key,
                        kind=UnitKind.LINK,
                        range=TrieRange(low=parent_low, high=child_cached[0]),
                        payload=(child_rep, parent_rep),
                    )
                units_append(unit)
                units_by_key[link_key] = unit
                node_by_key[link_key] = child
                child_key = child_cached[1]
                adjacency[link_key] = [parent_key, child_key]
                parent_adjacency.append(link_key)
                adjacency[child_key].append(link_key)
        if len(units_by_key) != len(units):
            raise StructureError("duplicate trie unit key in collection")

    # ------------------------------------------------------------------ #
    # RangeDeterminedLinkStructure interface
    # ------------------------------------------------------------------ #
    @property
    def items(self) -> Sequence[str]:
        return list(self.trie.strings)

    def units(self) -> list[RangeUnit]:
        return list(self._units)

    def unit(self, key: Hashable) -> RangeUnit:
        try:
            return self._units_by_key[key]
        except KeyError as exc:
            raise StructureError(f"trie: no unit with key {key!r}") from exc

    def unit_map(self) -> Mapping[Hashable, RangeUnit]:
        return self._units_by_key

    def keys(self) -> set[Hashable]:
        return set(self._units_by_key)

    def neighbors(self, key: Hashable) -> list[RangeUnit]:
        try:
            neighbor_keys = self._adjacency[key]
        except KeyError as exc:
            raise StructureError(f"trie: no unit with key {key!r}") from exc
        return [self._units_by_key[neighbor] for neighbor in neighbor_keys]

    def overlapping(self, query_range: Range) -> list[RangeUnit]:
        """Units whose prefix run intersects ``query_range`` — a path walk.

        Only units along the root path of ``query_range.high`` can share a
        prefix with it, so the walk visits the matched path instead of
        scanning every unit.
        """
        if not isinstance(query_range, TrieRange):
            return super().overlapping(query_range)
        result: list[RangeUnit] = []
        node, matched = self.trie.locate(query_range.high)
        # Collect nodes and edges along the path from the root to ``node``.
        path: list[TrieNode] = []
        current: TrieNode | None = node
        while current is not None:
            path.append(current)
            current = current.parent
        units_by_key = self._units_by_key
        for path_node in reversed(path):
            # The unit keys cached on the node by collection (they depend
            # only on the node's immutable prefix).
            cached = path_node.ukeys
            if cached is None:
                prefix = path_node.prefix
                node_unit = units_by_key[_node_key(prefix)]
                link_key = _link_key(prefix)
            else:
                node_unit = units_by_key[cached[1]]
                link_key = cached[2]
            if node_unit.range.intersects(query_range):
                result.append(node_unit)
            if path_node.parent is not None:
                link_unit = units_by_key[link_key]
                if link_unit.range.intersects(query_range):
                    result.append(link_unit)
        return result

    # ------------------------------------------------------------------ #
    # range reporting
    # ------------------------------------------------------------------ #
    @classmethod
    def range_to_query(cls, query_range: Range) -> Any:
        """Anchor a prefix enumeration's descent at the prefix itself."""
        if isinstance(query_range, PrefixRange):
            return query_range.prefix
        return super().range_to_query(query_range)

    def report_units(self, query_range: Range) -> list[RangeUnit]:
        """The terminal nodes of every stored string extending the prefix."""
        if not isinstance(query_range, PrefixRange):
            return super().report_units(query_range)
        matches = sorted(self.trie.strings_with_prefix(query_range.prefix))
        return [self._units_by_key[_node_key(text)] for text in matches]

    def report_values(self, query_range: Range, unit: RangeUnit) -> list[Any]:
        """The stored string at a visited terminal node, if it matches."""
        node = self._node_by_key.get(unit.key)
        if node is not None and node.terminal and query_range.contains(node.prefix):
            return [node.prefix]
        return []

    def locate(self, query: Any) -> RangeUnit:
        """The unit where a search for ``query`` stops (deepest match)."""
        text = str(query)
        node, matched = self.trie.locate(text)
        if matched == node.depth or node.parent is None:
            return self._units_by_key[_node_key(node.prefix)]
        # The match ends inside the edge leading to ``node``.
        return self._units_by_key[_link_key(node.prefix)]

    @classmethod
    def select(cls, query: Any, candidates: Sequence[RangeUnit]) -> RangeUnit:
        text = str(query)

        def score(unit: RangeUnit) -> tuple[int, int]:
            rng: TrieRange = unit.range
            match = rng.match_length(text)
            # Prefer the deepest match; among equal matches prefer the unit
            # whose range does not overshoot the match (nodes over edges).
            overshoot = len(rng.high) - match
            return (match, -overshoot)

        return max(candidates, key=score)

    @classmethod
    def advance(
        cls,
        query: Any,
        current: RangeUnit,
        neighbors: Mapping[Hashable, Range],
    ) -> Hashable | None:
        text = str(query)
        current_range: TrieRange = current.range
        current_match = current_range.match_length(text)
        best_key: Hashable | None = None
        best_match = current_match
        for key, rng in neighbors.items():
            if not isinstance(rng, TrieRange):
                continue
            match = rng.match_length(text)
            if match > best_match:
                best_match = match
                best_key = key
        return best_key

    def answer(self, query: Any, unit: RangeUnit) -> PrefixSearchAnswer:
        text = str(query)
        matched = self.trie.longest_matching_prefix(text)
        completions = tuple(self.trie.strings_with_prefix(matched))
        return PrefixSearchAnswer(
            query=text,
            matched_prefix=matched,
            exact=text in self.trie,
            completions=completions,
        )


class SkipTrieWeb(SkipWebStructureAdapter):
    """A distributed skip-web over a compressed trie.

    Supports locating an arbitrary string (the deepest stored prefix that
    matches it) and prefix searches, with ``O(log n)`` expected messages.
    Implements the :class:`repro.engine.protocol.DistributedStructure`
    protocol through the adapter mixin, so it runs under the batched
    round-based executor as well.
    """

    def _coerce_query(self, query: Any) -> str:
        return str(query)

    def _coerce_item(self, item: Any) -> str:
        return str(item)

    def _coerce_range(self, query_range: Any) -> PrefixRange:
        if isinstance(query_range, PrefixRange):
            return query_range
        return PrefixRange(str(query_range))

    def __init__(
        self,
        strings: Sequence[str],
        alphabet: Alphabet = LOWERCASE,
        network: Network | None = None,
        host_count: int | None = None,
        blocking: str = "owner",
        seed: int = 0,
    ) -> None:
        config = SkipWebConfig(
            host_count=host_count,
            blocking=blocking,
            seed=seed,
            structure_params={"alphabet": alphabet},
        )
        self.alphabet = alphabet
        self.web = SkipWeb(TrieStructure, list(strings), network=network, config=config)

    # -- queries -------------------------------------------------------- #
    def locate(self, text: str, origin_host: HostId | None = None) -> QueryResult:
        """Find the deepest stored prefix matching ``text``."""
        return self.web.query(str(text), origin_host=origin_host)

    def contains(self, text: str, origin_host: HostId | None = None) -> bool:
        """Exact-membership query."""
        return bool(self.locate(text, origin_host=origin_host).answer.exact)

    def prefix_search(
        self, prefix: str, origin_host: HostId | None = None
    ) -> tuple[QueryResult, list[str]]:
        """All stored strings starting with ``prefix``.

        The distributed part is locating ``prefix``; enumerating the
        matching subtree is then local to the hosts storing it (returned
        from the level-0 trie).
        """
        result = self.locate(prefix, origin_host=origin_host)
        matches = self.level0_trie.strings_with_prefix(str(prefix))
        return result, matches

    # -- updates -------------------------------------------------------- #
    def insert(self, text: str, origin_host: HostId | None = None) -> UpdateResult:
        return self.web.insert(str(text), origin_host=origin_host)

    def delete(self, text: str, origin_host: HostId | None = None) -> UpdateResult:
        return self.web.delete(str(text), origin_host=origin_host)

    # -- accounting ------------------------------------------------------ #
    @property
    def network(self) -> Network:
        return self.web.network

    @property
    def strings(self) -> list[str]:
        return sorted(self.web.items)

    @property
    def host_count(self) -> int:
        return self.web.host_count

    @property
    def level0_trie(self) -> CompressedTrie:
        structure: TrieStructure = self.web.level_structure(0, ())
        return structure.trie

    def max_memory_per_host(self) -> int:
        return self.web.max_memory_per_host()

    def congestion(self) -> CongestionReport:
        return self.web.congestion()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SkipTrieWeb(n={len(self.web.items)}, alphabet={self.alphabet.name}, "
            f"hosts={self.host_count})"
        )
