"""Compressed digital tries (§3.2 of the paper).

A compressed trie (PATRICIA trie) over a set of strings from a fixed
alphabet keeps only the *branching* positions: every node is either the
root, a node where at least two stored strings diverge, or a node marking
the end of a stored string; chains of single-child nodes are collapsed
into labelled edges.  The tree therefore has ``O(n)`` nodes for ``n``
strings while its depth can be ``Θ(n)`` (long shared prefixes) — the
situation where the skip-web's ``O(log n)``-message search is interesting.

Every node is identified by the string spelled by the path from the root
to it; that string is also what the skip-web range of the node/edge is
built from (see :class:`repro.strings.skip_trie.TrieRange`).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.bulkload import is_strictly_increasing
from repro.errors import StructureError
from repro.strings.alphabet import Alphabet


@dataclass
class TrieNode:
    """One node of a compressed trie.

    ``prefix`` is the full string spelled from the root to this node;
    ``children`` maps the first character of each outgoing edge label to
    the child node; ``terminal`` records whether ``prefix`` itself is one
    of the stored strings.
    """

    prefix: str
    terminal: bool = False
    children: dict[str, "TrieNode"] = field(default_factory=dict)
    parent: "TrieNode | None" = None
    # Unit-collection caches (see skip_trie.TrieStructure): ``ukeys`` is
    # ``(prefix, node_key, link_key)``; ``nunit`` / ``lunit`` are the last
    # node / link RangeUnits built for this node, revalidated by identity.
    ukeys: "tuple | None" = field(default=None, repr=False, compare=False)
    nunit: "object | None" = field(default=None, repr=False, compare=False)
    lunit: "object | None" = field(default=None, repr=False, compare=False)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def depth(self) -> int:
        """Length of the node's prefix (string depth, not edge count)."""
        return len(self.prefix)

    def edge_label_to(self, child: "TrieNode") -> str:
        """The label of the edge from this node to ``child``."""
        if not child.prefix.startswith(self.prefix):
            raise StructureError(
                f"{child.prefix!r} is not a descendant of {self.prefix!r}"
            )
        return child.prefix[len(self.prefix) :]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrieNode({self.prefix!r}, terminal={self.terminal}, "
            f"children={len(self.children)})"
        )


def longest_common_prefix(first: str, second: str) -> str:
    """The longest common prefix of two strings."""
    first_length = len(first)
    second_length = len(second)
    limit = first_length if first_length < second_length else second_length
    head = first[:limit]
    # Fast path: one string is a prefix of the other (one C-level compare).
    if second.startswith(head):
        return head
    index = 0
    while first[index] == second[index]:
        index += 1
    return first[:index]


class CompressedTrie:
    """A compressed trie over a set of strings.

    Parameters
    ----------
    strings:
        The stored strings (duplicates collapsed).  The empty string is
        allowed and simply marks the root as terminal.
    alphabet:
        The fixed alphabet; every string is validated against it.
    """

    def __init__(self, strings: Sequence[str], alphabet: Alphabet) -> None:
        self._sort_keys: list[tuple[int, ...]] | None = None
        values = list(strings)
        try:
            candidate_keys = [alphabet.sort_key(value) for value in values]
        except ValueError:  # invalid symbol: let validate_string report it below
            candidate_keys = None
        if candidate_keys is not None and is_strictly_increasing(candidate_keys):
            # Already strictly sorted in alphabet order (the O(n) bulk-load
            # fast path); the computed keys seed the insert-time cache.
            unique = values
            self._sort_keys = candidate_keys
        elif candidate_keys is not None:
            # Decorate-sort with the keys already computed (sort keys are
            # injective, so this matches sorted(set(...), key=sort_key)).
            key_of = dict(zip(values, candidate_keys))
            ordered = sorted(key_of.items(), key=lambda item: item[1])
            unique = [value for value, _key in ordered]
            self._sort_keys = [key for _value, key in ordered]
        else:
            unique = sorted(set(values), key=alphabet.sort_key)
        if not unique:
            raise StructureError("compressed trie requires at least one string")
        self.alphabet = alphabet
        for value in unique:
            alphabet.validate_string(value)
        self._strings = tuple(unique)
        self.root = TrieNode(prefix="", terminal=("" in set(unique)))
        self._node_by_prefix: dict[str, TrieNode] = {"": self.root}
        non_empty = [value for value in unique if value]
        self._build(self.root, non_empty)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, node: TrieNode, strings: list[str]) -> None:
        """Recursively attach compressed children of ``node`` for ``strings``.

        Every string in ``strings`` is a proper extension of
        ``node.prefix``; strings are grouped by their next character and
        each group becomes one compressed edge.
        """
        groups: dict[str, list[str]] = {}
        for value in strings:
            groups.setdefault(value[len(node.prefix)], []).append(value)
        for first_character in sorted(groups, key=self.alphabet.index):
            group = groups[first_character]
            common = group[0]
            for value in group[1:]:
                common = longest_common_prefix(common, value)
            # ``common`` extends node.prefix by at least one character.
            child = TrieNode(prefix=common, parent=node)
            child.terminal = common in group
            node.children[first_character] = child
            self._node_by_prefix[common] = child
            remaining = [value for value in group if len(value) > len(common)]
            self._build(child, remaining)

    # ------------------------------------------------------------------ #
    # incremental insertion (canonical: identical to a full rebuild)
    # ------------------------------------------------------------------ #
    def insert(self, value: str) -> None:
        """Add ``value`` in place, producing exactly the rebuilt trie.

        Compressed tries are canonical in their string set, so the
        incremental edge split / child attach below yields the same nodes
        (prefixes, terminal flags, child order) a from-scratch
        :class:`CompressedTrie` over the enlarged set would.  Child
        dictionaries are kept in alphabet order — the order the
        rebuilding constructor inserts them in — because downstream unit
        collection and representative choice iterate them.
        """
        self.alphabet.validate_string(value)
        if value in self:
            raise StructureError(f"string {value!r} already stored")
        if self._sort_keys is None:
            # Built lazily on the first insert, then maintained in step
            # with ``_strings`` so later inserts bisect instead of
            # recomputing every string's sort key.
            self._sort_keys = [self.alphabet.sort_key(value_) for value_ in self._strings]
        value_key = self.alphabet.sort_key(value)
        position = bisect_left(self._sort_keys, value_key)
        self._sort_keys.insert(position, value_key)
        self._strings = self._strings[:position] + (value,) + self._strings[position:]
        if value == "":
            self.root.terminal = True
            return
        node, matched = self.locate(value)
        if matched == len(value):
            if matched == node.depth:
                # The node already exists (it was a branching point).
                node.terminal = True
                return
            # ``value`` ends inside the edge leading to ``node``: split it.
            self._split_edge(node, matched).terminal = True
            return
        if matched == node.depth:
            # No child matches the next character: attach a fresh leaf.
            leaf = TrieNode(prefix=value, terminal=True, parent=node)
            self._node_by_prefix[value] = leaf
            node.children[value[matched]] = leaf
            self._sort_children(node)
            return
        # Mismatch inside the edge leading to ``node``: split, then attach.
        mid = self._split_edge(node, matched)
        leaf = TrieNode(prefix=value, terminal=True, parent=mid)
        self._node_by_prefix[value] = leaf
        mid.children[value[matched]] = leaf
        self._sort_children(mid)

    def _split_edge(self, node: TrieNode, depth: int) -> TrieNode:
        """Insert a node at string depth ``depth`` on the edge into ``node``."""
        parent = node.parent
        if parent is None:  # pragma: no cover - the root has no incoming edge
            raise StructureError("cannot split above the root")
        prefix = node.prefix[:depth]
        mid = TrieNode(prefix=prefix, terminal=False, parent=parent)
        parent.children[prefix[parent.depth]] = mid
        mid.children[node.prefix[depth]] = node
        node.parent = mid
        self._node_by_prefix[prefix] = mid
        return mid

    def _sort_children(self, node: TrieNode) -> None:
        """Restore the alphabet order a rebuild would have inserted children in."""
        if len(node.children) > 1:
            node.children = dict(
                sorted(node.children.items(), key=lambda entry: self.alphabet.index(entry[0]))
            )

    # ------------------------------------------------------------------ #
    # traversal and queries
    # ------------------------------------------------------------------ #
    @property
    def strings(self) -> tuple[str, ...]:
        return self._strings

    def nodes(self) -> Iterator[TrieNode]:
        """Pre-order iteration over all nodes."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(node.children.values())))

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    def depth(self) -> int:
        """Maximum string depth of any node."""
        return max(node.depth for node in self.nodes())

    def node(self, prefix: str) -> TrieNode:
        """The node whose root path spells ``prefix`` exactly."""
        try:
            return self._node_by_prefix[prefix]
        except KeyError as exc:
            raise StructureError(f"no trie node with prefix {prefix!r}") from exc

    def __contains__(self, value: str) -> bool:
        node = self._node_by_prefix.get(value)
        return bool(node and node.terminal)

    def locate(self, query: str) -> tuple[TrieNode, int]:
        """Where a search for ``query`` ends.

        Returns ``(node, matched)`` where ``node`` is the deepest node
        whose edge path matches ``query`` as far as possible and
        ``matched`` is the number of characters of ``query`` matched
        (``matched`` may fall inside the edge leading to ``node``, i.e.
        ``node.parent.depth < matched <= node.depth``, or equal
        ``node.depth`` when the match stops exactly at the node).
        """
        node = self.root
        matched = 0
        while matched < len(query):
            child = node.children.get(query[matched])
            if child is None:
                return node, matched
            label = node.edge_label_to(child)
            remaining = query[matched:]
            common = longest_common_prefix(label, remaining)
            matched += len(common)
            if len(common) < len(label):
                return child, matched
            node = child
        return node, matched

    def longest_matching_prefix(self, query: str) -> str:
        """The longest prefix of ``query`` that lies on some root path."""
        _node, matched = self.locate(query)
        return query[:matched]

    def strings_with_prefix(self, prefix: str) -> list[str]:
        """All stored strings that start with ``prefix`` (subtree walk)."""
        node, matched = self.locate(prefix)
        if matched < len(prefix):
            return []
        # ``node`` is the shallowest node at or below the end of ``prefix``.
        start = node if node.depth >= len(prefix) else node
        result = []
        stack = [start]
        while stack:
            current = stack.pop()
            if current.terminal and current.prefix.startswith(prefix):
                result.append(current.prefix)
            stack.extend(current.children.values())
        return sorted(result)

    def validate(self) -> None:
        """Check compressed-trie invariants (used by tests)."""
        stored = set(self._strings)
        found_terminals = set()
        for node in self.nodes():
            if node.terminal:
                found_terminals.add(node.prefix)
            if node.parent is not None:
                if not node.prefix.startswith(node.parent.prefix):
                    raise StructureError("child prefix does not extend parent prefix")
                if len(node.prefix) <= len(node.parent.prefix):
                    raise StructureError("edge label must be non-empty")
            if (
                node.parent is not None
                and not node.terminal
                and len(node.children) == 1
            ):
                raise StructureError(
                    f"non-terminal node {node.prefix!r} with one child is not compressed"
                )
        if found_terminals != stored:
            raise StructureError(
                "terminal nodes do not match the stored string set: "
                f"{sorted(found_terminals)} vs {sorted(stored)}"
            )
