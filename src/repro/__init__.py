"""Skip-webs: efficient distributed data structures for multi-dimensional data.

This package is a from-scratch reproduction of

    Lars Arge, David Eppstein, Michael T. Goodrich,
    "Skip-Webs: Efficient Distributed Data Structures for Multi-Dimensional
    Data Sets", PODC 2005.

**Start at** :mod:`repro.api` — the supported public surface.  Its
:class:`~repro.api.cluster.Cluster` façade deploys any registered
structure family behind one constructor and exposes the full operation
surface (``get`` / ``insert`` / ``delete`` / ``range`` / ``nearest``,
concurrent ``batch`` runs, ``bulk_load``, live join/leave/crash with
self-repair, ``stats`` / ``congestion`` snapshots)::

    from repro.api import Cluster

    with Cluster(structure="skipweb1d", items=keys, seed=7) as cluster:
        print(cluster.nearest(421337.0).result())

``python -m repro.cli structures`` lists every registered family;
``python -m repro.cli list`` lists the paper's experiments.  The layers
below are importable for research use, organised around the paper's
structure:

``repro.net``
    A discrete peer-to-peer network simulator: hosts with bounded memory,
    explicit messages, per-operation message counting and per-host
    congestion accounting.  All cost measures reported by the paper
    (``H``, ``M``, ``C(n)``, ``Q(n)``, ``U(n)``) are measured against this
    substrate.

``repro.engine``
    The batched execution engine: operations as resumable step
    generators, the ``DistributedStructure`` protocol, and the
    ``BatchExecutor`` that interleaves whole workloads round by round so
    throughput and per-host per-round congestion are measured directly.

``repro.core``
    The skip-web framework itself: range-determined link structures,
    set-halving lemmas, level construction, distributed blocking, query
    routing and updates.

``repro.onedim``, ``repro.spatial``, ``repro.strings``, ``repro.planar``
    The four instantiations the paper describes: sorted linked lists,
    compressed quadtrees/octrees, compressed digital tries and trapezoidal
    maps, each with its distributed skip-web.

``repro.baselines``
    The prior structures of Table 1 (skip lists, skip graphs, SkipNet,
    NoN skip graphs, family trees, deterministic SkipNet, bucket skip
    graphs) plus a Chord DHT for exact-match comparison.

``repro.workloads`` and ``repro.bench``
    Synthetic workload generators and the experiment harness that
    regenerates every table and figure of the paper (itself re-plumbed
    through ``repro.api``).

``repro.api``
    The façade and structure registry described above — the only layer
    with a stability guarantee (see ``repro.api.__all__`` and DESIGN.md
    §7).
"""

from repro._version import __version__
from repro.errors import (
    ReproError,
    HostMemoryExceeded,
    UnknownHostError,
    AddressError,
    StructureError,
    QueryError,
    UpdateError,
)

__all__ = [
    "__version__",
    "ReproError",
    "HostMemoryExceeded",
    "UnknownHostError",
    "AddressError",
    "StructureError",
    "QueryError",
    "UpdateError",
]
