"""The :class:`Cluster` façade: one typed entry point for every structure.

Before this module, every consumer of the reproduction wired the stack
by hand: build a :class:`~repro.net.network.Network`, construct one of
eleven structure classes, wrap a
:class:`~repro.engine.executor.BatchExecutor` for concurrency, a
:class:`~repro.engine.repair.RepairEngine` +
:class:`~repro.net.churn.ChurnController` for membership change, and
pick the ledger or tracing substrate.  ``Cluster`` composes all of that
behind one constructor::

    from repro.api import Cluster

    with Cluster(structure="skipweb1d", items=keys, seed=7) as cluster:
        handle = cluster.nearest(421337.0)        # OperationHandle
        report = cluster.batch([("search", q) for q in queries])
        cluster.join_host(); cluster.crash_host()
        print(cluster.stats().as_dict())

Operation methods return :class:`~repro.api.results.OperationHandle`
objects with a uniform ``status`` (``"ok"`` / ``"failed"`` /
``"unsupported"``); a batch isolates per-operation failures instead of
raising mid-flight.  ``mode="immediate"`` drives single operations
synchronously (the paper's one-at-a-time cost model, byte-identical to
calling the structures directly); ``mode="batched"`` funnels even single
operations through the round-based engine so their congestion is
measured.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence

from repro.api.registry import StructureSpec, resolve_structure, structure_specs
from repro.api.results import (
    BatchReport,
    ClusterStats,
    OPERATION_KINDS,
    OperationHandle,
    STATUS_FAILED,
    STATUS_GAVE_UP,
    STATUS_UNSUPPORTED,
)
from repro.engine.executor import BatchExecutor, Operation
from repro.engine.repair import RepairEngine, RepairResult
from repro.engine.sharded import ShardedExecutor
from repro.engine.steps import run_immediate
from repro.errors import (
    FaultInjectedError,
    QueryError,
    ReproError,
    StorageError,
    StructureError,
)
from repro.net.churn import ChurnController, ChurnEvent
from repro.net.congestion import RoundCongestionReport, round_congestion_report
from repro.net.faults import FaultPlan, faults_from_config, resolve_faults
from repro.net.message import MessageKind
from repro.net.naming import HostId
from repro.net.network import Network, OperationStats, ledger_mode, tracing_mode
from repro.net.topology import Topology, resolve_topology, topology_from_config
from repro.storage import (
    DurabilityController,
    StorageBackend,
    capture_snapshot,
    committed_prefix,
    open_storage,
    restore_snapshot,
)

#: Message kind charged per operation kind (single-operation immediate mode).
_KIND_OF = {
    "search": MessageKind.QUERY,
    "range": MessageKind.QUERY,
    "insert": MessageKind.UPDATE,
    "delete": MessageKind.UPDATE,
}

#: Convenience aliases accepted wherever an operation kind is named.
_KIND_ALIASES = {
    "get": "search",
    "lookup": "search",
    "nearest": "search",
    "query": "search",
    "locate": "search",
    "range_search": "range",
    "report": "range",
}


#: Process-wide default worker count for clusters constructed without an
#: explicit ``workers=``; set by the CLI's ``--workers`` flag.
_DEFAULT_WORKERS = 1


def set_default_workers(workers: int) -> None:
    """Set the worker count clusters default to (the CLI's ``--workers``)."""
    global _DEFAULT_WORKERS
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    _DEFAULT_WORKERS = workers


def default_workers() -> int:
    """The worker count a ``Cluster()`` created right now would use."""
    return _DEFAULT_WORKERS


def _canonical_kind(kind: str) -> str:
    resolved = _KIND_ALIASES.get(kind, kind)
    if resolved not in OPERATION_KINDS:
        raise ValueError(
            f"unknown operation kind {kind!r}; expected one of "
            f"{OPERATION_KINDS} (or an alias {tuple(_KIND_ALIASES)})"
        )
    return resolved


class ClusterSession:
    """Operations scoped to one measurement window (see :meth:`Cluster.session`).

    Forwards the operation surface to its cluster; ``messages`` /
    ``rounds`` / ``by_kind`` read the live
    :class:`~repro.net.network.OperationStats` of the window.
    """

    def __init__(self, cluster: "Cluster", stats: OperationStats) -> None:
        self.cluster = cluster
        self._stats = stats

    # -- the operation surface, forwarded ------------------------------- #
    def get(self, key: Any, origin_host: HostId | None = None) -> OperationHandle:
        return self.cluster.get(key, origin_host=origin_host)

    def nearest(self, query: Any, origin_host: HostId | None = None) -> OperationHandle:
        return self.cluster.nearest(query, origin_host=origin_host)

    def range(self, query_range: Any, origin_host: HostId | None = None) -> OperationHandle:
        return self.cluster.range(query_range, origin_host=origin_host)

    def insert(self, item: Any, origin_host: HostId | None = None) -> OperationHandle:
        return self.cluster.insert(item, origin_host=origin_host)

    def delete(self, item: Any, origin_host: HostId | None = None) -> OperationHandle:
        return self.cluster.delete(item, origin_host=origin_host)

    def batch(self, operations: Sequence[Any]) -> BatchReport:
        return self.cluster.batch(operations)

    # -- window accounting ----------------------------------------------- #
    @property
    def messages(self) -> int:
        """Messages charged inside this session so far."""
        return self._stats.messages

    @property
    def rounds(self) -> int:
        """Distinct network rounds this session's messages spanned."""
        return self._stats.rounds

    def by_kind(self) -> dict[str, int]:
        """Per-kind message counts of this session so far."""
        return {kind.value: count for kind, count in self._stats.by_kind.items()}


class Cluster:
    """A deployed distributed structure with its full operation surface.

    Parameters
    ----------
    structure:
        Registry name (see :func:`repro.api.registry.available_structures`),
        e.g. ``"skipweb1d"``, ``"skipquadtree"``, ``"chord"``.
    items:
        The ground set to build over.  Omit it to configure a cluster
        first and load data later via :meth:`bulk_load`.
    hosts:
        Host budget (structures that take ``host_count``); default one
        host per item where the structure supports it.
    memory_size:
        The paper's ``M`` for bucketed structures (``bucket-skipweb1d``).
    seed:
        Seed for membership words / promotions; also seeds the churn
        controller unless ``churn_rng`` is given.
    mode:
        ``"batched"`` (default) runs every operation through the
        round-based engine; ``"immediate"`` drives single operations
        synchronously (the paper's one-at-a-time accounting).
    workers:
        ``> 1`` runs read-only batches through the multi-worker
        :class:`~repro.engine.sharded.ShardedExecutor` (operation
        origins partitioned across ``fork`` processes; accounting
        identical to a serial run).  Mutating batches, churn and
        non-shardable configurations transparently stay serial.  The
        default of ``None`` uses the process-wide default set by
        :func:`set_default_workers` (the CLI's ``--workers`` flag),
        which itself defaults to serial execution.
    network:
        Pre-existing :class:`~repro.net.network.Network` to deploy into.
    topology:
        Link-cost model of the deployment: a
        :class:`~repro.net.topology.Topology` instance or one of the
        names ``"flat"`` / ``"clustered"`` / ``"geo"`` (``"geo"`` seeds
        its placement and weight matrix from ``seed``).  The default
        ``None`` keeps the implicit flat model — every counter
        byte-identical to a pre-topology cluster.  An explicit topology
        is installed on the structure's network right after
        construction, so operation traffic (not the build) accrues the
        weighted latency and per-link / per-cluster congestion
        dimension.
    faults:
        Deterministic fault plan of the deployment: a
        :class:`~repro.net.faults.FaultPlan` instance, one of the named
        chaos plans (``"lossy"`` / ``"flaky"`` / ``"blackout"``, seeded
        from ``seed``), or a spec dict.  Installed on the structure's
        network right *after* construction — build traffic is never
        faulted — so operation traffic is subject to seeded message
        drops / duplications / delays and scheduled host crashes.  The
        default ``None`` injects nothing and keeps every counter
        byte-identical to a fault-free cluster.
    round_budget:
        Optional per-operation timeout in delivery rounds for batched
        execution; an over-budget operation's handle reports
        ``timed_out`` instead of the batch stalling on it.
    route_cache / max_retries:
        Forwarded to the :class:`~repro.engine.executor.BatchExecutor`.
        ``max_retries`` also bounds fault-induced restarts, whose
        exhaustion reports ``gave_up``.
    churn_rng / join_fraction / min_hosts:
        Churn-controller configuration (see
        :class:`~repro.net.churn.ChurnController`).
    storage:
        A path (``.sqlite``/``.db`` file or a jsonl directory) or a
        :class:`~repro.storage.backends.StorageBackend`: every committed
        action is journaled so the run survives a crash and is
        recoverable byte-identically via :meth:`Cluster.recover`.
        Journaled runs must be replayable, so ``storage=`` refuses an
        external ``network=``, an external ``churn_rng=`` and
        ``route_cache=True`` (cross-batch cache warmth is not restored
        by recovery, so replayed tails would diverge).
    snapshot_every:
        With ``storage=``, write a full-state snapshot every N committed
        actions (0 = only on explicit :meth:`save`); recovery replays
        the log tail past the newest snapshot.
    options:
        Structure-specific keywords passed through to the factory
        (``alphabet=``, ``bounding_cube=``, ``box=``, ``blocking=``,
        ``bits=``, ...).
    """

    def __init__(
        self,
        structure: str = "skipweb1d",
        items: Sequence[Any] | None = None,
        *,
        hosts: int | None = None,
        memory_size: int | None = None,
        seed: int = 0,
        mode: str = "batched",
        workers: int | None = None,
        network: Network | None = None,
        topology: "Topology | str | None" = None,
        faults: "FaultPlan | str | Mapping[str, Any] | None" = None,
        round_budget: int | None = None,
        route_cache: bool = False,
        max_retries: int = 5,
        churn_rng: random.Random | None = None,
        join_fraction: float = 0.5,
        min_hosts: int = 2,
        storage: "str | StorageBackend | None" = None,
        snapshot_every: int = 0,
        **options: Any,
    ) -> None:
        if mode not in ("batched", "immediate"):
            raise ValueError(f"mode must be 'batched' or 'immediate', got {mode!r}")
        self.spec: StructureSpec = resolve_structure(structure)
        self.mode = mode
        self.workers = workers if workers is not None else _DEFAULT_WORKERS
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.seed = seed
        self._hosts = hosts
        self._memory_size = memory_size
        self._options = dict(options)
        self._network = network
        self._topology = resolve_topology(topology, seed=seed)
        self._faults = resolve_faults(faults, seed=seed)
        self._round_budget = round_budget
        self._route_cache = route_cache
        self._max_retries = max_retries
        self._churn_rng = churn_rng
        self._join_fraction = join_fraction
        self._min_hosts = min_hosts
        self._structure: Any = None
        self._executor: BatchExecutor | ShardedExecutor | None = None
        self._churn: ChurnController | None = None
        self._repair_engine: RepairEngine | None = None
        self._closed = False
        self._close_lock = threading.Lock()
        self._durability: DurabilityController | None = None
        self._snapshot_every = snapshot_every
        if storage is not None:
            self._check_storage_config()
            self._attach_durability(
                DurabilityController(open_storage(storage), snapshot_every=snapshot_every)
            )
        if items is not None:
            self._structure = self._construct(self.spec.factory, items)
            if self._topology is not None:
                self.network.set_topology(self._topology)
            if self._faults is not None:
                self.network.set_faults(self._faults)
        if self._durability is not None:
            # Journal construction (post-commit) so recovery can rebuild
            # from genesis even before the first snapshot exists.  The
            # network's membership listener only attaches once the
            # structure exists: construction-time add_host events are
            # implied by the create record, not journaled individually.
            self._durability.record_action("create", self._create_payload(items))
            if self._structure is not None:
                self.network.add_membership_listener(
                    self._durability.membership_listener
                )

    def _check_storage_config(self) -> None:
        if not self.spec.durable:
            raise StorageError(
                f"structure {self.spec.name!r} is registered durable=False; "
                "its runs cannot be journaled for byte-identical replay"
            )
        if self._network is not None:
            raise StorageError(
                "storage= requires the cluster to own its network: an "
                "externally built network's construction history is not in "
                "the log, so recovery could not rebuild it"
            )
        if self._churn_rng is not None:
            raise StorageError(
                "storage= refuses an external churn_rng: recovery re-seeds "
                "churn from the recorded seed, so an external stream would "
                "diverge on replay (drop churn_rng= or storage=)"
            )
        if self._route_cache:
            raise StorageError(
                "storage= refuses route_cache=True: cache warmth spans "
                "batches but is not snapshotted, so a recovered tail would "
                "replay with different hit counts"
            )

    def _create_payload(self, items: Sequence[Any] | None) -> dict[str, Any]:
        from repro.net.network import default_trace

        return {
            "structure": self.spec.name,
            "items": tuple(items) if items is not None else None,
            "hosts": self._hosts,
            "memory_size": self._memory_size,
            "seed": self.seed,
            "mode": self.mode,
            "workers": self.workers,
            "max_retries": self._max_retries,
            "join_fraction": self._join_fraction,
            "min_hosts": self._min_hosts,
            "snapshot_every": self._snapshot_every,
            "topology": (
                self._topology.describe() if self._topology is not None else None
            ),
            "faults": (
                self._faults.describe() if self._faults is not None else None
            ),
            "round_budget": self._round_budget,
            "options": dict(self._options),
            "trace": (
                self.network.trace if self._structure is not None else default_trace()
            ),
        }

    def _attach_durability(self, controller: DurabilityController) -> None:
        self._durability = controller
        controller.snapshot_hook = self._maybe_snapshot

    # ------------------------------------------------------------------ #
    # construction paths
    # ------------------------------------------------------------------ #
    def _factory_kwargs(self) -> dict[str, Any]:
        kwargs: dict[str, Any] = {"network": self._network, "seed": self.seed}
        kwargs.update(self._options)
        if self._hosts is not None:
            kwargs["hosts"] = self._hosts
        if self._memory_size is not None:
            kwargs["memory_size"] = self._memory_size
        return kwargs

    def _construct(self, factory: Any, items: Sequence[Any]) -> Any:
        try:
            return factory(items, **self._factory_kwargs())
        except TypeError as exc:
            raise StructureError(
                f"structure {self.spec.name!r} rejected its configuration: {exc}"
            ) from exc

    @classmethod
    def from_structure(
        cls,
        structure: Any,
        *,
        mode: str = "batched",
        route_cache: bool = False,
        max_retries: int = 5,
        churn_rng: random.Random | None = None,
        join_fraction: float = 0.5,
        min_hosts: int = 2,
    ) -> "Cluster":
        """Wrap an already-built structure instance in a façade.

        The structure must be registered (its class resolvable by name)
        so the cluster knows its capabilities.
        """
        specs = list(structure_specs().values())
        # Exact class match first: subclass families (SkipNet under
        # SkipGraph, ...) must not resolve to their base family's spec.
        exact = [spec for spec in specs if type(structure) is spec.cls]
        for spec in exact or specs:
            if isinstance(structure, spec.cls):
                cluster = cls.__new__(cls)
                cluster.spec = spec
                cluster.mode = mode
                cluster.workers = _DEFAULT_WORKERS
                cluster.seed = 0
                cluster._hosts = None
                cluster._memory_size = None
                cluster._options = {}
                cluster._network = structure.network
                cluster._topology = structure.network.topology
                cluster._faults = structure.network.faults
                cluster._round_budget = None
                cluster._route_cache = route_cache
                cluster._max_retries = max_retries
                cluster._churn_rng = churn_rng
                cluster._join_fraction = join_fraction
                cluster._min_hosts = min_hosts
                cluster._structure = structure
                cluster._executor = None
                cluster._churn = None
                cluster._repair_engine = None
                cluster._closed = False
                cluster._close_lock = threading.Lock()
                cluster._durability = None
                cluster._snapshot_every = 0
                return cluster
        raise StructureError(
            f"{type(structure).__name__} is not a registered structure family"
        )

    def bulk_load(self, sorted_items: Sequence[Any]) -> OperationHandle:
        """Build the structure from pre-sorted, deduplicated items.

        Maps to the structure's ``build_from_sorted`` bulk-load
        constructor: the O(n log n) defensive sort is skipped (sortedness
        is verified in O(n)) and one CONSTRUCTION ledger message is
        charged per record placed off the coordinator host.  Only legal
        on a cluster constructed without ``items``.
        """
        self._check_open()
        if self._structure is not None:
            raise StructureError(
                "cluster already holds data; bulk_load only applies to a "
                "cluster constructed without items"
            )
        if self.spec.bulk_factory is None:
            raise StructureError(
                f"structure {self.spec.name!r} has no bulk-load constructor"
            )
        self._structure = self._construct(self.spec.bulk_factory, sorted_items)
        if self._topology is not None:
            self.network.set_topology(self._topology)
        if self._faults is not None:
            self.network.set_faults(self._faults)
        if self._durability is not None:
            self._durability.record_action(
                "bulk_load", {"items": tuple(sorted_items)}
            )
            self.network.add_membership_listener(
                self._durability.membership_listener
            )
        return OperationHandle(
            kind="bulk_load",
            payload=len(sorted_items),
            origin_host=None,
            status="ok",
            value=self._structure,
            messages=getattr(self._structure, "construction_messages", 0),
        )

    # ------------------------------------------------------------------ #
    # composed components
    # ------------------------------------------------------------------ #
    @property
    def structure(self) -> Any:
        """The underlying structure instance (escape hatch for domain APIs)."""
        self._check_open()
        if self._structure is None:
            raise StructureError(
                "cluster holds no data yet; pass items= at construction "
                "or call bulk_load()"
            )
        return self._structure

    @property
    def network(self) -> Network:
        """The simulated network the structure is deployed on."""
        return self.structure.network

    @property
    def topology(self) -> "Topology | None":
        """The deployment's link-cost model (``None`` = implicit flat)."""
        if self._structure is not None:
            return self.network.topology
        return self._topology

    @property
    def faults(self) -> "FaultPlan | None":
        """The deployment's fault plan (``None`` = nothing injected)."""
        if self._structure is not None:
            return self.network.faults
        return self._faults

    @property
    def executor(self) -> BatchExecutor | ShardedExecutor:
        """The round-based batch executor (created on first use).

        With ``workers > 1`` on a shardable structure family this is a
        :class:`~repro.engine.sharded.ShardedExecutor`, which itself
        falls back to its embedded serial executor for any batch outside
        the shardable envelope — results and accounting are identical
        either way.
        """
        if self._executor is None:
            on_commit = (
                self._durability.on_batch_commit
                if self._durability is not None
                else None
            )
            if self.workers > 1 and self.spec.shardable:
                self._executor = ShardedExecutor(
                    self.structure,
                    workers=self.workers,
                    route_cache=self._route_cache,
                    max_retries=self._max_retries,
                    on_commit=on_commit,
                    round_budget=self._round_budget,
                )
            else:
                self._executor = BatchExecutor(
                    self.structure,
                    route_cache=self._route_cache,
                    max_retries=self._max_retries,
                    on_commit=on_commit,
                    round_budget=self._round_budget,
                )
        return self._executor

    @property
    def churn(self) -> ChurnController:
        """The churn controller driving membership change (created on first use)."""
        if self._churn is None:
            self._repair_engine = RepairEngine(self.structure)
            self._churn = ChurnController(
                self.network,
                self._repair_engine,
                rng=self._churn_rng or random.Random(self.seed),
                join_fraction=self._join_fraction,
                min_hosts=self._min_hosts,
            )
        return self._churn

    # ------------------------------------------------------------------ #
    # the operation surface
    # ------------------------------------------------------------------ #
    def get(self, key: Any, origin_host: HostId | None = None) -> OperationHandle:
        """Exact-match / nearest lookup of ``key``."""
        return self._run_single("search", key, origin_host)

    def nearest(self, query: Any, origin_host: HostId | None = None) -> OperationHandle:
        """Nearest-neighbour (point-location) query."""
        return self._run_single("search", query, origin_host)

    def range(self, query_range: Any, origin_host: HostId | None = None) -> OperationHandle:
        """Output-sensitive range reporting (``status="unsupported"`` on DHTs)."""
        return self._run_single("range", query_range, origin_host)

    def insert(self, item: Any, origin_host: HostId | None = None) -> OperationHandle:
        """Insert one item."""
        return self._run_single("insert", item, origin_host)

    def delete(self, item: Any, origin_host: HostId | None = None) -> OperationHandle:
        """Delete one item."""
        return self._run_single("delete", item, origin_host)

    def batch(self, operations: Sequence[Any]) -> BatchReport:
        """Run a mixed batch concurrently through the round-based engine.

        ``operations`` may mix :class:`~repro.engine.executor.Operation`
        objects, ``(kind, payload)`` / ``(kind, payload, origin_host)``
        tuples and ``{"kind": ..., "payload": ..., "origin_host": ...}``
        mappings; kind aliases (``"get"``, ``"nearest"``, ...) resolve to
        the canonical four.  Per-operation trouble — retryable conflicts
        that exhaust their retries, dead hosts, unsupported operations —
        comes back as per-handle statuses; the call itself only raises
        for caller errors (unknown kinds, an empty cluster).
        """
        self._check_open()
        normalized = [self._normalize(operation) for operation in operations]
        result = self.executor.run(normalized)
        handles = [
            self._classify(OperationHandle.from_outcome(outcome, index))
            for index, outcome in enumerate(result.outcomes)
        ]
        return BatchReport(handles, result)

    def _normalize(self, operation: Any) -> Operation:
        if isinstance(operation, Operation):
            return Operation(
                kind=_canonical_kind(operation.kind),
                payload=operation.payload,
                origin_host=operation.origin_host,
            )
        if isinstance(operation, Mapping):
            return Operation(
                kind=_canonical_kind(operation["kind"]),
                payload=operation["payload"],
                origin_host=operation.get("origin_host"),
            )
        if isinstance(operation, tuple) and 2 <= len(operation) <= 3:
            kind, payload = operation[0], operation[1]
            origin = operation[2] if len(operation) == 3 else None
            return Operation(
                kind=_canonical_kind(kind), payload=payload, origin_host=origin
            )
        raise ValueError(
            f"cannot interpret {operation!r} as an operation; pass an "
            "Operation, a (kind, payload[, origin_host]) tuple, or a mapping"
        )

    def _classify(self, handle: OperationHandle) -> OperationHandle:
        """Promote capability-level failures to the ``unsupported`` status.

        The executor reports what the structure raised; the spec knows
        whether that operation could *ever* succeed on this family (e.g.
        updates on the static Chord baseline).
        """
        if handle.status == STATUS_FAILED:
            if handle.kind == "range" and not self.spec.supports_range:
                handle.status = STATUS_UNSUPPORTED
            elif handle.kind in ("insert", "delete") and not self.spec.supports_updates:
                handle.status = STATUS_UNSUPPORTED
        return handle

    def _default_origin(self) -> HostId:
        # Hot path for immediate singles: O(1) membership checks with an
        # early exit, not a per-operation copy of the alive-host list.
        network = self.network
        failed = network.failed_hosts
        for host in self.structure.origin_hosts():
            if host in network and host not in failed:
                return host
        raise QueryError("cluster has no alive origin hosts")

    def _run_single(
        self, kind: str, payload: Any, origin_host: HostId | None
    ) -> OperationHandle:
        self._check_open()
        kind = _canonical_kind(kind)
        if self.mode == "batched":
            return self.batch([Operation(kind, payload, origin_host=origin_host)])[0]
        origin = origin_host if origin_host is not None else self._default_origin()
        steps_of = {
            "search": self.structure.search_steps,
            "range": self.structure.range_steps,
            "insert": self.structure.insert_steps,
            "delete": self.structure.delete_steps,
        }[kind]
        handle = OperationHandle(
            kind=kind, payload=payload, origin_host=origin, status="ok"
        )
        # One measurement window around *all* attempts: traffic burned by
        # fault-retried attempts is real and stays billed on the handle.
        with self.network.measure() as stats:
            while True:
                try:
                    handle.value = run_immediate(
                        self.network,
                        steps_of(payload, origin),
                        origin,
                        kind=_KIND_OF[kind],
                    )
                except FaultInjectedError as error:
                    if handle.retries >= self._max_retries:
                        handle.error = error
                        handle.status = STATUS_GAVE_UP
                        break
                    handle.retries += 1
                    continue
                except ReproError as error:
                    handle.error = error
                    handle.status = STATUS_FAILED
                    self._classify(handle)
                break
        # Messages charged before a failure are real traffic; bill them on
        # the handle either way (matching the batched path's accounting).
        handle.messages = stats.messages
        handle.latency = stats.latency
        # Failed singles committed too (their error is deterministic), so
        # journal unconditionally; batched-mode singles are journaled as
        # one-operation batches by the executor's commit hook instead.
        if self._durability is not None:
            self._durability.record_action(
                "single",
                {"kind": kind, "payload": payload, "origin_host": origin_host},
            )
        return handle

    # ------------------------------------------------------------------ #
    # lifecycle: churn, repair, sessions
    # ------------------------------------------------------------------ #
    def configure_churn(
        self,
        rng: random.Random | None = None,
        join_fraction: float | None = None,
        min_hosts: int | None = None,
    ) -> None:
        """Override churn-controller settings before the first lifecycle call.

        Accepting an external ``rng`` lets a harness share one seeded
        stream between victim selection and its own workload draws.
        """
        if self._churn is not None:
            raise StructureError(
                "churn controller already materialised; configure before the "
                "first lifecycle call"
            )
        if rng is not None and self._durability is not None:
            raise StorageError(
                "storage= refuses an external churn rng: recovery re-seeds "
                "churn from the recorded seed, so an external stream would "
                "diverge on replay"
            )
        if rng is not None:
            self._churn_rng = rng
        if join_fraction is not None:
            self._join_fraction = join_fraction
        if min_hosts is not None:
            self._min_hosts = min_hosts
        if self._durability is not None:
            self._durability.record_action(
                "configure_churn",
                {"join_fraction": join_fraction, "min_hosts": min_hosts},
            )

    def _journal_churn(self, action: str, host_id: HostId | None) -> None:
        # Journal the *request* (the victim may be None = "pick one"): the
        # churn controller's seeded rng is part of snapshots, so replaying
        # the request re-draws the same victim and the rng stream evolves
        # identically for later events.
        if self._durability is not None:
            self._durability.record_action(
                "churn", {"action": action, "host": host_id}
            )

    def join_host(self) -> ChurnEvent:
        """Register a fresh host and rebalance load onto it."""
        self._check_open()
        event = self.churn.join()
        self._journal_churn("join", None)
        return event

    def leave_host(self, host_id: HostId | None = None) -> ChurnEvent:
        """Gracefully retire a host (records handed off first)."""
        self._check_open()
        event = self.churn.leave(host_id)
        self._journal_churn("leave", host_id)
        return event

    def crash_host(self, host_id: HostId | None = None) -> ChurnEvent:
        """Fail a host without warning, then self-repair and remove it."""
        self._check_open()
        event = self.churn.crash(host_id)
        self._journal_churn("crash", host_id)
        return event

    def recover_host(self, host_id: HostId | None = None) -> ChurnEvent:
        """Bring a failed host back online (the inverse of a crash fault).

        Recovery is the self-healing half of fault injection: a host a
        fault plan (or :class:`~repro.net.failure.FailureInjector`)
        crash-stopped rejoins with its records intact — no repair traffic,
        just a membership-epoch bump that invalidates stale route caches.
        """
        self._check_open()
        event = self.churn.recover(host_id)
        self._journal_churn("recover", host_id)
        return event

    def run_churn_schedule(self, kinds: Sequence[str]) -> list[ChurnEvent]:
        """Apply ``"join"`` / ``"leave"`` / ``"crash"`` / ``"recover"`` events.

        Each event runs through the façade's own lifecycle methods, so a
        journaled cluster logs every event individually — a crash midway
        through a schedule keeps the committed prefix.
        """
        self._check_open()
        applied: list[ChurnEvent] = []
        for kind in kinds:
            if kind == "join":
                applied.append(self.join_host())
            elif kind == "leave":
                applied.append(self.leave_host())
            elif kind == "crash":
                applied.append(self.crash_host())
            elif kind == "recover":
                applied.append(self.recover_host())
            else:
                raise ValueError(f"unknown churn event kind {kind!r}")
        return applied

    @property
    def churn_events(self) -> list[ChurnEvent]:
        """Every membership change applied so far, with measured repair cost."""
        return list(self._churn.events) if self._churn is not None else []

    def repair(self, host_ids: Sequence[HostId]) -> RepairResult:
        """Re-home the records orphaned by crashed ``host_ids``."""
        self._check_open()
        self.churn  # materialise the repair engine
        assert self._repair_engine is not None
        result = self._repair_engine.repair(list(host_ids))
        if self._durability is not None:
            self._durability.record_action("repair", {"host_ids": list(host_ids)})
        return result

    @contextmanager
    def session(self) -> Iterator[ClusterSession]:
        """Scope a measurement window: ``with cluster.session() as s: ...``."""
        self._check_open()
        with self.network.measure() as stats:
            yield ClusterSession(self, stats)

    def __enter__(self) -> "Cluster":
        self._check_open()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut the façade down; further operations raise ``StructureError``.

        Idempotent and thread-safe: a second (or concurrent) ``close()``
        — a double-close from a server worker, a context manager exiting
        while an HTTP handler tears the cluster down — is a no-op rather
        than a race on the storage handles.  The churn controller is kept
        so ``churn_events`` — the measured history of a run — stays
        readable after the context manager exits.  A journaled cluster's
        storage is flushed to stable storage and its handles released
        (the store stays reopenable).
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            self._executor = None
            if self._durability is not None:
                self._durability.backend.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StructureError("cluster is closed")

    # ------------------------------------------------------------------ #
    # durability: save / load / recover (repro.storage)
    # ------------------------------------------------------------------ #
    @property
    def storage(self) -> StorageBackend | None:
        """The attached durability backend, if any."""
        return self._durability.backend if self._durability is not None else None

    @property
    def applied_operations(self) -> int:
        """Committed actions journaled or replayed by this cluster."""
        return self._durability.applied_actions if self._durability is not None else 0

    def save(self) -> None:
        """Write a full-state snapshot at the current log position and fsync.

        Recovery from a freshly saved store restores the snapshot and
        replays an empty tail; :meth:`load` requires exactly this state.
        """
        self._check_open()
        if self._durability is None:
            raise StorageError(
                "cluster has no storage attached; construct with storage="
            )
        self._write_snapshot()
        self._durability.backend.sync()

    def _maybe_snapshot(self) -> None:
        # Cadence-triggered: defer rather than fail while a measurement
        # window is open (the snapshot lands after the next action).
        if not self.network._measure_stack:
            self._write_snapshot()

    def _write_snapshot(self) -> None:
        assert self._durability is not None
        if self.network._measure_stack:
            raise StorageError(
                "cannot snapshot inside an open measure session: the "
                "restored state would hold a phantom half-open window"
            )
        manifest, blob = capture_snapshot(
            self.structure,
            self._churn,
            self._repair_engine,
            self._snapshot_config(),
            upto=self._durability.backend.record_count,
            actions=self._durability.applied_actions,
            structure_name=self.spec.name,
        )
        self._durability.backend.write_snapshot(manifest, blob)
        self._durability.note_snapshot()

    def _snapshot_config(self) -> dict[str, Any]:
        return {
            "structure": self.spec.name,
            "seed": self.seed,
            "mode": self.mode,
            "workers": self.workers,
            "hosts": self._hosts,
            "memory_size": self._memory_size,
            "max_retries": self._max_retries,
            "join_fraction": self._join_fraction,
            "min_hosts": self._min_hosts,
            "snapshot_every": self._snapshot_every,
            "topology": (
                self.network.topology.describe()
                if self.network.topology is not None
                else None
            ),
            "faults": (
                self.network.faults.describe()
                if self.network.faults is not None
                else None
            ),
            "round_budget": self._round_budget,
            "options": dict(self._options),
            "trace": self.network.trace,
        }

    @classmethod
    def _from_restored_state(
        cls, state: Mapping[str, Any], structure_name: str
    ) -> "Cluster":
        config = state["config"]
        cluster = cls.__new__(cls)
        cluster.spec = resolve_structure(structure_name)
        cluster.mode = config["mode"]
        cluster.workers = config["workers"]
        cluster.seed = config["seed"]
        cluster._hosts = config["hosts"]
        cluster._memory_size = config["memory_size"]
        cluster._options = dict(config["options"])
        cluster._network = None
        # The unpickled network carries the live topology instance; the
        # config's portable dict is only kept for the facade's own record
        # (and for the journal cross-check in recover()).
        cluster._topology = topology_from_config(config.get("topology"))
        # The live fault plan — mid-stream RNG state included — travels
        # inside the pickled network, so replayed tails consume the same
        # decision stream the pre-crash run would have.
        cluster._faults = state["structure"].network.faults
        cluster._round_budget = config.get("round_budget")
        cluster._route_cache = False
        cluster._max_retries = config["max_retries"]
        cluster._churn_rng = None
        cluster._join_fraction = config["join_fraction"]
        cluster._min_hosts = config["min_hosts"]
        cluster._structure = state["structure"]
        cluster._executor = None
        cluster._churn = state["churn"]
        cluster._repair_engine = state["repair_engine"]
        cluster._closed = False
        cluster._close_lock = threading.Lock()
        cluster._durability = None
        cluster._snapshot_every = config.get("snapshot_every", 0)
        return cluster

    @classmethod
    def load(cls, path: "str | StorageBackend") -> "Cluster":
        """Restore a cluster from the newest snapshot of a saved store.

        Snapshot-only: the store must have been :meth:`save`-d at its
        current log position (no unreplayed tail) — otherwise this
        raises and :meth:`recover` is the right call.  The returned
        cluster is *detached* from the store: it operates normally but
        journals nothing further.
        """
        backend = open_storage(path)
        snapshot = backend.latest_snapshot()
        if snapshot is None:
            raise StorageError(
                f"no snapshot in {backend.path!r}; use Cluster.recover() to "
                "replay the operation log instead"
            )
        manifest, blob = snapshot
        tail = backend.record_count - manifest["upto"]
        if tail > 0:
            raise StorageError(
                f"snapshot in {backend.path!r} is {tail} log record(s) stale; "
                "use Cluster.recover() to replay the tail"
            )
        state = restore_snapshot(manifest, blob)
        backend.close()
        return cls._from_restored_state(state, manifest["structure"])

    @classmethod
    def recover(
        cls,
        path: "str | StorageBackend",
        *,
        trim_torn_tail: bool = False,
        from_snapshot: bool = True,
    ) -> "Cluster":
        """Rebuild the exact pre-crash state and reattach the journal.

        Loads the newest snapshot (if any; ``from_snapshot=False`` forces
        a full from-genesis replay) and re-executes the committed log
        tail through the ordinary engine, verifying the journal's audit
        records along the way.  Uncommitted dangles a crash left behind
        — trailing membership records whose action never committed —
        are truncated; a *torn* final record is only trimmed when
        ``trim_torn_tail=True`` (corruption elsewhere always raises).
        The returned cluster keeps journaling to the same store, so a
        recovered run continues exactly where the committed prefix ended.
        """
        backend = open_storage(path)
        try:
            records = backend.records()
        except StorageError as exc:
            if not (trim_torn_tail and exc.torn_tail):
                raise
            backend.trim_torn_tail()
            records = backend.records()
        if not records:
            raise StorageError(f"{backend.path!r} holds no log records to recover")
        committed = committed_prefix(records)
        if committed < len(records):
            backend.truncate(committed)
            records = records[:committed]
        if not records or records[0].kind != "create":
            raise StorageError(
                f"log in {backend.path!r} does not begin with a 'create' "
                "record; not a cluster journal"
            )
        create = records[0].payload
        controller = DurabilityController(
            backend, snapshot_every=create.get("snapshot_every", 0)
        )
        snapshot = backend.latest_snapshot() if from_snapshot else None
        if snapshot is not None and snapshot[0]["upto"] > len(records):
            raise StorageError(
                f"snapshot in {backend.path!r} covers {snapshot[0]['upto']} "
                f"log records but only {len(records)} committed; the store "
                "is inconsistent"
            )
        if snapshot is not None:
            manifest, blob = snapshot
            state = restore_snapshot(manifest, blob)
            snapshot_topology = state["config"].get("topology")
            create_topology = create.get("topology")
            if snapshot_topology != create_topology:
                raise StorageError(
                    f"topology mismatch in {backend.path!r}: the journal's "
                    f"create record says {create_topology!r} but the snapshot "
                    f"was taken under {snapshot_topology!r}; refusing to "
                    "recover onto a different network layout"
                )
            snapshot_faults = state["config"].get("faults")
            create_faults = create.get("faults")
            if snapshot_faults != create_faults:
                raise StorageError(
                    f"fault-plan mismatch in {backend.path!r}: the journal's "
                    f"create record says {create_faults!r} but the snapshot "
                    f"was taken under {snapshot_faults!r}; refusing to replay "
                    "a tail against a different chaos schedule"
                )
            cluster = cls._from_restored_state(state, manifest["structure"])
            cluster._attach_durability(controller)
            controller.applied_actions = manifest["actions"]
            cluster.network.add_membership_listener(controller.membership_listener)
            controller.replay(cluster, records[manifest["upto"]:])
            return cluster
        # Full from-genesis replay: re-run construction under the recorded
        # accounting substrate, then re-execute every committed action.
        substrate = tracing_mode() if create.get("trace") else ledger_mode()
        with substrate:
            cluster = cls(
                structure=create["structure"],
                items=create["items"],
                hosts=create["hosts"],
                memory_size=create["memory_size"],
                seed=create["seed"],
                mode=create["mode"],
                workers=create["workers"],
                topology=topology_from_config(create.get("topology")),
                faults=faults_from_config(create.get("faults")),
                round_budget=create.get("round_budget"),
                max_retries=create["max_retries"],
                join_fraction=create["join_fraction"],
                min_hosts=create["min_hosts"],
                **create["options"],
            )
            cluster._snapshot_every = create.get("snapshot_every", 0)
            cluster._attach_durability(controller)
            controller.applied_actions = 1  # the create record
            if cluster._structure is not None:
                cluster.network.add_membership_listener(
                    controller.membership_listener
                )
            controller.replay(cluster, records[1:])
        return cluster

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def _ground_set_size(self) -> int | None:
        structure = self._structure
        for candidate in (structure, getattr(structure, "web", None)):
            if candidate is None:
                continue
            size = getattr(candidate, "ground_set_size", None)
            if size is not None:
                return size
        keys = getattr(structure, "keys", None)
        return len(keys) if keys is not None else None

    def stats(self) -> ClusterStats:
        """Deployment + lifetime-traffic snapshot (costs no messages)."""
        network = self.network
        log = network.message_log
        return ClusterStats(
            structure=self.spec.name,
            hosts=network.host_count,
            alive_hosts=len(network.alive_host_ids()),
            failed_hosts=len(network.failed_hosts),
            ground_set_size=self._ground_set_size(),
            max_memory_per_host=(
                self.structure.max_memory_per_host()
                if hasattr(self.structure, "max_memory_per_host")
                else network.max_memory_used()
            ),
            membership_epoch=network.membership_epoch,
            messages_total=network.total_messages,
            messages_by_kind={
                kind.value: count
                for kind, count in log.counts_by_kind().items()
                if count
            },
            construction_messages=getattr(self.structure, "construction_messages", 0),
        )

    def congestion(self) -> Any:
        """The structure-level congestion report ``C(n)`` of §1.1."""
        structure = self.structure
        if hasattr(structure, "congestion"):
            return structure.congestion()
        return structure.web.congestion()

    def round_congestion(self) -> RoundCongestionReport:
        """Whole-session per-round congestion aggregates (PR-4 ledger)."""
        return round_congestion_report(self.network)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        loaded = self._structure is not None
        return (
            f"Cluster(structure={self.spec.name!r}, mode={self.mode!r}, "
            f"loaded={loaded}, hosts={self.network.host_count if loaded else 0})"
        )
