"""Deprecation shims for the pre-façade wiring idiom.

Before :mod:`repro.api`, every consumer composed the stack by hand —
construct a structure class directly, wrap a
:class:`~repro.engine.executor.BatchExecutor` for batches, and wire a
:class:`~repro.net.churn.ChurnController` over a
:class:`~repro.engine.repair.RepairEngine` for membership change.  These
shims keep that direct-construction idiom importable for one release,
warning on use; new code should construct a
:class:`repro.api.cluster.Cluster` instead, which composes all three
behind one constructor.

The shims are deliberately thin: each one forwards to exactly the code
path the old idiom used, so behaviour (and message accounting) is
unchanged — only the entry point is deprecated.
"""

from __future__ import annotations

import random
import warnings
from typing import Any, Sequence

from repro.api.registry import resolve_structure
from repro.engine.executor import BatchExecutor
from repro.engine.repair import RepairEngine
from repro.net.churn import ChurnController


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead (see repro.api)",
        DeprecationWarning,
        stacklevel=3,
    )


def build_structure(name: str, items: Sequence[Any], **kwargs: Any) -> Any:
    """Deprecated: construct a bare structure by registry name.

    Use ``Cluster(structure=name, items=items, ...)`` and its
    ``.structure`` escape hatch instead.
    """
    _warn("repro.api.compat.build_structure", "repro.api.Cluster")
    return resolve_structure(name).factory(items, **kwargs)


def build_executor(structure: Any, **kwargs: Any) -> BatchExecutor:
    """Deprecated: hand-wire a batch executor over a structure.

    Use ``Cluster.batch`` (or ``Cluster.from_structure(structure)``)
    instead.
    """
    _warn("repro.api.compat.build_executor", "Cluster.batch")
    return BatchExecutor(structure, **kwargs)


def build_churn_controller(
    structure: Any, rng: random.Random | None = None, **kwargs: Any
) -> ChurnController:
    """Deprecated: hand-wire churn control over a structure.

    Use the ``Cluster`` lifecycle methods (``join_host`` / ``leave_host``
    / ``crash_host`` / ``repair``) instead.
    """
    _warn("repro.api.compat.build_churn_controller", "Cluster.join_host/leave_host/crash_host")
    return ChurnController(structure.network, RepairEngine(structure), rng=rng, **kwargs)
