"""The structure registry: string names to structure factories.

The paper's framework is *one* abstraction instantiated many ways —
sorted lists, quadtrees, tries, trapezoidal maps — plus the Table 1
baselines it is measured against.  The registry gives every deployable
structure a stable string name so that the :class:`repro.api.cluster
.Cluster` façade can construct any of them from configuration alone::

    Cluster(structure="skipweb1d", items=keys, seed=7)
    Cluster(structure="chord", items=keys)

Structures *self-register*: each instantiation package (``repro.onedim``,
``repro.spatial``, ``repro.strings``, ``repro.planar``) and the baselines
package call :func:`register_structure` at import time.  The registry
itself imports none of them at module level — :func:`ensure_builtin_
structures` pulls them in lazily the first time a name is resolved, so
``import repro.api`` stays cheap and cycle-free.

A :class:`StructureSpec` carries two factories with one common shape
(``factory(items, *, network=None, seed=0, **options)``): the ordinary
constructor and the ``build_from_sorted`` bulk-load path, plus capability
flags (``supports_range``, ``supports_updates``) the façade uses to
explain *why* an operation came back ``"unsupported"`` instead of
pretending every structure can do everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import StructureError

#: Factory shape shared by ordinary and bulk-load construction.
StructureFactory = Callable[..., Any]


@dataclass(frozen=True)
class StructureSpec:
    """One registered structure family.

    Attributes
    ----------
    name:
        The registry key (``"skipweb1d"``, ``"chord"``, ...).
    cls:
        The structure class the factories produce, for ``isinstance``
        checks and registry-completeness tests.
    factory:
        ``factory(items, *, network=None, seed=0, **options)`` building a
        fresh structure.  Structure-specific options (``memory_size``,
        ``hosts``, ``alphabet``, ``bounding_cube``, ``box``, ...) pass
        through as keywords; irrelevant ones are rejected.
    bulk_factory:
        Same shape, mapping to the structure's ``build_from_sorted``
        bulk-load constructor (pre-sorted, deduplicated items; charges
        CONSTRUCTION ledger messages).
    supports_range:
        Whether ``range_steps`` can ever succeed (``False`` for
        hash-based overlays — the paper's §1.2 point about Chord).
    supports_updates:
        Whether ``insert_steps`` / ``delete_steps`` can ever succeed.
    shardable:
        Whether read-only batches on this family may run under the
        multi-worker :class:`repro.engine.sharded.ShardedExecutor`.
        ``True`` for every built-in family (their query paths never
        mutate shared state); a future family whose reads rebalance or
        cache inside the structure should register ``False`` so
        ``Cluster(workers=N)`` keeps it on the serial path.
    durable:
        Whether this family round-trips through :mod:`repro.storage`
        snapshots and deterministic log replay (``Cluster(storage=...)``).
        ``True`` for every built-in family — their construction and
        operations are fully determined by the recorded seed and
        operation history; a future family drawing randomness outside
        the seeded streams should register ``False`` so the façade
        refuses to journal runs it could not replay byte-identically.
    description:
        One line for ``repro.cli --structures`` and the docs.
    """

    name: str
    cls: type
    factory: StructureFactory
    bulk_factory: StructureFactory | None = None
    supports_range: bool = True
    supports_updates: bool = True
    shardable: bool = True
    durable: bool = True
    description: str = ""
    extras: dict[str, Any] = field(default_factory=dict)


_REGISTRY: dict[str, StructureSpec] = {}

#: Packages whose import self-registers the built-in structures.
_BUILTIN_MODULES = (
    "repro.onedim",
    "repro.spatial",
    "repro.strings",
    "repro.planar",
    "repro.baselines",
)
_builtins_loaded = False


def register_structure(spec: StructureSpec) -> StructureSpec:
    """Add one structure family to the registry (idempotent per class).

    Re-registering the same name for the same class is a no-op (module
    reloads, test isolation); registering a different class under an
    existing name is an error — names are the public API surface.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.cls.__qualname__ != spec.cls.__qualname__:
        raise StructureError(
            f"structure name {spec.name!r} is already registered "
            f"for {existing.cls.__name__}"
        )
    _REGISTRY[spec.name] = spec
    return spec


def ensure_builtin_structures() -> None:
    """Import every built-in structure package so it self-registers."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _builtins_loaded = True


def resolve_structure(name: str) -> StructureSpec:
    """Look a structure family up by name, loading built-ins on demand."""
    ensure_builtin_structures()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise StructureError(
            f"unknown structure {name!r}; registered structures: {known}"
        ) from None


def available_structures() -> list[str]:
    """Sorted names of every registered structure family."""
    ensure_builtin_structures()
    return sorted(_REGISTRY)


def structure_specs() -> dict[str, StructureSpec]:
    """A copy of the full registry (name -> spec)."""
    ensure_builtin_structures()
    return dict(_REGISTRY)
