"""Uniform result objects returned by the :class:`repro.api.cluster.Cluster` façade.

Every operation — single or batched, on any registered structure — comes
back as an :class:`OperationHandle`: one object carrying the operation's
identity, its *status*, its domain-level value and its measured cost.
The statuses translate the internal error taxonomy
(:mod:`repro.errors`) into three client-facing outcomes:

``"ok"``
    The operation completed; ``value`` holds the structure's result
    object (a ``QueryResult``, ``RangeQueryResult``, ``UpdateResult``,
    ``ChordLookup``, ...).
``"unsupported"``
    The structure can *never* perform this operation
    (:class:`~repro.errors.UnsupportedOperationError` — e.g. a range
    query on the Chord baseline, §1.2).  Retrying is pointless.
``"failed"``
    The operation failed on this attempt: a retryable conflict that
    exhausted its retries, a dead host, a duplicate insert, an update on
    a static structure.  ``error`` holds the underlying exception.
``"timed_out"``
    The operation outlived the cluster's per-operation ``round_budget``
    and was abandoned (:class:`~repro.errors.OperationTimedOutError`).
``"gave_up"``
    Every fault-injection retry was consumed by injected drops
    (:class:`~repro.errors.FaultInjectedError`); the operation itself was
    healthy, the (simulated) network was not.

A batch returns a :class:`BatchReport` — a sequence of handles (one per
submitted operation, in submission order) that also exposes the
round-engine aggregates (rounds, messages, per-host per-round congestion)
the benchmarks are built on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.engine.executor import BatchResult, OpOutcome
from repro.errors import UnsupportedOperationError
from repro.net.congestion import RoundCongestionReport
from repro.net.naming import HostId


def jsonable(value: Any) -> Any:
    """Best-effort portable rendering of any result value.

    The shared serialization rule of the server, the CLI and the
    dashboard: JSON scalars pass through, containers recurse, dataclasses
    (the structures' ``QueryResult`` / ``RangeQueryResult`` /
    ``UpdateResult`` / ``ChordLookup`` families, plus range payloads like
    ``Interval`` and ``Box``) become ``{"type": <class>, <field>: ...}``
    dicts, ``as_dict()`` objects use their own summary, and anything else
    falls back to ``repr`` — so serialization never raises, whatever a
    structure puts in a handle.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        rendered = {"type": type(value).__name__}
        for f in dataclasses.fields(value):
            rendered[f.name] = jsonable(getattr(value, f.name))
        return rendered
    if isinstance(value, Mapping):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return [jsonable(item) for item in sorted(value, key=repr)]
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return jsonable(as_dict())
    return repr(value)

#: The operation kinds a cluster accepts (aliases resolved in the façade).
OPERATION_KINDS = ("search", "range", "insert", "delete")

#: The statuses an :class:`OperationHandle` can carry.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_UNSUPPORTED = "unsupported"
STATUS_TIMED_OUT = "timed_out"
STATUS_GAVE_UP = "gave_up"


@dataclass
class OperationHandle:
    """One operation's identity, status, value and measured cost."""

    kind: str
    payload: Any
    origin_host: HostId | None
    status: str
    value: Any = None
    error: Exception | None = None
    messages: int = 0
    rounds: int = 0
    retries: int = 0
    cache_hits: int = 0
    index: int = 0
    #: Sum of link costs of the operation's charged hops.  0 without an
    #: explicit topology; equals ``messages`` under ``FlatTopology``.
    latency: int = 0

    @property
    def ok(self) -> bool:
        """Whether the operation completed without error."""
        return self.status == STATUS_OK

    @property
    def unsupported(self) -> bool:
        """Whether the structure can never perform this operation."""
        return self.status == STATUS_UNSUPPORTED

    def result(self) -> Any:
        """The operation's value, re-raising its error if it did not complete."""
        if self.error is not None:
            raise self.error
        return self.value

    def to_dict(self, include_value: bool = True) -> dict[str, Any]:
        """JSON-serializable rendering of the handle (the wire format).

        Everything `json.dumps` accepts directly: the payload and value
        are rendered through :func:`jsonable`, and a non-``None`` error
        contributes its *typed name* (``"UpdateError"``,
        ``"FaultInjectedError"``, ...) plus message — so the three-valued
        status taxonomy and the error types survive HTTP.  Shared by the
        server, the CLI load generator and the dashboard.
        """
        data: dict[str, Any] = {
            "index": self.index,
            "kind": self.kind,
            "payload": jsonable(self.payload),
            "origin_host": self.origin_host,
            "status": self.status,
            "messages": self.messages,
            "rounds": self.rounds,
            "retries": self.retries,
            "cache_hits": self.cache_hits,
            "latency": self.latency,
        }
        if self.error is not None:
            data["error"] = type(self.error).__name__
            data["error_message"] = str(self.error)
        if include_value:
            data["value"] = jsonable(self.value)
        return data

    @classmethod
    def from_outcome(cls, outcome: OpOutcome, index: int = 0) -> "OperationHandle":
        """Wrap one executor outcome, translating errors into statuses."""
        if outcome.terminal == "timed_out":
            status = STATUS_TIMED_OUT
        elif outcome.terminal == "gave_up":
            status = STATUS_GAVE_UP
        elif outcome.error is None:
            status = STATUS_OK
        elif isinstance(outcome.error, UnsupportedOperationError):
            status = STATUS_UNSUPPORTED
        else:
            status = STATUS_FAILED
        return cls(
            kind=outcome.operation.kind,
            payload=outcome.operation.payload,
            origin_host=outcome.origin_host,
            status=status,
            value=outcome.value,
            error=outcome.error,
            messages=outcome.messages,
            rounds=outcome.rounds,
            retries=outcome.retries,
            cache_hits=outcome.cache_hits,
            index=index,
            latency=outcome.latency,
        )


class BatchReport:
    """Outcome of one :meth:`repro.api.cluster.Cluster.batch` call.

    Behaves as a sequence of :class:`OperationHandle` (submission order)
    and exposes the round-engine aggregates of the underlying
    :class:`~repro.engine.executor.BatchResult` (kept as ``raw``).
    """

    def __init__(self, handles: list[OperationHandle], raw: BatchResult) -> None:
        self.handles = handles
        self.raw = raw

    # -- sequence protocol ---------------------------------------------- #
    def __len__(self) -> int:
        return len(self.handles)

    def __iter__(self) -> Iterator[OperationHandle]:
        return iter(self.handles)

    def __getitem__(self, index: int) -> OperationHandle:
        return self.handles[index]

    # -- aggregates ------------------------------------------------------ #
    @property
    def ops(self) -> int:
        return len(self.handles)

    @property
    def completed(self) -> int:
        return sum(1 for handle in self.handles if handle.ok)

    @property
    def failed(self) -> int:
        return sum(1 for handle in self.handles if handle.status == STATUS_FAILED)

    @property
    def unsupported(self) -> int:
        return sum(1 for handle in self.handles if handle.unsupported)

    @property
    def timed_out(self) -> int:
        """Operations abandoned by the per-operation round budget."""
        return sum(1 for handle in self.handles if handle.status == STATUS_TIMED_OUT)

    @property
    def gave_up(self) -> int:
        """Operations whose fault-injection retries were exhausted."""
        return sum(1 for handle in self.handles if handle.status == STATUS_GAVE_UP)

    @property
    def rounds(self) -> int:
        return self.raw.rounds

    @property
    def messages(self) -> int:
        return self.raw.messages

    @property
    def messages_per_op(self) -> float:
        return self.raw.messages_per_op

    @property
    def latency(self) -> int:
        """Weighted latency of the batch (0 without an explicit topology)."""
        return self.raw.latency

    @property
    def latency_per_op(self) -> float:
        return self.raw.latency_per_op

    @property
    def ops_per_round(self) -> float:
        return self.raw.ops_per_round

    @property
    def max_round_congestion(self) -> int:
        return self.raw.max_round_congestion

    @property
    def retries(self) -> int:
        return sum(handle.retries for handle in self.handles)

    @property
    def cache_hits(self) -> int:
        return self.raw.cache_hits

    @property
    def cache_misses(self) -> int:
        return self.raw.cache_misses

    def round_congestion(self) -> RoundCongestionReport:
        """Full round-level congestion summary of the batch."""
        return self.raw.round_congestion()

    def summary(self) -> dict[str, Any]:
        """One benchmark-table row worth of aggregate numbers."""
        summary = self.raw.summary()
        summary["unsupported"] = self.unsupported
        # Degradation keys appear only when the batch actually degraded,
        # so fault-free summaries stay byte-identical to older versions.
        if self.timed_out:
            summary["timed_out"] = self.timed_out
        if self.gave_up:
            summary["gave_up"] = self.gave_up
        return summary

    def to_dict(self, include_values: bool = True) -> dict[str, Any]:
        """JSON-serializable rendering of the whole batch (the wire format).

        ``summary`` carries the aggregate row (:meth:`summary`, including
        the nonzero-only degradation keys) and ``handles`` one
        :meth:`OperationHandle.to_dict` per submitted operation in
        submission order.  ``include_values=False`` drops the per-handle
        domain values for a counts-only report.
        """
        return {
            "ops": self.ops,
            "summary": self.summary(),
            "handles": [
                handle.to_dict(include_value=include_values)
                for handle in self.handles
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchReport(ops={self.ops}, completed={self.completed}, "
            f"failed={self.failed}, unsupported={self.unsupported}, "
            f"rounds={self.rounds}, messages={self.messages})"
        )


@dataclass(frozen=True)
class ClusterStats:
    """Point-in-time snapshot of a cluster's deployment and traffic.

    Built on the network's lifetime ledger counters and membership state
    (the PR-4 aggregates), so taking a snapshot costs no messages.
    """

    structure: str
    hosts: int
    alive_hosts: int
    failed_hosts: int
    ground_set_size: int | None
    max_memory_per_host: int
    membership_epoch: int
    messages_total: int
    messages_by_kind: dict[str, int] = field(default_factory=dict)
    construction_messages: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "structure": self.structure,
            "hosts": self.hosts,
            "alive_hosts": self.alive_hosts,
            "failed_hosts": self.failed_hosts,
            "ground_set_size": self.ground_set_size,
            "max_memory_per_host": self.max_memory_per_host,
            "membership_epoch": self.membership_epoch,
            "messages_total": self.messages_total,
            "messages_by_kind": dict(self.messages_by_kind),
            "construction_messages": self.construction_messages,
        }
