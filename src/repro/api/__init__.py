"""``repro.api`` — the supported public surface of the reproduction.

One import gives a client everything the paper's framework promises:

* :class:`~repro.api.cluster.Cluster` — the façade composing network,
  structure family, execution mode, churn control and accounting behind
  one constructor; every operation returns a uniform
  :class:`~repro.api.results.OperationHandle`.
* The **structure registry** — every deployable structure family (the
  four skip-web instantiations, the bucket variant, the Table 1 baseline
  overlays and the Chord DHT) resolvable by string name; see
  :func:`~repro.api.registry.available_structures`.
* :class:`~repro.api.results.BatchReport` /
  :class:`~repro.api.results.ClusterStats` — typed aggregates for
  batches and deployment snapshots.

Stability policy: the names in ``__all__`` below *are* the supported
API.  They are locked by ``tests/test_api_surface.py`` (run in CI), so
any signature change is an explicit, reviewed event.  Everything outside
``repro.api`` — the structure classes, the engine, the network simulator
— remains importable for research use but may change shape between
releases; :mod:`repro.api.compat` keeps the old hand-wiring idiom alive
one release longer with deprecation warnings.
"""

from repro.api.cluster import (
    Cluster,
    ClusterSession,
    default_workers,
    set_default_workers,
)
from repro.api.registry import (
    StructureSpec,
    available_structures,
    register_structure,
    resolve_structure,
    structure_specs,
)
from repro.api.results import BatchReport, ClusterStats, OperationHandle
from repro.engine.executor import Operation
from repro.net.faults import FaultPlan, FaultRule, resolve_faults
from repro.net.topology import (
    ClusteredTopology,
    FlatTopology,
    GeoTopology,
    Topology,
    resolve_topology,
)

__all__ = [
    "Cluster",
    "ClusterSession",
    "Operation",
    "OperationHandle",
    "BatchReport",
    "ClusterStats",
    "StructureSpec",
    "register_structure",
    "resolve_structure",
    "available_structures",
    "structure_specs",
    "set_default_workers",
    "default_workers",
    "Topology",
    "FlatTopology",
    "ClusteredTopology",
    "GeoTopology",
    "resolve_topology",
    "FaultPlan",
    "FaultRule",
    "resolve_faults",
]
