"""One-dimensional data: sorted linked lists and their skip-webs.

This subpackage covers the one-dimensional instantiation of the skip-web
framework:

* :class:`~repro.onedim.linked_list.SortedListStructure` — the ordered
  doubly-linked list as a range-determined link structure (§2.1), whose
  set-halving lemma is Lemma 1 of the paper.
* :class:`~repro.onedim.skipweb1d.SkipWeb1D` — the generic skip-web over
  the sorted list (matches skip graphs / SkipNet, Table 1 row "skip-webs"
  with arbitrary blocking).
* :class:`~repro.onedim.skipweb1d.BucketSkipWeb1D` — the improved
  blocking strategy of §2.4.1, achieving ``O(log n / log M)`` expected
  query messages (Table 1 rows "skip-webs" and "bucket skip-webs").
"""

from repro.api.registry import StructureSpec, register_structure
from repro.errors import StructureError
from repro.onedim.linked_list import NearestNeighborAnswer, SortedListStructure
from repro.onedim.skipweb1d import BucketSkipWeb1D, SkipWeb1D

__all__ = [
    "NearestNeighborAnswer",
    "SortedListStructure",
    "SkipWeb1D",
    "BucketSkipWeb1D",
]


def _skipweb1d(items, *, network=None, seed=0, hosts=None, **options):
    return SkipWeb1D(items, network=network, host_count=hosts, seed=seed, **options)


def _skipweb1d_bulk(items, *, network=None, seed=0, hosts=None, **options):
    return SkipWeb1D.build_from_sorted(
        items, network=network, host_count=hosts, seed=seed, **options
    )


def _bucket_memory(options):
    memory_size = options.pop("memory_size", None)
    if memory_size is None:
        raise StructureError("bucket-skipweb1d requires memory_size= (the paper's M)")
    return memory_size


def _bucket_skipweb1d(items, *, network=None, seed=0, **options):
    return BucketSkipWeb1D(
        items, _bucket_memory(options), network=network, seed=seed, **options
    )


def _bucket_skipweb1d_bulk(items, *, network=None, seed=0, **options):
    return BucketSkipWeb1D.build_from_sorted(
        items, _bucket_memory(options), network=network, seed=seed, **options
    )


register_structure(
    StructureSpec(
        name="skipweb1d",
        cls=SkipWeb1D,
        factory=_skipweb1d,
        bulk_factory=_skipweb1d_bulk,
        description="1-d skip-web over sorted keys (arbitrary blocking, §2.4)",
    )
)
register_structure(
    StructureSpec(
        name="bucket-skipweb1d",
        cls=BucketSkipWeb1D,
        factory=_bucket_skipweb1d,
        bulk_factory=_bucket_skipweb1d_bulk,
        description="bucket skip-web of §2.4.1 (hosts store M items; O(log_M H) queries)",
    )
)
