"""One-dimensional data: sorted linked lists and their skip-webs.

This subpackage covers the one-dimensional instantiation of the skip-web
framework:

* :class:`~repro.onedim.linked_list.SortedListStructure` — the ordered
  doubly-linked list as a range-determined link structure (§2.1), whose
  set-halving lemma is Lemma 1 of the paper.
* :class:`~repro.onedim.skipweb1d.SkipWeb1D` — the generic skip-web over
  the sorted list (matches skip graphs / SkipNet, Table 1 row "skip-webs"
  with arbitrary blocking).
* :class:`~repro.onedim.skipweb1d.BucketSkipWeb1D` — the improved
  blocking strategy of §2.4.1, achieving ``O(log n / log M)`` expected
  query messages (Table 1 rows "skip-webs" and "bucket skip-webs").
"""

from repro.onedim.linked_list import NearestNeighborAnswer, SortedListStructure
from repro.onedim.skipweb1d import BucketSkipWeb1D, SkipWeb1D

__all__ = [
    "NearestNeighborAnswer",
    "SortedListStructure",
    "SkipWeb1D",
    "BucketSkipWeb1D",
]
