"""The sorted doubly-linked list as a range-determined link structure.

This is the running example of §2.1 of the paper: the universe is a
total order, the structure ``D(S)`` is the sorted doubly-linked list over
``S``, the range of a node storing ``x`` is the singleton ``{x}`` and the
range of the link joining ``x`` and ``y`` is the closed interval
``[x, y]``.  Two sentinel links, ``(-inf, min]`` and ``[max, +inf)``, are
added so that every query point of the universe lies in exactly one
maximal range; this does not change the structure's asymptotics and makes
nearest-neighbour queries total.

Lemma 1 of the paper is the set-halving lemma for this structure:
``E[|C(Q, S)|] ≤ 7`` when ``T`` is a random half of ``S`` and ``Q`` is the
maximal range of ``D(T)`` containing any fixed query.  The benchmark
``benchmarks/bench_lemma1_list_halving.py`` verifies the constant
empirically via :func:`repro.core.halving.verify_halving`.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Sequence

from repro.core.bulkload import is_strictly_increasing
from repro.core.link_structure import RangeDeterminedLinkStructure, RangeUnit, UnitKind
from repro.core.ranges import Interval, Range, Singleton
from repro.errors import QueryError, StructureError

_NEG_INF = -math.inf
_POS_INF = math.inf


@dataclass(frozen=True)
class NearestNeighborAnswer:
    """Answer to a one-dimensional nearest-neighbour / point-location query."""

    query: float
    nearest: float
    predecessor: float | None
    successor: float | None
    exact: bool

    @property
    def distance(self) -> float:
        """Distance from the query to the nearest stored key."""
        return abs(self.query - self.nearest)


def _node_key(value: float) -> Hashable:
    return ("node", value)


def _link_key(low: float, high: float) -> Hashable:
    return ("link", low, high)


class SortedListStructure(RangeDeterminedLinkStructure):
    """``D(S)``: the sorted doubly-linked list over a set of numeric keys."""

    name = "sorted-list"

    def __init__(self, keys: Sequence[float]) -> None:
        converted = [float(key) for key in keys]
        if is_strictly_increasing(converted):
            # Already strictly sorted (the O(n) bulk-load fast path).
            deduplicated = converted
        else:
            deduplicated = sorted(set(converted))
        if not deduplicated:
            raise StructureError("sorted list requires at least one key")
        self._keys = deduplicated
        self._units = self._build_units()
        self._units_by_key = {unit.key: unit for unit in self._units}
        self._adjacency = self._build_adjacency()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, items: Sequence[Any], **params: Any) -> "SortedListStructure":
        return cls(items)

    def _build_units(self) -> list[RangeUnit]:
        units: list[RangeUnit] = []
        keys = self._keys
        units.append(
            RangeUnit(
                key=_link_key(_NEG_INF, keys[0]),
                kind=UnitKind.LINK,
                range=Interval.below(keys[0]),
                payload=(None, keys[0]),
            )
        )
        for index, value in enumerate(keys):
            units.append(
                RangeUnit(
                    key=_node_key(value),
                    kind=UnitKind.NODE,
                    range=Singleton(value),
                    payload=value,
                )
            )
            if index + 1 < len(keys):
                successor = keys[index + 1]
                units.append(
                    RangeUnit(
                        key=_link_key(value, successor),
                        kind=UnitKind.LINK,
                        range=Interval(value, successor),
                        payload=(value, successor),
                    )
                )
        units.append(
            RangeUnit(
                key=_link_key(keys[-1], _POS_INF),
                kind=UnitKind.LINK,
                range=Interval.above(keys[-1]),
                payload=(keys[-1], None),
            )
        )
        return units

    def _build_adjacency(self) -> dict[Hashable, list[Hashable]]:
        adjacency: dict[Hashable, list[Hashable]] = {unit.key: [] for unit in self._units}
        keys = self._keys
        boundaries: list[tuple[float, float]] = [(_NEG_INF, keys[0])]
        boundaries.extend((keys[i], keys[i + 1]) for i in range(len(keys) - 1))
        boundaries.append((keys[-1], _POS_INF))
        for low, high in boundaries:
            link = _link_key(low, high)
            if low != _NEG_INF:
                adjacency[link].append(_node_key(low))
                adjacency[_node_key(low)].append(link)
            if high != _POS_INF:
                adjacency[link].append(_node_key(high))
                adjacency[_node_key(high)].append(link)
        return adjacency

    # ------------------------------------------------------------------ #
    # incremental insertion (canonical: identical to a full rebuild)
    # ------------------------------------------------------------------ #
    def with_item(self, item: Any) -> "SortedListStructure":
        """``D(S ∪ {x})`` by splicing — bit-identical to rebuilding.

        The sorted list's unit sequence is fully determined by the sorted
        key array, so the rebuild that the base class performs can be
        replaced by an O(n) splice around the insertion position: the one
        link spanning the gap is replaced by node + two links, the
        adjacency entries of the two bracketing nodes are patched, and
        everything else is shared structurally with this instance (units
        are immutable).  ``self`` is left untouched, so the §4 update
        protocol can still diff against the pre-update snapshot.
        """
        value = float(item)
        keys = self._keys
        index = bisect.bisect_left(keys, value)
        if index < len(keys) and keys[index] == value:
            raise StructureError(f"{self.name}: item {item!r} already present")
        low = keys[index - 1] if index > 0 else _NEG_INF
        high = keys[index] if index < len(keys) else _POS_INF

        node = RangeUnit(
            key=_node_key(value), kind=UnitKind.NODE, range=Singleton(value), payload=value
        )
        left = RangeUnit(
            key=_link_key(low, value),
            kind=UnitKind.LINK,
            range=Interval.below(value) if low == _NEG_INF else Interval(low, value),
            payload=(None if low == _NEG_INF else low, value),
        )
        right = RangeUnit(
            key=_link_key(value, high),
            kind=UnitKind.LINK,
            range=Interval.above(value) if high == _POS_INF else Interval(value, high),
            payload=(value, None if high == _POS_INF else high),
        )
        old_link = _link_key(low, high)
        # Unit-list layout: [low sentinel, node k0, link k0-k1, node k1, ...,
        # node kN, high sentinel]; the replaced link sits at 2 * index.
        splice_at = 2 * index
        if self._units[splice_at].key != old_link:
            raise StructureError(
                f"sorted-list unit layout violated: expected {old_link!r} "
                f"at position {splice_at}, found {self._units[splice_at].key!r}"
            )

        clone = SortedListStructure.__new__(SortedListStructure)
        clone._keys = keys[:index] + [value] + keys[index:]
        clone._units = self._units[:splice_at] + [left, node, right] + self._units[splice_at + 1 :]
        units_by_key = dict(self._units_by_key)
        del units_by_key[old_link]
        units_by_key[left.key] = left
        units_by_key[node.key] = node
        units_by_key[right.key] = right
        clone._units_by_key = units_by_key

        adjacency = dict(self._adjacency)
        del adjacency[old_link]
        adjacency[node.key] = [left.key, right.key]
        adjacency[left.key] = ([] if low == _NEG_INF else [_node_key(low)]) + [node.key]
        adjacency[right.key] = [node.key] + ([] if high == _POS_INF else [_node_key(high)])
        if low != _NEG_INF:
            adjacency[_node_key(low)] = [
                left.key if key == old_link else key for key in adjacency[_node_key(low)]
            ]
        if high != _POS_INF:
            adjacency[_node_key(high)] = [
                right.key if key == old_link else key for key in adjacency[_node_key(high)]
            ]
        clone._adjacency = adjacency
        return clone

    # ------------------------------------------------------------------ #
    # RangeDeterminedLinkStructure interface
    # ------------------------------------------------------------------ #
    @property
    def items(self) -> Sequence[float]:
        return list(self._keys)

    @property
    def keys_sorted(self) -> list[float]:
        """The stored keys in ascending order."""
        return list(self._keys)

    def units(self) -> list[RangeUnit]:
        return list(self._units)

    def unit(self, key: Hashable) -> RangeUnit:
        try:
            return self._units_by_key[key]
        except KeyError as exc:
            raise StructureError(f"sorted-list: no unit with key {key!r}") from exc

    def unit_map(self) -> Mapping[Hashable, RangeUnit]:
        return self._units_by_key

    def keys(self) -> set[Hashable]:
        return set(self._units_by_key)

    def neighbors(self, key: Hashable) -> list[RangeUnit]:
        try:
            neighbor_keys = self._adjacency[key]
        except KeyError as exc:
            raise StructureError(f"sorted-list: no unit with key {key!r}") from exc
        return [self._units_by_key[neighbor] for neighbor in neighbor_keys]

    def overlapping(self, query_range: Range) -> list[RangeUnit]:
        """Units overlapping ``query_range`` — found by bisection, O(log n + output)."""
        low, high = self._range_bounds(query_range)
        if low is None:
            return super().overlapping(query_range)
        keys = self._keys
        result: list[RangeUnit] = []
        # Nodes with low <= key <= high.
        first = bisect.bisect_left(keys, low)
        last = bisect.bisect_right(keys, high)
        for value in keys[first:last]:
            result.append(self._units_by_key[_node_key(value)])
        # Links [x, y] with x <= high and y >= low, including sentinels.
        if low <= keys[0]:
            result.append(self._units_by_key[_link_key(_NEG_INF, keys[0])])
        if high >= keys[-1]:
            result.append(self._units_by_key[_link_key(keys[-1], _POS_INF)])
        start = max(0, first - 1)
        for index in range(start, min(last, len(keys) - 1)):
            x, y = keys[index], keys[index + 1]
            if x <= high and y >= low:
                result.append(self._units_by_key[_link_key(x, y)])
        return result

    @staticmethod
    def _range_bounds(query_range: Range) -> tuple[float | None, float | None]:
        if isinstance(query_range, Interval):
            return query_range.low, query_range.high
        if isinstance(query_range, Singleton) and isinstance(
            query_range.value, (int, float)
        ):
            return float(query_range.value), float(query_range.value)
        return None, None

    def locate(self, query: Any) -> RangeUnit:
        """The maximal range containing ``query``: a node on exact match, else a link."""
        point = float(query)
        keys = self._keys
        index = bisect.bisect_left(keys, point)
        if index < len(keys) and keys[index] == point:
            return self._units_by_key[_node_key(point)]
        if index == 0:
            return self._units_by_key[_link_key(_NEG_INF, keys[0])]
        if index == len(keys):
            return self._units_by_key[_link_key(keys[-1], _POS_INF)]
        return self._units_by_key[_link_key(keys[index - 1], keys[index])]

    @classmethod
    def select(cls, query: Any, candidates: Sequence[RangeUnit]) -> RangeUnit:
        point = float(query)
        containing = [unit for unit in candidates if unit.range.contains(point)]
        if containing:
            # Prefer the exact-match node over the links that share its endpoint.
            for unit in containing:
                if unit.is_node:
                    return unit
            return containing[0]
        # No candidate contains the query (can only happen at block seams);
        # start from the candidate closest to the query.
        return min(candidates, key=lambda unit: cls._distance_to(point, unit))

    @staticmethod
    def _distance_to(point: float, unit: RangeUnit) -> float:
        if isinstance(unit.range, Singleton):
            return abs(point - float(unit.range.value))
        if isinstance(unit.range, Interval):
            if unit.range.contains(point):
                return 0.0
            return min(abs(point - unit.range.low), abs(point - unit.range.high))
        return math.inf

    @classmethod
    def advance(
        cls,
        query: Any,
        current: RangeUnit,
        neighbors: Mapping[Hashable, Range],
    ) -> Hashable | None:
        point = float(query)
        if current.is_node:
            node_value = float(current.payload)
            if node_value == point:
                return None
            # Move onto the link on the side of the query.
            best_key: Hashable | None = None
            for key, rng in neighbors.items():
                if isinstance(rng, Interval) and rng.contains(point):
                    return key
                if isinstance(rng, Interval):
                    wants_right = point > node_value
                    is_right = rng.low == node_value
                    if wants_right == is_right:
                        best_key = key
            return best_key
        # current is a link
        if current.range.contains(point):
            # Prefer the endpoint node when the query is exactly a stored key.
            for key, rng in neighbors.items():
                if isinstance(rng, Singleton) and float(rng.value) == point:
                    return key
            return None
        # Walk toward the query.
        low, high = current.range.low, current.range.high
        target_value = low if point < low else high
        for key, rng in neighbors.items():
            if isinstance(rng, Singleton) and float(rng.value) == target_value:
                return key
        return None

    def answer(self, query: Any, unit: RangeUnit) -> NearestNeighborAnswer:
        point = float(query)
        if unit.is_node:
            value = float(unit.payload)
            return NearestNeighborAnswer(
                query=point,
                nearest=value,
                predecessor=value,
                successor=value,
                exact=True,
            )
        low, high = unit.payload
        candidates = [value for value in (low, high) if value is not None]
        if not candidates:
            raise QueryError("sorted-list: link with no finite endpoint")
        nearest = min(candidates, key=lambda value: abs(point - value))
        return NearestNeighborAnswer(
            query=point,
            nearest=nearest,
            predecessor=low,
            successor=high,
            exact=(point in candidates),
        )

    # ------------------------------------------------------------------ #
    # reference queries used by tests
    # ------------------------------------------------------------------ #
    def nearest_key(self, query: float) -> float:
        """Brute-force-free reference nearest neighbour (bisection)."""
        return self.answer(query, self.locate(query)).nearest

    def predecessor(self, query: float) -> float | None:
        """Largest stored key ≤ ``query`` (``None`` when below the minimum)."""
        index = bisect.bisect_right(self._keys, float(query))
        return self._keys[index - 1] if index > 0 else None

    def successor(self, query: float) -> float | None:
        """Smallest stored key ≥ ``query`` (``None`` when above the maximum)."""
        index = bisect.bisect_left(self._keys, float(query))
        return self._keys[index] if index < len(self._keys) else None
